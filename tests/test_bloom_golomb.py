"""Tests for the Golomb/Rice codec."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.golomb import (
    GolombDecoder,
    GolombEncoder,
    decode_gaps,
    encode_gaps,
    optimal_golomb_m,
)


class TestParameterChoice:
    def test_optimal_m_small_p(self):
        # m ≈ 0.69 / p for sparse bit vectors.
        assert optimal_golomb_m(0.01) == pytest.approx(0.69 / 0.01, rel=0.05)

    def test_optimal_m_monotone(self):
        assert optimal_golomb_m(0.001) > optimal_golomb_m(0.01) > optimal_golomb_m(0.2)

    def test_optimal_m_bounds(self):
        assert optimal_golomb_m(0.9999) >= 1
        with pytest.raises(ValueError):
            optimal_golomb_m(0.0)
        with pytest.raises(ValueError):
            optimal_golomb_m(1.0)


class TestRoundtrip:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 10, 64, 100])
    def test_fixed_values(self, m):
        values = [0, 1, 2, m - 1, m, m + 1, 5 * m, 1000]
        enc = GolombEncoder(m)
        enc.encode_many(values)
        dec = GolombDecoder(m, enc.getvalue())
        assert dec.decode_many(len(values)) == values

    def test_single_large_value(self):
        enc = GolombEncoder(7)
        enc.encode(123456)
        dec = GolombDecoder(7, enc.getvalue())
        assert dec.decode() == 123456

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            GolombEncoder(4).encode(-1)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GolombEncoder(0)
        with pytest.raises(ValueError):
            GolombDecoder(0, b"")

    def test_exhausted_stream_raises(self):
        enc = GolombEncoder(4)
        enc.encode(1)
        dec = GolombDecoder(4, enc.getvalue())
        dec.decode()
        # The zero-padded tail decodes small phantom values until the byte
        # boundary, then raises; drain defensively.
        with pytest.raises(EOFError):
            for _ in range(64):
                dec.decode()


class TestCompression:
    def test_near_entropy_for_geometric_gaps(self):
        """Golomb coding of geometric gaps should approach the entropy."""
        import numpy as np

        rng = np.random.default_rng(0)
        p = 0.02
        gaps = rng.geometric(p, size=5000) - 1
        m = optimal_golomb_m(p)
        enc = GolombEncoder(m)
        enc.encode_many(gaps.tolist())
        bits_per_gap = enc.bit_length() / gaps.size
        entropy = -(p * math.log2(p) + (1 - p) * math.log2(1 - p)) / p
        assert bits_per_gap < entropy * 1.1  # within 10% of optimal

    def test_bit_length_tracks_output(self):
        enc = GolombEncoder(4)
        enc.encode_many([0, 1, 2, 3])
        assert math.ceil(enc.bit_length() / 8) == len(enc.getvalue())


@given(
    st.integers(min_value=1, max_value=200),
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=100),
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(m, values):
    """Encode/decode is the identity for any m and any value list."""
    enc = GolombEncoder(m)
    enc.encode_many(values)
    dec = GolombDecoder(m, enc.getvalue())
    assert dec.decode_many(len(values)) == values


#: Payloads captured from the streaming encoder before the vectorized codec
#: landed.  Wire compatibility means both implementations must keep
#: reproducing these bit-for-bit forever — old peers decode them.
GOLDEN_STREAMS = [
    (1, [0, 1, 2, 5, 9], "5beff8"),
    (2, [0, 1, 2, 3, 4, 10], "1973e0"),
    (3, [0, 1, 2, 3, 7, 20], "139afd80"),
    (10, [0, 9, 10, 11, 99, 100], "07c23ff7ffe0"),
    (64, [0, 63, 64, 65, 1000], "00fe0207fffa80"),
    (69, [5, 68, 69, 70, 200, 4096], "0aff0103bcfffffffffffffff320"),
]


class TestVectorizedCodec:
    """encode_gaps/decode_gaps must be bit-exact with the streaming pair."""

    @pytest.mark.parametrize("m,values,hex_payload", GOLDEN_STREAMS)
    def test_golden_bytes(self, m, values, hex_payload):
        golden = bytes.fromhex(hex_payload)
        assert encode_gaps(np.asarray(values, dtype=np.int64), m) == golden
        streaming = GolombEncoder(m)
        streaming.encode_many(values)
        assert streaming.getvalue() == golden

    @pytest.mark.parametrize("m,values,hex_payload", GOLDEN_STREAMS)
    def test_golden_decode(self, m, values, hex_payload):
        decoded = decode_gaps(bytes.fromhex(hex_payload), len(values), m)
        assert decoded.tolist() == values

    @pytest.mark.parametrize("m", [1, 2, 3, 5, 7, 8, 64, 100, 1000])
    def test_matches_streaming_encoder(self, m):
        rng = np.random.default_rng(m)
        values = rng.integers(0, 8 * m + 5, size=500).astype(np.int64)
        streaming = GolombEncoder(m)
        streaming.encode_many(values.tolist())
        blob = streaming.getvalue()
        assert encode_gaps(values, m) == blob
        assert decode_gaps(blob, values.size, m).tolist() == values.tolist()

    @pytest.mark.parametrize("density", [0.001, 0.005, 0.01, 0.05, 0.1, 0.3, 0.5])
    def test_property_density_sweep(self, density):
        """Seeded roundtrip + streaming agreement at filter-like densities
        from 0.1% (fresh filter) to 50% (the usable ceiling)."""
        rng = np.random.default_rng(int(density * 10_000))
        gaps = (rng.geometric(density, size=2000) - 1).astype(np.int64)
        m = optimal_golomb_m(density)
        blob = encode_gaps(gaps, m)
        streaming = GolombEncoder(m)
        streaming.encode_many(gaps.tolist())
        assert blob == streaming.getvalue()
        assert decode_gaps(blob, gaps.size, m).tolist() == gaps.tolist()

    def test_empty_input(self):
        assert encode_gaps(np.asarray([], dtype=np.int64), 7) == b""
        with pytest.raises(EOFError):
            decode_gaps(b"", 1, 7)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            encode_gaps(np.asarray([-1], dtype=np.int64), 7)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            encode_gaps(np.asarray([1], dtype=np.int64), 0)
        with pytest.raises(ValueError):
            decode_gaps(b"\x00", 1, 0)

    @pytest.mark.parametrize("m", [1, 2, 3, 7, 100])
    def test_eof_parity_with_streaming_decoder(self, m):
        """Every truncation point raises (or not) exactly like the
        streaming decoder — compress relies on identical error behavior."""
        enc = GolombEncoder(m)
        enc.encode_many([0, 3, 2 * m, 5 * m + 1, 1])
        blob = enc.getvalue()
        for cut in range(len(blob) + 1):
            prefix = blob[:cut]
            streaming_result: object
            try:
                streaming_result = GolombDecoder(m, prefix).decode_many(5)
            except EOFError:
                streaming_result = EOFError
            try:
                vector_result: object = decode_gaps(prefix, 5, m).tolist()
            except EOFError:
                vector_result = EOFError
            assert vector_result == streaming_result, f"cut={cut}"

    def test_huge_count_on_tiny_stream_raises(self):
        """A corrupt header claiming millions of values must fail fast,
        not loop: the decode chain is bounded by the stream's zero bits."""
        with pytest.raises(EOFError):
            decode_gaps(b"\xff\x00", 10_000_000, 3)
