"""Tests for the Golomb/Rice codec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.golomb import GolombDecoder, GolombEncoder, optimal_golomb_m


class TestParameterChoice:
    def test_optimal_m_small_p(self):
        # m ≈ 0.69 / p for sparse bit vectors.
        assert optimal_golomb_m(0.01) == pytest.approx(0.69 / 0.01, rel=0.05)

    def test_optimal_m_monotone(self):
        assert optimal_golomb_m(0.001) > optimal_golomb_m(0.01) > optimal_golomb_m(0.2)

    def test_optimal_m_bounds(self):
        assert optimal_golomb_m(0.9999) >= 1
        with pytest.raises(ValueError):
            optimal_golomb_m(0.0)
        with pytest.raises(ValueError):
            optimal_golomb_m(1.0)


class TestRoundtrip:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 10, 64, 100])
    def test_fixed_values(self, m):
        values = [0, 1, 2, m - 1, m, m + 1, 5 * m, 1000]
        enc = GolombEncoder(m)
        enc.encode_many(values)
        dec = GolombDecoder(m, enc.getvalue())
        assert dec.decode_many(len(values)) == values

    def test_single_large_value(self):
        enc = GolombEncoder(7)
        enc.encode(123456)
        dec = GolombDecoder(7, enc.getvalue())
        assert dec.decode() == 123456

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            GolombEncoder(4).encode(-1)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GolombEncoder(0)
        with pytest.raises(ValueError):
            GolombDecoder(0, b"")

    def test_exhausted_stream_raises(self):
        enc = GolombEncoder(4)
        enc.encode(1)
        dec = GolombDecoder(4, enc.getvalue())
        dec.decode()
        # The zero-padded tail decodes small phantom values until the byte
        # boundary, then raises; drain defensively.
        with pytest.raises(EOFError):
            for _ in range(64):
                dec.decode()


class TestCompression:
    def test_near_entropy_for_geometric_gaps(self):
        """Golomb coding of geometric gaps should approach the entropy."""
        import numpy as np

        rng = np.random.default_rng(0)
        p = 0.02
        gaps = rng.geometric(p, size=5000) - 1
        m = optimal_golomb_m(p)
        enc = GolombEncoder(m)
        enc.encode_many(gaps.tolist())
        bits_per_gap = enc.bit_length() / gaps.size
        entropy = -(p * math.log2(p) + (1 - p) * math.log2(1 - p)) / p
        assert bits_per_gap < entropy * 1.1  # within 10% of optimal

    def test_bit_length_tracks_output(self):
        enc = GolombEncoder(4)
        enc.encode_many([0, 1, 2, 3])
        assert math.ceil(enc.bit_length() / 8) == len(enc.getvalue())


@given(
    st.integers(min_value=1, max_value=200),
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=100),
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(m, values):
    """Encode/decode is the identity for any m and any value list."""
    enc = GolombEncoder(m)
    enc.encode_many(values)
    dec = GolombDecoder(m, enc.getvalue())
    assert dec.decode_many(len(values)) == values
