"""WriteAheadLog: framing, durability accounting, and torn-tail recovery.

Crash damage is simulated by editing the log file directly — truncating
mid-frame, flipping payload bytes, overwriting the magic — and asserting
the next ``open()`` returns exactly the durable prefix, never raises,
and physically truncates the file back to that prefix.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.obs import Registry
from repro.store.wal import WAL_MAGIC, WriteAheadLog


def _wal(tmp_path, **kwargs) -> WriteAheadLog:
    kwargs.setdefault("registry", Registry())
    kwargs.setdefault("fsync", False)  # keep the suite fast
    return WriteAheadLog(tmp_path / "wal.log", **kwargs)


def _fill(wal: WriteAheadLog, n: int) -> list[dict]:
    records = [{"seq": i + 1, "op": "publish", "id": f"doc-{i}"} for i in range(n)]
    for record in records:
        wal.append(record)
    return records


def test_missing_file_opens_empty_and_creates_header(tmp_path):
    wal = _wal(tmp_path)
    assert wal.open() == []
    wal.close()
    assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC


def test_append_then_reopen_roundtrips_records(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    records = _fill(wal, 5)
    wal.close()
    again = _wal(tmp_path)
    assert again.open() == records
    again.close()


def test_reopen_continues_appending_after_existing_records(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    first = _fill(wal, 2)
    wal.close()
    wal = _wal(tmp_path)
    wal.open()
    wal.append({"seq": 3, "op": "remove", "id": "doc-0"})
    wal.close()
    final = _wal(tmp_path)
    assert final.open() == first + [{"seq": 3, "op": "remove", "id": "doc-0"}]
    final.close()


@pytest.mark.parametrize("cut", [1, 3, 7])  # inside header and inside payload
def test_torn_tail_is_truncated_to_durable_prefix(tmp_path, cut):
    wal = _wal(tmp_path)
    wal.open()
    records = _fill(wal, 3)
    wal.close()
    path = tmp_path / "wal.log"
    data = path.read_bytes()
    path.write_bytes(data[:-cut])  # crash mid-append of the last record

    registry = Registry()
    again = _wal(tmp_path, registry=registry)
    assert again.open() == records[:2]
    again.close()
    assert registry.counter("store", "wal_torn_tails_total", "").value == 1
    # The invalid tail is physically gone: a further reopen is clean.
    clean = _wal(tmp_path, registry=registry)
    assert clean.open() == records[:2]
    clean.close()
    assert registry.counter("store", "wal_torn_tails_total", "").value == 1


def test_corrupt_crc_mid_log_keeps_only_earlier_records(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    records = _fill(wal, 4)
    wal.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    # Flip one payload byte of the second record: everything from there on
    # (including the still-intact records 3 and 4) is past the durable
    # prefix — replay order cannot skip a hole.
    frame = struct.Struct(">II")
    offset = len(WAL_MAGIC)
    length, _ = frame.unpack_from(data, offset)  # record 1
    offset += frame.size + length
    data[offset + frame.size + 2] ^= 0xFF
    path.write_bytes(bytes(data))

    again = _wal(tmp_path)
    assert again.open() == records[:1]
    again.close()


def test_bad_magic_means_wholly_invalid_log(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    _fill(wal, 3)
    wal.close()
    path = tmp_path / "wal.log"
    path.write_bytes(b"XXXXXXXX" + path.read_bytes()[8:])

    again = _wal(tmp_path)
    assert again.open() == []
    again.append({"seq": 1, "op": "publish", "id": "fresh"})
    again.close()
    # A fresh header was laid down before appends resumed.
    assert path.read_bytes().startswith(WAL_MAGIC)


def test_absurd_length_field_ends_the_durable_prefix(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    records = _fill(wal, 1)
    # Hand-craft a frame claiming a multi-gigabyte payload.
    payload = b'{"seq":2}'
    wal._file.write(struct.pack(">II", 1 << 31, zlib.crc32(payload)) + payload)
    wal._file.flush()
    wal.close()

    again = _wal(tmp_path)
    assert again.open() == records
    again.close()


def test_non_object_json_payload_is_invalid(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    records = _fill(wal, 1)
    payload = json.dumps([1, 2, 3]).encode()
    wal._file.write(struct.pack(">II", len(payload), zlib.crc32(payload)) + payload)
    wal._file.flush()
    wal.close()

    again = _wal(tmp_path)
    assert again.open() == records
    again.close()


def test_reset_empties_the_log(tmp_path):
    wal = _wal(tmp_path)
    wal.open()
    _fill(wal, 3)
    wal.reset()
    wal.append({"seq": 9, "op": "publish", "id": "after"})
    wal.close()
    again = _wal(tmp_path)
    assert again.open() == [{"seq": 9, "op": "publish", "id": "after"}]
    again.close()


def test_append_requires_open_and_double_open_rejected(tmp_path):
    wal = _wal(tmp_path)
    with pytest.raises(RuntimeError, match="not open"):
        wal.append({"seq": 1})
    wal.open()
    with pytest.raises(RuntimeError, match="already open"):
        wal.open()
    wal.close()
    wal.close()  # idempotent


def test_metrics_account_appends_bytes_and_fsyncs(tmp_path):
    registry = Registry()
    wal = WriteAheadLog(tmp_path / "wal.log", fsync=True, registry=registry)
    wal.open()
    written = wal.append({"seq": 1, "op": "publish", "id": "d"})
    wal.append({"seq": 2, "op": "remove", "id": "d"})
    wal.close()
    assert registry.counter("store", "wal_records_total", "").value == 2
    assert registry.counter("store", "wal_bytes_total", "").value >= written
    # header write + two appends each fsync
    assert registry.counter("store", "wal_fsyncs_total", "").value >= 3
    assert wal.size_bytes == (tmp_path / "wal.log").stat().st_size
