"""The ``python -m repro.net`` command line: parsing and a short live run."""

import asyncio
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.constants import NET_DEFAULT_PORT, BloomConfig, StoreConfig
from repro.net.cli import _load_corpus, build_parser, build_stats_parser, run, run_stats
from repro.net.node import NetworkPeer
from repro.obs import Registry
from repro.text.document import Document


def test_parser_defaults():
    args = build_parser().parse_args(["--peer-id", "3"])
    assert args.peer_id == 3
    assert args.host == "127.0.0.1"
    assert args.port == NET_DEFAULT_PORT
    assert args.bootstrap is None
    assert args.corpus is None
    assert args.query is None
    assert args.max_runtime is None
    assert args.chaos_seed is None  # fault injection is opt-in
    assert args.chaos_drop == 0.1
    assert args.chaos_reset == 0.0
    assert args.chaos_jitter == 0.0
    assert args.data_dir is None  # persistence is opt-in
    assert args.snapshot_every == StoreConfig().snapshot_every


def test_parser_persistence_flags(tmp_path):
    args = build_parser().parse_args(
        ["--peer-id", "3", "--data-dir", str(tmp_path), "--snapshot-every", "16"]
    )
    assert args.data_dir == tmp_path
    assert args.snapshot_every == 16


def test_parser_requires_peer_id():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_fleet_flags():
    defaults = build_parser().parse_args(["--peer-id", "3"])
    assert defaults.no_fsync is False
    assert defaults.bloom_bits == BloomConfig().num_bits
    assert defaults.bloom_hashes == BloomConfig().num_hashes
    args = build_parser().parse_args(
        ["--peer-id", "3", "--no-fsync", "--bloom-bits", "65536", "--bloom-hashes", "3"]
    )
    assert args.no_fsync is True
    assert args.bloom_bits == 65536
    assert args.bloom_hashes == 3


def test_load_corpus_recurses_with_collision_free_ids(tmp_path):
    (tmp_path / "top.txt").write_text("top level document")
    nested = tmp_path / "nested" / "deeper"
    nested.mkdir(parents=True)
    (nested / "leaf.txt").write_text("deeply nested document")
    # Same stem in two directories must yield two distinct doc ids.
    (tmp_path / "nested" / "top.txt").write_text("shadowing stem")
    (tmp_path / "ignored.md").write_text("not a txt file")

    node = NetworkPeer(0, "127.0.0.1", 0, registry=Registry())
    assert _load_corpus(node, tmp_path) == 3
    assert sorted(node.peer.store.document_ids()) == [
        "nested/deeper/leaf", "nested/top", "top",
    ]


def test_load_corpus_skips_unreadable_and_already_published(tmp_path, capsys):
    (tmp_path / "good.txt").write_text("a perfectly readable file")
    # A directory matching the glob: read_text raises IsADirectoryError,
    # which must be a warning, not a crash (works even when the suite
    # runs as root, unlike permission bits).
    (tmp_path / "trap.txt").mkdir()
    # Undecodable bytes are replaced, not fatal.
    (tmp_path / "binary.txt").write_bytes(b"\xff\xfe broken utf8 \x80")

    node = NetworkPeer(0, "127.0.0.1", 0, registry=Registry())
    assert _load_corpus(node, tmp_path) == 2
    err = capsys.readouterr().err
    assert "warning: skipping unreadable" in err and "trap.txt" in err
    # A second pass (a warm restart re-walking the corpus) publishes nothing.
    assert _load_corpus(node, tmp_path) == 0
    assert len(node.peer.store) == 2


def test_cli_run_bootstraps_publishes_and_queries(tmp_path, capsys):
    (tmp_path / "epidemics.txt").write_text(
        "epidemic algorithms for replicated database maintenance"
    )
    (tmp_path / "gossip.txt").write_text(
        "gossip protocols spread rumors through random peer exchanges"
    )

    async def scenario():
        bootstrap = NetworkPeer(0, "127.0.0.1", 0)
        await bootstrap.start()
        bootstrap.publish(Document("bloom", "bloom filters summarize membership"))
        bootstrap.run()
        args = build_parser().parse_args(
            [
                "--peer-id", "1",
                "--port", "0",
                "--bootstrap", bootstrap.address,
                "--corpus", str(tmp_path),
                "--gossip-interval", "0.05",
                "--query", "gossip rumors",
                "--top-k", "2",
                "--max-runtime", "0.2",
            ]
        )
        try:
            await run(args)
        finally:
            await bootstrap.stop()

    asyncio.run(scenario())
    out = capsys.readouterr().out
    assert "peer 1 serving at" in out
    assert "published 2 documents" in out
    assert "joined via" in out and "2 members known" in out
    # The machine-readable ready line fleet orchestrators parse for the
    # bound port appears exactly once, after join/publish completed.
    ready_lines = [l for l in out.splitlines() if l.startswith("PLANETP_READY ")]
    assert len(ready_lines) == 1
    assert "peer=1" in ready_lines[0] and "members=2" in ready_lines[0]
    assert "ranked 'gossip rumors'" in out
    assert "gossip" in out.split("ranked")[1]  # the matching doc is listed
    assert "peer 1 stopped" in out


def test_stats_parser_defaults():
    args = build_stats_parser().parse_args(["127.0.0.1:9301"])
    assert args.address == "127.0.0.1:9301"
    assert args.grep is None
    with pytest.raises(SystemExit):
        build_stats_parser().parse_args([])  # the address is mandatory


def test_stats_cli_polls_live_node(capsys):
    """``python -m repro.net stats`` against a real TCP node prints its
    uptime and nonzero gossip/traffic counters; --grep filters names."""

    async def scenario():
        a = NetworkPeer(0, "127.0.0.1", 0, registry=Registry())
        await a.start()
        a.publish(Document("bloom", "bloom filters summarize membership"))
        b = NetworkPeer(1, "127.0.0.1", 0, registry=Registry())
        await b.start()
        b.publish(Document("gossip", "gossip protocols spread rumors"))
        try:
            await b.join(a.address)
            for _ in range(3):
                await a.gossip_round()
                await b.gossip_round()
            await run_stats(build_stats_parser().parse_args([a.address]))
            await run_stats(
                build_stats_parser().parse_args([a.address, "--grep", "bytes"])
            )
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())
    out = capsys.readouterr().out
    full, grepped = out.split("peer 0 at")[1:]
    assert "uptime" in full

    def value_of(section: str, name: str) -> float:
        for line in section.splitlines():
            parts = line.split()
            if parts and parts[0] == name:
                return float(parts[1])
        raise AssertionError(f"{name} not in output:\n{section}")

    assert value_of(full, "planetp_node_gossip_rounds_total") > 0
    assert value_of(full, "planetp_transport_bytes_sent_total") > 0
    # The grep view keeps only matching sample names.
    samples = [line.split()[0] for line in grepped.splitlines()[1:] if line.strip()]
    assert samples and all("bytes" in name for name in samples)


def test_chaos_transport_built_only_when_seeded():
    from repro.net.chaos import FaultyTransport
    from repro.net.cli import _chaos_transport

    plain = build_parser().parse_args(["--peer-id", "1"])
    assert _chaos_transport(plain) is None
    chaotic = build_parser().parse_args(
        ["--peer-id", "1", "--chaos-seed", "7", "--chaos-drop", "0.5"]
    )
    transport = _chaos_transport(chaotic)
    assert isinstance(transport, FaultyTransport)
    assert transport.plan.seed == 7


# -- failure paths: nonzero exit with a clear message, never a traceback ------


def _run_cli(args: list[str], timeout: float = 60.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.net", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def _assert_clean_failure(proc: subprocess.CompletedProcess) -> None:
    assert proc.returncode != 0
    assert "error:" in proc.stderr
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout


def test_cli_bad_bootstrap_fails_cleanly():
    # Port 1 refuses connections; the join must surface as a one-line
    # operator error, not an asyncio traceback.
    proc = _run_cli(
        ["--peer-id", "1", "--port", "0", "--bootstrap", "127.0.0.1:1"]
    )
    _assert_clean_failure(proc)
    assert "127.0.0.1:1" in proc.stderr


def test_cli_port_in_use_fails_cleanly():
    with socket.socket() as holder:
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        port = holder.getsockname()[1]
        proc = _run_cli(["--peer-id", "1", "--port", str(port)])
    _assert_clean_failure(proc)


def test_cli_corrupt_checkpoint_fails_cleanly(tmp_path):
    data_dir = tmp_path / "state"
    data_dir.mkdir()
    (data_dir / "directory.ckpt").write_bytes(b"this is not a checkpoint")
    proc = _run_cli(
        ["--peer-id", "1", "--port", "0", "--data-dir", str(data_dir)]
    )
    _assert_clean_failure(proc)
    assert "corrupt directory checkpoint" in proc.stderr


def test_check_data_dir_accepts_missing_and_valid(tmp_path):
    from repro.net.cli import _check_data_dir

    _check_data_dir(tmp_path)  # no checkpoint at all: a cold start is fine

    async def write_valid_checkpoint():
        node = NetworkPeer(1, "127.0.0.1", 0, data_dir=tmp_path, registry=Registry())
        await node.start()
        await node.stop()  # writes the checkpoint on the way down

    asyncio.run(write_valid_checkpoint())
    assert (tmp_path / "directory.ckpt").exists()
    _check_data_dir(tmp_path)  # a readable checkpoint passes

    (tmp_path / "directory.ckpt").write_bytes(b"\x00garbage")
    with pytest.raises(ValueError, match="corrupt directory checkpoint"):
        _check_data_dir(tmp_path)
