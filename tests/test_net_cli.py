"""The ``python -m repro.net`` command line: parsing and a short live run."""

import asyncio

import pytest

from repro.constants import NET_DEFAULT_PORT
from repro.net.cli import build_parser, run
from repro.net.node import NetworkPeer
from repro.text.document import Document


def test_parser_defaults():
    args = build_parser().parse_args(["--peer-id", "3"])
    assert args.peer_id == 3
    assert args.host == "127.0.0.1"
    assert args.port == NET_DEFAULT_PORT
    assert args.bootstrap is None
    assert args.corpus is None
    assert args.query is None
    assert args.max_runtime is None
    assert args.chaos_seed is None  # fault injection is opt-in
    assert args.chaos_drop == 0.1
    assert args.chaos_reset == 0.0
    assert args.chaos_jitter == 0.0


def test_parser_requires_peer_id():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_run_bootstraps_publishes_and_queries(tmp_path, capsys):
    (tmp_path / "epidemics.txt").write_text(
        "epidemic algorithms for replicated database maintenance"
    )
    (tmp_path / "gossip.txt").write_text(
        "gossip protocols spread rumors through random peer exchanges"
    )

    async def scenario():
        bootstrap = NetworkPeer(0, "127.0.0.1", 0)
        await bootstrap.start()
        bootstrap.publish(Document("bloom", "bloom filters summarize membership"))
        bootstrap.run()
        args = build_parser().parse_args(
            [
                "--peer-id", "1",
                "--port", "0",
                "--bootstrap", bootstrap.address,
                "--corpus", str(tmp_path),
                "--gossip-interval", "0.05",
                "--query", "gossip rumors",
                "--top-k", "2",
                "--max-runtime", "0.2",
            ]
        )
        try:
            await run(args)
        finally:
            await bootstrap.stop()

    asyncio.run(scenario())
    out = capsys.readouterr().out
    assert "peer 1 serving at" in out
    assert "published 2 documents" in out
    assert "joined via" in out and "2 members known" in out
    assert "ranked 'gossip rumors'" in out
    assert "gossip" in out.split("ranked")[1]  # the matching doc is listed
    assert "peer 1 stopped" in out


def test_chaos_transport_built_only_when_seeded():
    from repro.net.chaos import FaultyTransport
    from repro.net.cli import _chaos_transport

    plain = build_parser().parse_args(["--peer-id", "1"])
    assert _chaos_transport(plain) is None
    chaotic = build_parser().parse_args(
        ["--peer-id", "1", "--chaos-seed", "7", "--chaos-drop", "0.5"]
    )
    transport = _chaos_transport(chaotic)
    assert isinstance(transport, FaultyTransport)
    assert transport.plan.seed == 7
