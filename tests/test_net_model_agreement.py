"""Satellite cross-check: real encodings vs the Table-2 byte model.

The simulator prices gossip messages with ``MessageSizer`` while the
network layer actually encodes them.  Both work from the shared inventory
in :mod:`repro.gossip.wire`, and this suite holds them honest twice over:
for every inventory type, a realistically-populated instance's real
encoded length must stay within a factor of two of the model's
prediction; and a live loopback community's *measured* transport traffic
must stay within the same envelope of the model's aggregate prediction
for the messages it actually exchanged.
"""

import asyncio

import numpy as np
import pytest

from repro.bloom.diff import BloomDiff
from repro.bloom.filter import BloomFilter
from repro.constants import GossipConfig
from repro.gossip.messages import MessageSizer
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    ANALYTICS_MESSAGES,
    CONTENT_MESSAGES,
    GOSSIP_MESSAGES,
    PARTIALVIEW_MESSAGES,
    SERVE_MESSAGES,
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    ChunkPush,
    ChunkReply,
    ChunkRequest,
    ContentManifest,
    JoinRequest,
    JoinSnapshot,
    ManifestAck,
    ManifestPush,
    ManifestReply,
    ManifestRequest,
    Notify,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    ShardMatchQuery,
    ShardMatchResponse,
    BrowseRequest,
    BrowseResponse,
    ShardSummaryEntry,
    ShardSummaryReply,
    ShardSummaryRequest,
    SketchEntry,
    SketchExchange,
    SketchReply,
    SnapshotEntry,
    SubscribeAck,
    SubscribeRequest,
    TopTermsReply,
    TopTermsRequest,
    Unsubscribe,
    ViewExchange,
    WireRumor,
)
from repro.net.codec import RankedQuery, encode, encode_member_payload
from repro.text.document import Document
from tests.chaos_harness import ChaosCommunity


def _bloom_bytes(terms) -> bytes:
    bf = BloomFilter(4096, 2)
    bf.add_many(terms)
    return bf.to_compressed()


def _records(n: int) -> tuple[PeerRecord, ...]:
    return tuple(
        PeerRecord(pid, f"192.168.1.{pid}:9301", pid % 2 == 0, pid) for pid in range(n)
    )


def _rumors(n: int) -> tuple[WireRumor, ...]:
    # Realistic payloads: a member record + small compressed filter each,
    # just as JOIN rumors carry on the wire.
    out = []
    for pid in range(n):
        payload = encode_member_payload(
            PeerRecord(pid, f"192.168.1.{pid}:9301", True, 1),
            _bloom_bytes([f"term-{pid}-{j}" for j in range(4)]),
        )
        out.append(WireRumor((pid << 32) | 1, RumorKind.JOIN, pid, 1.0, payload))
    return tuple(out)


_RIDS = tuple((pid << 32) | seq for pid in range(4) for seq in range(3))
_BLOOM = _bloom_bytes([f"word-{i}" for i in range(12)])

INSTANCES = [
    RumorPush(_RIDS),
    RumorReply(_RIDS[:5], _RIDS[5:9]),
    RumorData(_rumors(3)),
    AERequest(0x0123456789ABCDEF),
    AENothing(),
    AERecent(_RIDS, 40),
    AESummary(_records(8), _RIDS),
    PullRequest(_RIDS[:6]),
    JoinRequest(_records(1)[0], _BLOOM, 7, 3.5),
    JoinSnapshot(
        tuple(SnapshotEntry(rec, _BLOOM) for rec in _records(6)), _RIDS
    ),
]

#: The serve inventory gets the same 2x treatment but stays out of the
#: gossip coverage check — it is not part of the Table-2 model.
SERVE_INSTANCES = [
    SubscribeRequest(0, ("gossip", "bloom", "filters"), "192.168.1.9:9400", 42.5),
    SubscribeAck(12, True, "subscribed"),
    Notify(12, 7, "doc-a", "peer 7 shares gossip corpus shard with bloom filters"),
    Unsubscribe(12),
]

#: The partial-view inventory, likewise priced outside Table 2 (the
#: paper's model predates sharded directories).  Instances are sized the
#: way the protocol actually uses them: summary replies carry compressed
#: shard-OR filters, view exchanges trade a dozen-odd records.
PARTIALVIEW_INSTANCES = [
    ShardSummaryRequest(
        (0, 2, 5), True, tuple((shard, 0xABCD << shard) for shard in range(3))
    ),
    ShardSummaryReply(
        tuple(
            ShardSummaryEntry(shard, 60, 12, _BLOOM) for shard in range(4)
        )
        + (
            ShardSummaryEntry(
                4,
                60,
                13,
                BloomDiff(
                    4096, np.array([7, 99, 1024, 4000], dtype=np.int64)
                ).to_bytes(),
                True,
            ),
        ),
        tuple(SnapshotEntry(rec, _BLOOM) for rec in _records(3)),
    ),
    ViewExchange(_records(12), 16),
    ShardMatchQuery(3, ("gossip", "bloom", "filters", "peers")),
    ShardMatchResponse(3, tuple((pid, 0b1011) for pid in range(10))),
]

#: A realistic transfer contract: a ~150 KB document in 64 KB chunks.
_MANIFEST = ContentManifest(
    "n0007-d1",
    7,
    150_000,
    65536,
    b"\xab" * 32,
    (0xDEADBEEF, 0xCAFEF00D, 0x0BADF00D),
)

#: The content inventory, priced outside Table 2 like serve/partial-view
#: (chunked transfers are PlanetP Section-6 machinery, not gossip).
#: Payload-bearing replies carry data sized the way the protocol sends
#: it — a reply-window slice, a whole chunk push.
#: Realistic sketch entries: a few dozen space-saving term counters plus
#: a handful of document access counters per origin, as a converged
#: community's exchanges actually carry them.
def _sketch_entries(n: int) -> tuple[SketchEntry, ...]:
    return tuple(
        SketchEntry(
            origin,
            3 + origin,
            tuple((f"term{origin:02d}{j:02d}", 40 - j) for j in range(24)),
            tuple((f"n{origin:04d}-d{j}", 9 - j) for j in range(4)),
        )
        for origin in range(n)
    )


#: The analytics inventory, priced outside Table 2 like serve/content
#: (frequent-term mining is new machinery, not the paper's gossip).
ANALYTICS_INSTANCES = [
    SketchExchange(_sketch_entries(2), tuple((pid, 3 + pid) for pid in range(20))),
    SketchReply(_sketch_entries(3), tuple((pid, 3 + pid) for pid in range(20))),
    TopTermsRequest(10),
    TopTermsReply(25, tuple((f"term{j:04d}", 900 - j) for j in range(10))),
    BrowseRequest("/gossip/protocols", 20),
    BrowseResponse(
        True,
        "/gossip/protocols",
        0xDEADBEEFCAFEF00D,
        tuple((f"n{j:04d}-d0", f"planetp://n{j:04d}-d0", 40 - j) for j in range(12)),
    ),
]

CONTENT_INSTANCES = [
    ManifestRequest("n0007-d1"),
    ManifestReply(
        True, _MANIFEST, tuple(f"192.168.1.{pid}:9301" for pid in range(4))
    ),
    ChunkRequest("n0007-d1", 2, 4096),
    ChunkReply(True, "n0007-d1", 2, 4096, 65536, b"\x5a" * 8192),
    ManifestPush(_MANIFEST),
    ManifestAck("n0007-d1", True, (0, 1, 2)),
    ChunkPush("n0007-d1", 1, b"\xa5" * 65536),
]


@pytest.fixture(scope="module")
def sizer() -> MessageSizer:
    """The Table-2 model under the default gossip configuration."""
    return MessageSizer(GossipConfig())


@pytest.mark.parametrize("msg", INSTANCES, ids=lambda m: type(m).__name__)
def test_real_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in INSTANCES}
    assert instance_types == set(GOSSIP_MESSAGES)


@pytest.mark.parametrize("msg", SERVE_INSTANCES, ids=lambda m: type(m).__name__)
def test_serve_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_serve_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in SERVE_INSTANCES}
    assert instance_types == set(SERVE_MESSAGES)


@pytest.mark.parametrize("msg", PARTIALVIEW_INSTANCES, ids=lambda m: type(m).__name__)
def test_partialview_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_partialview_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in PARTIALVIEW_INSTANCES}
    assert instance_types == set(PARTIALVIEW_MESSAGES)


@pytest.mark.parametrize("msg", CONTENT_INSTANCES, ids=lambda m: type(m).__name__)
def test_content_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_content_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in CONTENT_INSTANCES}
    assert instance_types == set(CONTENT_MESSAGES)


@pytest.mark.parametrize("msg", ANALYTICS_INSTANCES, ids=lambda m: type(m).__name__)
def test_analytics_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_analytics_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in ANALYTICS_INSTANCES}
    assert instance_types == set(ANALYTICS_MESSAGES)


def test_model_rejects_non_gossip_messages(sizer):
    with pytest.raises(TypeError, match="not a gossip wire message"):
        sizer.model_size(RankedQuery(("a",), (("a", 1.0),), 5))


# ---------------------------------------------------------------------------
# live traffic: measured transport bytes vs the model, same 2x envelope
# ---------------------------------------------------------------------------


def test_live_community_traffic_within_2x_of_model():
    """Boot 6 loopback peers, gossip to convergence, and compare what the
    transports *measured* (``transport.bytes_sent_total``) against what
    the Table-2 model *predicted* for the exact messages exchanged
    (``node.gossip_model_bytes_total``)."""

    async def scenario() -> ChaosCommunity:
        community = ChaosCommunity(6, seed=99)  # no faults scripted
        await community.boot()
        for pid in range(6):
            community.publish(
                pid,
                Document(f"doc-{pid}", f"peer {pid} shares gossip corpus shard {pid}"),
            )
        await community.run_rounds(30)
        await community.converge()
        for pid in community.nodes:
            await community.nodes[pid].stop()
        return community

    community = asyncio.run(scenario())
    measured = community.metric_sum("transport", "bytes_sent_total")
    accounted = community.metric_sum("node", "gossip_real_bytes_total")
    model = community.metric_sum("node", "gossip_model_bytes_total")
    assert measured > 0 and model > 0
    # This run was pure gossip, so every byte the transports sent must
    # have been accounted as a gossip frame by some node.
    assert accounted == measured
    ratio = measured / model
    assert 0.5 <= ratio <= 2.0, (
        f"live traffic {measured:.0f}B vs model {model:.0f}B "
        f"(ratio {ratio:.2f}) escaped the 2x envelope"
    )
