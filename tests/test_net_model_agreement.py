"""Satellite cross-check: real encodings vs the Table-2 byte model.

The simulator prices gossip messages with ``MessageSizer`` while the
network layer actually encodes them.  Both work from the shared inventory
in :mod:`repro.gossip.wire`, and this suite holds them honest: for every
inventory type, a realistically-populated instance's real encoded length
must stay within a factor of two of the model's prediction.
"""

import pytest

from repro.bloom.filter import BloomFilter
from repro.constants import GossipConfig
from repro.gossip.messages import MessageSizer
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    GOSSIP_MESSAGES,
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    JoinRequest,
    JoinSnapshot,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    SnapshotEntry,
    WireRumor,
)
from repro.net.codec import RankedQuery, encode, encode_member_payload


def _bloom_bytes(terms) -> bytes:
    bf = BloomFilter(4096, 2)
    bf.add_many(terms)
    return bf.to_compressed()


def _records(n: int) -> tuple[PeerRecord, ...]:
    return tuple(
        PeerRecord(pid, f"192.168.1.{pid}:9301", pid % 2 == 0, pid) for pid in range(n)
    )


def _rumors(n: int) -> tuple[WireRumor, ...]:
    # Realistic payloads: a member record + small compressed filter each,
    # just as JOIN rumors carry on the wire.
    out = []
    for pid in range(n):
        payload = encode_member_payload(
            PeerRecord(pid, f"192.168.1.{pid}:9301", True, 1),
            _bloom_bytes([f"term-{pid}-{j}" for j in range(4)]),
        )
        out.append(WireRumor((pid << 32) | 1, RumorKind.JOIN, pid, 1.0, payload))
    return tuple(out)


_RIDS = tuple((pid << 32) | seq for pid in range(4) for seq in range(3))
_BLOOM = _bloom_bytes([f"word-{i}" for i in range(12)])

INSTANCES = [
    RumorPush(_RIDS),
    RumorReply(_RIDS[:5], _RIDS[5:9]),
    RumorData(_rumors(3)),
    AERequest(0x0123456789ABCDEF),
    AENothing(),
    AERecent(_RIDS, 40),
    AESummary(_records(8), _RIDS),
    PullRequest(_RIDS[:6]),
    JoinRequest(_records(1)[0], _BLOOM, 7, 3.5),
    JoinSnapshot(
        tuple(SnapshotEntry(rec, _BLOOM) for rec in _records(6)), _RIDS
    ),
]


@pytest.fixture(scope="module")
def sizer() -> MessageSizer:
    """The Table-2 model under the default gossip configuration."""
    return MessageSizer(GossipConfig())


@pytest.mark.parametrize("msg", INSTANCES, ids=lambda m: type(m).__name__)
def test_real_encoding_within_2x_of_model(msg, sizer):
    real = len(encode(msg))
    model = sizer.model_size(msg)
    assert model > 0
    ratio = real / model
    assert 0.5 <= ratio <= 2.0, (
        f"{type(msg).__name__}: real={real}B model={model}B ratio={ratio:.2f}"
    )


def test_inventory_fully_covered(sizer):
    instance_types = {type(m) for m in INSTANCES}
    assert instance_types == set(GOSSIP_MESSAGES)


def test_model_rejects_non_gossip_messages(sizer):
    with pytest.raises(TypeError, match="not a gossip wire message"):
        sizer.model_size(RankedQuery(("a",), (("a", 1.0),), 5))
