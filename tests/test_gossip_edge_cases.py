"""Edge-case and invariant tests for the gossip protocol."""

import numpy as np
import pytest

from repro.constants import GossipConfig
from repro.gossip.simulation import GossipSimulation
from repro.sim.metrics import ConvergenceTracker
from repro.sim.topology import lan_topology


def _world(n, seed=0, **overrides):
    defaults = dict(base_interval_s=2.0, max_interval_s=4.0)
    defaults.update(overrides)
    cfg = GossipConfig(**defaults)
    world = GossipSimulation(lan_topology(n), cfg, seed=seed)
    return world


class TestTDead:
    def test_dead_peer_dropped_from_directories(self):
        world = _world(6, t_dead_s=30.0)
        world.establish(range(6))
        world.peers[5].go_offline()
        # Long after T_Dead, peers that noticed the failure drop peer 5.
        world.sim.run(until=300.0)
        droppers = [
            p for p in world.peers[:5] if p.directory.member_count < 6
        ]
        assert droppers, "nobody expired the dead peer"
        for p in droppers:
            assert 5 not in p.directory.offline_since

    def test_peer_returning_before_t_dead_is_kept(self):
        world = _world(6, t_dead_s=10_000.0)
        world.establish(range(6))
        world.peers[5].go_offline()
        world.sim.run(until=60.0)
        world.peers[5].rejoin()
        world.sim.run(until=300.0)
        for p in world.peers[:5]:
            assert p.directory.member_count == 6


class TestJoinRobustness:
    def test_bootstrap_failover(self):
        """A joiner whose bootstrap target is offline retries another."""
        world = _world(8)
        tracker = ConvergenceTracker()
        world.trackers.append(tracker)
        world.establish(range(6))
        world.peers[3].go_offline()
        rumor = world.peers[6].begin_join(bootstrap=3)  # dead bootstrap
        world.tracked_register(rumor.rid, 6)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()
        # The joiner ended up with a full directory from someone else.
        assert world.peers[6].directory.member_count >= 6

    def test_join_rumor_spreads_while_snapshot_in_flight(self):
        world = _world(30)
        tracker = ConvergenceTracker()
        world.trackers.append(tracker)
        world.establish(range(29))
        rumor = world.peers[29].begin_join(bootstrap=0)
        world.tracked_register(rumor.rid, 29)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()


class TestOfflineSemantics:
    def test_offline_peer_learns_nothing(self):
        world = _world(10)
        world.establish(range(10))
        world.peers[9].go_offline()
        rumor = world.peers[0].originate_update(100)
        world.sim.run(until=120.0)
        assert not world.peers[9].directory.knows(rumor.rid)

    def test_leaving_is_not_gossiped(self):
        """Section 3: departures are discovered by failed contacts only —
        a peer that never tries to contact the departed one keeps
        believing it online."""
        world = _world(4)
        world.establish(range(4))
        world.peers[3].go_offline()
        # Before any contact attempt, everyone still believes 3 online.
        believers = sum(
            1 for p in world.peers[:3] if p.directory.believes_online[3]
        )
        assert believers == 3

    def test_no_timer_after_offline(self):
        world = _world(5)
        world.establish(range(5))
        world.peers[4].go_offline()
        rounds_before = world.peers[4].round_counter
        world.sim.run(until=60.0)
        assert world.peers[4].round_counter == rounds_before


class TestAccountingInvariants:
    def test_bandwidth_series_matches_stats(self):
        world = _world(15)
        world.establish(range(15))
        world.peers[0].originate_update(500)
        world.sim.run(until=120.0)
        assert world.network.bandwidth.total_bytes() == world.network.stats.total_bytes

    def test_per_peer_bytes_double_count_total(self):
        """Each message is attributed to both endpoints, so per-peer
        bytes sum to exactly twice the total."""
        world = _world(12)
        world.establish(range(12))
        world.peers[0].originate_update(500)
        world.sim.run(until=120.0)
        stats = world.network.stats
        assert sum(stats.per_peer_bytes.values()) == 2 * stats.total_bytes

    def test_message_count_positive_even_when_idle(self):
        """A quiet community still gossips (cheap AE digests)."""
        world = _world(6)
        world.establish(range(6))
        world.sim.run(until=60.0)
        assert world.network.stats.total_messages > 0
        # ...but the volume is negligible: digest exchanges only.
        assert world.network.stats.total_bytes < 20_000

    def test_intervals_slow_down_when_idle(self):
        world = _world(6)
        world.establish(range(6), stable=False)
        world.sim.run(until=200.0)
        assert all(p.intervals.interval > 2.0 for p in world.peers)


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        results = []
        for _ in range(2):
            world = _world(20, seed=77)
            tracker = ConvergenceTracker()
            world.trackers.append(tracker)
            world.establish(range(20))
            rumor = world.peers[0].originate_update(300)
            world.tracked_register(rumor.rid, 0)
            world.sim.run(until=600.0, stop_when=tracker.all_converged)
            results.append(
                (
                    tracker.convergence_times()[rumor.rid],
                    world.network.stats.total_bytes,
                    world.network.stats.total_messages,
                )
            )
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        outcomes = set()
        for seed in (1, 2, 3):
            world = _world(20, seed=seed)
            world.establish(range(20))
            world.peers[0].originate_update(300)
            world.sim.run(until=60.0)
            outcomes.add(world.network.stats.total_messages)
        assert len(outcomes) > 1
