"""Summary-refresh diffs: tokens, bounded history, full-bloom fallback.

Satellite of the partial-view mode: a refresh requester advertises a
content-addressed **token** per held summary, and a responder whose
summary extends that bit set replies with just the added positions
instead of the full kilobytes-long bloom.  These tests pin the token
algebra (content-addressed, fold-order independent), the ``diff_since``
contract (empty / accumulated / ``None``-fallback), the monotone
equivalence of diff installs with full installs, and the node-level
serving path end to end over loopback.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.bloom.diff import BloomDiff
from repro.bloom.filter import BloomFilter
from repro.constants import PartialViewConfig
from repro.gossip.partialview import (
    _MAX_DIFF_EVENTS,
    ShardSummary,
)
from repro.gossip.wire import ShardSummaryReply, ShardSummaryRequest
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = pytest.mark.partialview

NUM_BITS = 4096
NUM_HASHES = 4


def _filter(*positions: int) -> BloomFilter:
    bf = BloomFilter(NUM_BITS, NUM_HASHES)
    bf.set_positions(np.array(positions, dtype=np.int64))
    return bf


def _summary() -> ShardSummary:
    return ShardSummary(3, NUM_BITS, NUM_HASHES)


# -- the token --------------------------------------------------------------


def test_token_is_content_addressed_not_fold_ordered():
    a, b = _summary(), _summary()
    f1, f2, f3 = _filter(1, 5, 9), _filter(5, 100), _filter(2000, 9)
    for bf in (f1, f2, f3):
        a.fold_filter(bf)
    for bf in (f3, f1, f2):
        b.fold_filter(bf)
    assert a.token == b.token != 0
    # version counts local folds — same here, but NOT content-addressed.
    assert a.bloom.bits.to_bytes() == b.bloom.bits.to_bytes()


def test_token_unchanged_by_redundant_folds():
    s = _summary()
    s.fold_filter(_filter(1, 2, 3))
    before = s.token
    s.fold_filter(_filter(2, 3))  # no new bits
    assert s.token == before


def test_empty_summary_token_is_zero():
    assert _summary().token == 0


# -- diff_since -------------------------------------------------------------


def test_diff_since_current_token_is_empty():
    s = _summary()
    s.fold_filter(_filter(1, 2, 3))
    diff = s.diff_since(s.token)
    assert diff is not None and diff.size == 0


def test_diff_since_accumulates_history_events():
    s = _summary()
    s.fold_filter(_filter(10, 20))
    stale = s.token
    s.fold_filter(_filter(30))
    s.fold_diff(BloomDiff(NUM_BITS, np.array([40, 50], dtype=np.int64)))
    diff = s.diff_since(stale)
    assert diff is not None
    assert sorted(diff.tolist()) == [30, 40, 50]


def test_diff_since_unknown_token_falls_back():
    s = _summary()
    s.fold_filter(_filter(1, 2))
    assert s.diff_since(0xDEADBEEF) is None


def test_history_overflow_drops_to_fallback():
    s = _summary()
    s.fold_filter(_filter(0))
    stale = s.token
    for i in range(_MAX_DIFF_EVENTS + 2):  # blow the event bound
        s.fold_filter(_filter(i + 1))
    assert s.diff_since(stale) is None
    # The freshly-cleared history still serves the no-op diff.
    current = s.diff_since(s.token)
    assert current is not None and current.size == 0


def test_install_diff_equals_full_install():
    base = _filter(1, 5, 9)
    extra = _filter(5, 77, 2048)
    # Node A installs full blooms; node B installs base then a diff.
    a, b = _summary(), _summary()
    a.install(base, 4, 7)
    a.install(extra, 5, 8)
    b.install(base, 4, 7)
    added = np.array([77, 2048], dtype=np.int64)
    b.install_diff(BloomDiff(NUM_BITS, added), 5, 8)
    assert a.bloom.bits.to_bytes() == b.bloom.bits.to_bytes()
    assert a.token == b.token
    assert b.member_count == 5 and b.version == 8


def test_foreign_geometry_diff_is_ignored():
    s = _summary()
    s.fold_filter(_filter(1))
    before = (s.token, s.bloom.bits.to_bytes())
    s.fold_diff(BloomDiff(NUM_BITS * 2, np.array([9], dtype=np.int64)))
    assert (s.token, s.bloom.bits.to_bytes()) == before


# -- the node-level serving path --------------------------------------------


class Community:
    """N loopback peers in partial-view mode."""

    def __init__(self, n: int, seed: int = 0) -> None:
        self.net = LoopbackNetwork(seed=seed)
        self.registries = {pid: Registry() for pid in range(n)}
        self.nodes = {
            pid: NetworkPeer(
                pid,
                "peer",
                pid,
                transport=self.net.transport(),
                seed=(seed << 16) | pid,
                registry=self.registries[pid],
                partial_view=PartialViewConfig(num_shards=4),
            )
            for pid in range(n)
        }

    async def boot(self) -> None:
        for node in self.nodes.values():
            await node.start()
        for pid in range(1, len(self.nodes)):
            await self.nodes[pid].join(self.nodes[0].address)
        for _ in range(200):
            if all(
                node.members() == sorted(self.nodes) for node in self.nodes.values()
            ):
                return
            for node in self.nodes.values():
                await node.gossip_round()
        raise AssertionError("loopback community failed to converge")

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()


def test_refresh_serves_diffs_to_a_current_requester():
    async def scenario():
        community = Community(8, seed=3)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(Document(f"d{pid}", f"gossip corpus shard {pid}"))
        # Let summaries propagate, then measure steady-state serving.
        for _ in range(20):
            for node in community.nodes.values():
                await node.gossip_round()
        diffs = sum(
            community.registries[pid].value("node", "partialview_summary_diffs_total")
            for pid in community.nodes
        )
        fulls = sum(
            community.registries[pid].value("node", "partialview_summary_fulls_total")
            for pid in community.nodes
        )
        # Warm-up costs fulls; once tokens circulate, diffs must dominate.
        assert diffs > 0
        assert diffs > fulls
        # And the summaries themselves converged to identical tokens.
        for shard in community.nodes[0].pview.shard_map.shards:
            tokens = {
                node.pview.summaries[shard].token
                for node in community.nodes.values()
                if shard in node.pview.summaries and shard != node.pview.home
            }
            assert len(tokens) <= 1
        await community.stop()

    asyncio.run(scenario())


def test_unknown_token_gets_the_full_bloom():
    async def scenario():
        community = Community(6, seed=5)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(Document(f"d{pid}", f"bloom corpus shard {pid}"))
        for _ in range(10):
            for node in community.nodes.values():
                await node.gossip_round()
        asker, server = community.nodes[0], community.nodes[1]
        foreign = [
            s for s in server.pview.shard_map.shards if s != server.pview.home
        ]
        # A forged token can't be in any history: every entry comes back
        # as a full bloom, none as a diff.
        reply = await asker._request_peer(
            1,
            ShardSummaryRequest(
                (), False, tuple((shard, 0xBAD70CEB) for shard in foreign)
            ),
        )
        assert isinstance(reply, ShardSummaryReply)
        assert reply.entries and all(not e.diff for e in reply.entries)
        # A current token comes back as an (empty) diff for every shard
        # the server actually holds a summary for.
        known = tuple(
            (shard, server.pview.summaries[shard].token)
            for shard in foreign
            if shard in server.pview.summaries
        )
        reply = await asker._request_peer(1, ShardSummaryRequest((), False, known))
        assert isinstance(reply, ShardSummaryReply)
        served = {e.shard: e for e in reply.entries}
        for shard, _ in known:
            assert served[shard].diff
        await community.stop()

    asyncio.run(scenario())
