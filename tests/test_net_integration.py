"""End-to-end community tests: convergence and search parity over the wire.

The two acceptance scenarios of the network layer:

* a three-node loopback community converges to **bit-identical** Bloom
  filter replicas purely through gossip; and
* a three-node community over **real TCP sockets** answers a ranked
  TF×IPF query with exactly the same top-k as the in-process community on
  the same corpus — the protocol machinery changes, the results don't.
"""

import asyncio

from repro.core.community import InProcessCommunity
from repro.net.client import NetworkSearchClient
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.text.document import Document

CORPUS = [
    (0, "d-epidemic", "epidemic algorithms maintain replicated databases"),
    (0, "d-gossip", "gossip protocols spread rumors through random exchanges"),
    (1, "d-bloom", "bloom filters summarize set membership compactly"),
    (1, "d-rank", "tf ipf ranking weights terms by peer frequency"),
    (2, "d-chord", "chord routes lookups over consistent hashing"),
    (2, "d-mix", "peers gossip bloom summaries and rank results"),
]


def _publish_corpus(nodes: list[NetworkPeer]) -> None:
    for pid, doc_id, text in CORPUS:
        nodes[pid].publish(Document(doc_id, text))


async def _converge(nodes: list[NetworkPeer], max_rounds: int = 30) -> int:
    """Drive gossip rounds until every digest agrees; returns rounds used."""
    for rnd in range(1, max_rounds + 1):
        for node in nodes:
            await node.gossip_round()
        if len({node.digest for node in nodes}) == 1:
            return rnd
    raise AssertionError(
        f"no convergence in {max_rounds} rounds: "
        f"{[hex(node.digest) for node in nodes]}"
    )


def test_loopback_community_converges_bit_identical():
    async def scenario():
        net = LoopbackNetwork(seed=42)
        nodes = [
            NetworkPeer(pid, "peer", pid, transport=net.transport(), seed=pid)
            for pid in range(3)
        ]
        for node in nodes:
            await node.start()
        _publish_corpus(nodes)
        await nodes[1].join(nodes[0].address)
        await nodes[2].join(nodes[1].address)
        rounds = await _converge(nodes)
        assert rounds < 30
        # Every replica is bit-identical to the publisher's live filter.
        for owner in nodes:
            for observer in nodes:
                assert (
                    observer.replica_of(owner.peer_id) == owner.peer.store.bloom_filter
                ), f"peer {observer.peer_id}'s replica of {owner.peer_id} diverged"
        assert all(node.members() == [0, 1, 2] for node in nodes)
        for node in nodes:
            await node.stop()

    asyncio.run(scenario())


def test_tcp_ranked_search_matches_in_process_community():
    query, k = "gossip bloom peers", 4

    # Reference: the same corpus in the in-process community.
    community = InProcessCommunity(num_peers=3)
    for pid, doc_id, text in CORPUS:
        community.publish(pid, Document(doc_id, text))
    expected = community.ranked_search(query, k=k)

    async def scenario():
        nodes = [NetworkPeer(pid, "127.0.0.1", 0, seed=pid) for pid in range(3)]
        for node in nodes:
            await node.start()
        _publish_corpus(nodes)
        await nodes[1].join(nodes[0].address)
        await nodes[2].join(nodes[0].address)
        await _converge(nodes)
        try:
            result = await NetworkSearchClient(nodes[0]).ranked_search(query, k=k)
        finally:
            for node in nodes:
                await node.stop()
        return result

    result = asyncio.run(scenario())
    assert [d.doc_id for d in result.results] == [d.doc_id for d in expected.results]
    for got, want in zip(result.results, expected.results):
        assert got.score == want.score
    assert result.ipf == expected.ipf


def test_tcp_exhaustive_search_matches_in_process_community():
    query = "gossip"

    community = InProcessCommunity(num_peers=3)
    for pid, doc_id, text in CORPUS:
        community.publish(pid, Document(doc_id, text))
    expected = sorted(d.doc_id for d in community.exhaustive_search(query))

    async def scenario():
        nodes = [NetworkPeer(pid, "127.0.0.1", 0, seed=pid) for pid in range(3)]
        for node in nodes:
            await node.start()
        _publish_corpus(nodes)
        await nodes[1].join(nodes[0].address)
        await nodes[2].join(nodes[0].address)
        await _converge(nodes)
        try:
            return await NetworkSearchClient(nodes[2]).exhaustive_search(query)
        finally:
            for node in nodes:
                await node.stop()

    assert asyncio.run(scenario()) == expected


def test_query_replies_heal_offline_entries_and_stale_outcomes_are_ignored():
    """Directory liveness evidence from the query plane.

    A successful RPC reply is the same positive evidence a gossip
    exchange is: it must heal an entry a failed contact marked offline
    (or a restarted peer stays invisible to ranked search until gossip
    happens to pick it).  And an outcome from an RPC that raced a
    JOIN/REJOIN re-addressing is about the *old* incarnation: it must
    not flip the fresh entry either way.
    """

    async def scenario():
        nodes = [NetworkPeer(pid, "127.0.0.1", 0, seed=pid) for pid in range(2)]
        for node in nodes:
            await node.start()
        for pid, doc_id, text in CORPUS:
            if pid < len(nodes):
                nodes[pid].publish(Document(doc_id, text))
        await nodes[1].join(nodes[0].address)
        await _converge(nodes)
        client = NetworkSearchClient(nodes[0])
        entry = nodes[0].peer.directory[1]
        try:
            nodes[0]._contact_failed(1)
            assert not entry.online
            # The peer still answers at its recorded address: the reply
            # heals the entry and it reappears in ranking candidates.
            assert await client.fetch(1, "d-bloom") is not None
            assert entry.online
            assert 1 in [pid for pid, _r in
                         (await client.ranked_search("bloom", k=2)).peer_ranking]

            # A late failure from the peer's previous address (it was
            # re-addressed mid-flight) must not mark the entry offline...
            nodes[0]._record_contact(1, "127.0.0.1:1", ok=False)
            assert entry.online
            # ...and a late success from it must not resurrect one.
            nodes[0]._contact_failed(1)
            nodes[0]._record_contact(1, "127.0.0.1:1", ok=True)
            assert not entry.online
            # Evidence about the current address still lands.
            nodes[0]._record_contact(1, entry.address, ok=True)
            assert entry.online
        finally:
            for node in nodes:
                await node.stop()

    asyncio.run(scenario())
