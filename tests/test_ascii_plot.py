"""Tests for the ASCII figure renderer."""

import pytest

from repro.experiments.ascii_plot import GLYPHS, plot_series
from repro.experiments.common import Series


def _series(label, points):
    s = Series(label)
    for x, y in points:
        s.add(x, y)
    return s


class TestPlot:
    def test_basic_render(self):
        s = _series("lin", [(0, 0), (5, 5), (10, 10)])
        out = plot_series([s], width=20, height=8, title="T", x_label="n", y_label="t")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "*" in out  # first glyph used
        assert "lin" in out  # legend
        assert "n vs t" in out

    def test_extremes_plotted_at_corners(self):
        s = _series("d", [(0, 0), (10, 10)])
        out = plot_series([s], width=10, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # Max y in the top row, min y in the bottom row.
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_multiple_series_use_distinct_glyphs(self):
        a = _series("a", [(0, 0), (10, 1)])
        b = _series("b", [(0, 10), (10, 9)])
        out = plot_series([a, b], width=20, height=8)
        assert GLYPHS[0] in out and GLYPHS[1] in out
        assert "a" in out and "b" in out

    def test_log_x_spreads_decades(self):
        s = _series("log", [(10, 1), (100, 2), (1000, 3)])
        out = plot_series([s], width=21, height=6, log_x=True)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        cols = sorted(
            col for row in rows for col, ch in enumerate(row) if ch == "*"
        )
        # Log axis places the middle decade near the middle column.
        assert len(cols) == 3
        assert abs(cols[1] - 10) <= 2

    def test_flat_series_ok(self):
        s = _series("flat", [(0, 5), (10, 5)])
        out = plot_series([s], width=12, height=5)
        assert "*" in out

    def test_axis_labels_show_ranges(self):
        s = _series("r", [(2, 3), (8, 9)])
        out = plot_series([s], width=16, height=5)
        assert "2" in out and "8" in out
        assert "9" in out and "3" in out

    def test_validation(self):
        s = _series("x", [(0, 0)])
        with pytest.raises(ValueError):
            plot_series([s], width=4, height=2)
        with pytest.raises(ValueError):
            plot_series([Series("empty")])
        with pytest.raises(ValueError):
            plot_series([_series(str(i), [(0, i)]) for i in range(9)])
