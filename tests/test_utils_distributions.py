"""Tests for the Weibull/Zipf/categorical sampling helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.distributions import sample_categorical, weibull_weights, zipf_pmf
from repro.utils.rng import make_rng, spawn_rngs


class TestWeibull:
    def test_normalized(self):
        w = weibull_weights(50, rng=make_rng(0))
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()

    def test_skew_below_one_shape(self):
        # Shape < 1 should be heavily skewed: top peer ≫ median peer.
        w = weibull_weights(1000, shape=0.5, rng=make_rng(0))
        assert w.max() > 10 * np.median(w)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            weibull_weights(0)
        with pytest.raises(ValueError):
            weibull_weights(10, shape=-1)


class TestZipf:
    def test_normalized_and_monotone(self):
        pmf = zipf_pmf(100, 1.0)
        assert pmf.sum() == pytest.approx(1.0)
        assert (np.diff(pmf) <= 0).all()

    def test_exponent_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert pmf == pytest.approx(np.full(10, 0.1))

    def test_rank_one_dominance(self):
        pmf = zipf_pmf(1000, 1.0)
        assert pmf[0] / pmf[9] == pytest.approx(10.0, rel=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_pmf(0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.5)


class TestCategorical:
    def test_matches_pmf_statistically(self):
        pmf = np.array([0.7, 0.2, 0.1])
        draws = sample_categorical(pmf, 20000, make_rng(1))
        freq = np.bincount(draws, minlength=3) / draws.size
        assert freq == pytest.approx(pmf, abs=0.02)

    def test_zero_size(self):
        assert sample_categorical(np.array([1.0]), 0, make_rng(0)).size == 0

    def test_unnormalized_pmf_ok(self):
        draws = sample_categorical(np.array([2.0, 2.0]), 1000, make_rng(0))
        assert set(draws.tolist()) == {0, 1}

    def test_invalid_pmfs(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            sample_categorical(np.array([-1.0, 2.0]), 10, rng)
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.0, 0.0]), 10, rng)
        with pytest.raises(ValueError):
            sample_categorical(np.array([]), 10, rng)


@given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_categorical_in_range(vocab, seed):
    """Samples always index into the pmf."""
    pmf = zipf_pmf(vocab, 1.0)
    draws = sample_categorical(pmf, 100, make_rng(seed))
    assert draws.min() >= 0 and draws.max() < vocab


class TestRngHelpers:
    def test_make_rng_passthrough(self):
        gen = make_rng(5)
        assert make_rng(gen) is gen

    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_spawn_independent(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = {c.random() for c in children}
        assert len(draws) == 4  # streams differ

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
