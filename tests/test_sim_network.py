"""Tests for the bandwidth-constrained network model."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network


def _net(speeds, latency=0.0, timeout=5.0):
    sim = Simulator()
    return sim, Network(sim, np.asarray(speeds, dtype=float), latency_s=latency,
                        failure_timeout_s=timeout)


class TestTransfers:
    def test_transfer_time_is_size_over_min_speed(self):
        sim, net = _net([100.0, 50.0])
        done = []
        net.send(0, 1, 500, on_delivered=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0)]  # 500 B / 50 B/s

    def test_latency_added(self):
        sim, net = _net([100.0, 100.0], latency=0.25)
        done = []
        net.send(0, 1, 100, on_delivered=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.25)]

    def test_link_serialization(self):
        """Two back-to-back transfers on the same link queue up."""
        sim, net = _net([100.0, 100.0, 100.0])
        done = []
        net.send(0, 1, 100, on_delivered=lambda: done.append(("first", sim.now)))
        net.send(0, 2, 100, on_delivered=lambda: done.append(("second", sim.now)))
        sim.run()
        assert done[0] == ("first", pytest.approx(1.0))
        assert done[1] == ("second", pytest.approx(2.0))  # waited for link 0

    def test_disjoint_links_parallel(self):
        sim, net = _net([100.0] * 4)
        done = []
        net.send(0, 1, 100, on_delivered=lambda: done.append(sim.now))
        net.send(2, 3, 100, on_delivered=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_zero_byte_message(self):
        sim, net = _net([100.0, 100.0])
        done = []
        net.send(0, 1, 0, on_delivered=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_self_send_rejected(self):
        _, net = _net([100.0, 100.0])
        with pytest.raises(ValueError):
            net.send(0, 0, 10)

    def test_negative_bytes_rejected(self):
        _, net = _net([100.0, 100.0])
        with pytest.raises(ValueError):
            net.send(0, 1, -1)


class TestFailures:
    def test_send_to_offline_fails_after_timeout(self):
        sim, net = _net([100.0, 100.0], timeout=3.0)
        failed = []
        net.set_online(1, False)
        net.send(0, 1, 100, on_failed=lambda: failed.append(sim.now))
        sim.run()
        assert failed == [pytest.approx(3.0)]
        assert net.stats.failed_messages == 1

    def test_target_goes_offline_mid_flight(self):
        sim, net = _net([100.0, 100.0], timeout=1.0)
        outcomes = []
        net.send(0, 1, 100, on_delivered=lambda: outcomes.append("ok"),
                 on_failed=lambda: outcomes.append("fail"))
        # Take peer 1 down before the 1-second transfer completes.
        sim.schedule(0.5, net.set_online, 1, False)
        sim.run()
        assert outcomes == ["fail"]

    def test_offline_sender_drops_silently(self):
        sim, net = _net([100.0, 100.0])
        outcomes = []
        net.set_online(0, False)
        net.send(0, 1, 100, on_delivered=lambda: outcomes.append("ok"),
                 on_failed=lambda: outcomes.append("fail"))
        sim.run()
        assert outcomes == []


class TestAccounting:
    def test_stats_track_bytes_and_messages(self):
        sim, net = _net([100.0] * 3)
        net.send(0, 1, 100)
        net.send(1, 2, 50)
        sim.run()
        assert net.stats.total_bytes == 150
        assert net.stats.total_messages == 2
        assert net.stats.per_peer_bytes[1] == 150  # sent 50, received 100

    def test_bandwidth_series_records(self):
        sim, net = _net([100.0, 100.0])
        net.send(0, 1, 1000)
        sim.run()
        assert net.bandwidth.total_bytes() == 1000

    def test_invalid_speeds(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, np.array([0.0]))
        with pytest.raises(ValueError):
            Network(sim, np.zeros(0))
