"""Smoke tests: every example script runs clean and prints its story.

The slower simulation examples are exercised at reduced scale by the
benches; here we run the fast ones end-to-end as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "ranked 'gossip peer protocols'" in out
    assert "peers contacted" in out
    assert "IPF weights" in out


def test_brokerage_demo():
    out = _run("brokerage_demo.py")
    assert "leaves gracefully" in out
    assert "lost" in out  # the abrupt-leave data loss


def test_pfs_demo():
    out = _run("pfs_demo.py")
    assert "/gossip directory" in out
    assert "brokered snippets" in out
    assert "reading" in out


def test_network_demo():
    out = _run("network_demo.py")
    assert "directories converged" in out
    assert "ranked 'gossip peer protocols' over TCP" in out
    assert "all peers stopped" in out


def test_chaos_demo():
    out = _run("chaos_demo.py")
    assert "chaos seed 1337" in out
    assert "converged bit-for-bit" in out
    assert "matches the in-process oracle exactly: True" in out
    assert "all peers stopped" in out


def test_serve_demo():
    out = _run("serve_demo.py")
    assert "cache hit on the repeat" in out
    assert "stale entry evicted" in out
    assert "rejected (retry_after" in out
    assert "upcall sub=" in out and "doc='late-news'" in out
    assert "all peers stopped" in out


def test_analytics_demo():
    out = _run("analytics_demo.py")
    assert "matches the oracle exactly" in out
    assert "0 entries adopted" in out
    assert "most popular first" in out
    assert "planetp://" in out
    assert "all peers stopped" in out


def test_ranked_search_example():
    out = _run("ranked_search.py")
    assert "adaptive" in out and "first-k" in out
    assert "R idf" in out


@pytest.mark.slow
def test_dynamic_community_example():
    out = _run("dynamic_community.py")
    assert "convergence" in out
    assert "aggregate gossip bandwidth" in out


@pytest.mark.slow
def test_gossip_scaling_example():
    out = _run("gossip_scaling.py")
    assert "AE-only" in out
    assert "trade-off" in out
