"""Snapshot container, atomic write protocol, generations, and pruning."""

from __future__ import annotations

import pytest

from repro.store.snapshot import (
    SNAPSHOT_MAGIC,
    decode_container,
    encode_container,
    load_latest_snapshot,
    prune_snapshots,
    snapshot_path,
    write_snapshot,
)


def test_container_roundtrip():
    payload = {"seq": 7, "docs": [{"id": "a", "tf": {"term": 2}}]}
    blob = encode_container(SNAPSHOT_MAGIC, payload)
    assert decode_container(SNAPSHOT_MAGIC, blob) == payload


@pytest.mark.parametrize(
    "mangle, message",
    [
        (lambda b: b"WRONGMAG" + b[8:], "bad magic"),
        (lambda b: b[:10], "truncated header"),
        (lambda b: b[:-1], "truncated payload"),
        (lambda b: b[:-3] + b"!!!", "CRC mismatch"),
    ],
)
def test_container_rejects_damage(mangle, message):
    blob = encode_container(SNAPSHOT_MAGIC, {"seq": 1})
    with pytest.raises(ValueError, match=message):
        decode_container(SNAPSHOT_MAGIC, mangle(blob))


def test_container_rejects_non_object_payload():
    body = b"[1,2,3]"
    import struct
    import zlib

    blob = SNAPSHOT_MAGIC + struct.pack(">IQ", zlib.crc32(body), len(body)) + body
    with pytest.raises(ValueError, match="not an object"):
        decode_container(SNAPSHOT_MAGIC, blob)


def test_empty_dir_loads_nothing(tmp_path):
    assert load_latest_snapshot(tmp_path) == (None, None)
    assert load_latest_snapshot(tmp_path / "never-created") == (None, None)


def test_write_then_load_newest_generation(tmp_path):
    write_snapshot(tmp_path, {"seq": 1, "docs": []})
    path2 = write_snapshot(tmp_path, {"seq": 2, "docs": [{"id": "d"}]})
    payload, path = load_latest_snapshot(tmp_path)
    assert path == path2
    assert payload == {"seq": 2, "docs": [{"id": "d"}]}


def test_seq_names_sort_in_recovery_order(tmp_path):
    # Zero-padding is what makes lexicographic order numeric: seq 9 must
    # not shadow seq 100.
    write_snapshot(tmp_path, {"seq": 9}, keep=10)
    write_snapshot(tmp_path, {"seq": 100}, keep=10)
    payload, _ = load_latest_snapshot(tmp_path)
    assert payload["seq"] == 100


def test_corrupt_newest_falls_back_to_older_valid(tmp_path):
    write_snapshot(tmp_path, {"seq": 1, "docs": ["old"]})
    newest = write_snapshot(tmp_path, {"seq": 2, "docs": ["new"]})
    blob = bytearray(newest.read_bytes())
    blob[-4] ^= 0xFF  # bit rot after a successful rename
    newest.write_bytes(bytes(blob))
    payload, path = load_latest_snapshot(tmp_path)
    assert payload == {"seq": 1, "docs": ["old"]}
    assert path == snapshot_path(tmp_path, 1)


def test_stray_tmp_from_torn_write_is_ignored_and_cleaned(tmp_path):
    write_snapshot(tmp_path, {"seq": 3})
    # A crash between tmp write and os.replace leaves this behind.
    torn = tmp_path / "snapshot-00000000000000000009.ppsnap.tmp"
    torn.write_bytes(b"half a snapsho")
    payload, _ = load_latest_snapshot(tmp_path)
    assert payload == {"seq": 3}
    removed = prune_snapshots(tmp_path, keep=2)
    assert torn in removed and not torn.exists()
    assert snapshot_path(tmp_path, 3).exists()


def test_pruning_keeps_newest_generations(tmp_path):
    for seq in range(1, 6):
        write_snapshot(tmp_path, {"seq": seq}, keep=2)
    remaining = sorted(tmp_path.glob("snapshot-*.ppsnap"))
    assert remaining == [snapshot_path(tmp_path, 4), snapshot_path(tmp_path, 5)]
