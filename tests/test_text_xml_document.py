"""Tests for XML snippet handling and the document model."""

import pytest

from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet, extract_text


class TestExtractText:
    def test_element_text(self):
        assert "hello" in extract_text("<doc>hello</doc>")

    def test_tags_indexed_as_terms(self):
        # The paper: "XML tags are indexed simply as normal terms."
        text = extract_text("<article><title>gossip</title></article>")
        assert "article" in text and "title" in text and "gossip" in text

    def test_tags_can_be_excluded(self):
        text = extract_text("<doc>body</doc>", include_tags=False)
        assert "doc" not in text.split()
        assert "body" in text

    def test_attributes_included(self):
        text = extract_text('<file url="http://x/y">content</file>')
        assert "http://x/y" in text

    def test_nested_and_tail_text(self):
        text = extract_text("<a>one<b>two</b>three</a>")
        for word in ("one", "two", "three"):
            assert word in text

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            extract_text("<unclosed>")


class TestXMLSnippet:
    def test_valid_snippet(self):
        s = XMLSnippet("s1", "<doc>some text</doc>")
        assert "some text" in s.text()

    def test_malformed_rejected_at_publish(self):
        with pytest.raises(ValueError):
            XMLSnippet("s1", "<broken")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            XMLSnippet("", "<doc>x</doc>")

    def test_to_document(self):
        s = XMLSnippet("s1", "<doc>payload words</doc>", {"url": "http://x"})
        doc = s.to_document()
        assert doc.doc_id == "s1"
        assert "payload" in doc.text
        assert doc.metadata["url"] == "http://x"


class TestDocument:
    def test_basics(self):
        d = Document("d1", "body text", {"k": "v"})
        assert len(d) == len("body text")
        assert d.metadata["k"] == "v"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Document("", "text")

    def test_frozen(self):
        d = Document("d1", "text")
        with pytest.raises(AttributeError):
            d.text = "other"
