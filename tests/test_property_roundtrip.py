"""Property-based round-trips: seeded random cases, 200+ per property.

Pure stdlib ``random`` (no hypothesis dependency needed at runtime): each
test prints nothing on success and embeds SEED plus the case index in
every failure message, so any counterexample reproduces exactly.
"""

import random
import string

import pytest

from repro.bloom.compress import compress_filter, decompress_filter
from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import GolombDecoder, GolombEncoder
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    JoinRequest,
    JoinSnapshot,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    SnapshotEntry,
    WireRumor,
)
from repro.net.codec import (
    ErrorReply,
    ExhaustiveQuery,
    ExhaustiveResponse,
    RankedQuery,
    RankedResponse,
    SnippetFetch,
    SnippetResponse,
    decode,
    encode,
)

pytestmark = pytest.mark.chaos

SEED = 20260806
CASES = 200


# ---------------------------------------------------------------------------
# Golomb coding
# ---------------------------------------------------------------------------


def _random_values(rng: random.Random) -> list[int]:
    dist = rng.randrange(4)
    n = rng.randrange(0, 200)
    if dist == 0:  # small gaps, the common Bloom case
        return [rng.randrange(0, 16) for _ in range(n)]
    if dist == 1:  # geometric-ish: what Golomb is optimal for
        return [min(int(rng.expovariate(0.1)), 10_000) for _ in range(n)]
    if dist == 2:  # wide uniform
        return [rng.randrange(0, 1 << 20) for _ in range(n)]
    return [0] * n  # degenerate all-zero run


def test_golomb_roundtrip_random_streams():
    rng = random.Random(f"{SEED}-golomb")
    for case in range(CASES + 50):
        m = rng.randrange(1, 513)
        values = _random_values(rng)
        encoder = GolombEncoder(m)
        encoder.encode_many(values)
        decoded = GolombDecoder(m, encoder.getvalue()).decode_many(len(values))
        assert decoded == values, f"seed={SEED} case={case} m={m}"


# ---------------------------------------------------------------------------
# Bloom filter compression
# ---------------------------------------------------------------------------


def _random_term(rng: random.Random) -> str:
    return "".join(rng.choices(string.ascii_lowercase, k=rng.randrange(1, 12)))


def test_bloom_compress_roundtrip_random_filters():
    rng = random.Random(f"{SEED}-bloom")
    for case in range(CASES):
        num_bits = rng.choice([64, 256, 1024, 8192, 65536])
        num_hashes = rng.randrange(1, 5)
        bf = BloomFilter(num_bits, num_hashes)
        bf.add_many(_random_term(rng) for _ in range(rng.randrange(0, 300)))
        blob = compress_filter(bf)
        back = decompress_filter(blob, num_hashes, bf.num_inserted)
        assert back == bf, f"seed={SEED} case={case} bits={num_bits}"
        assert back.bit_count() == bf.bit_count()
        # The method pair is the same codec.
        assert BloomFilter.from_compressed(bf.to_compressed(), num_hashes) == bf


def test_bloom_compress_roundtrip_extremes():
    empty = BloomFilter(512, 2)
    assert decompress_filter(compress_filter(empty)) == empty
    full = BloomFilter(512, 2)
    full.add_many(f"t{i}" for i in range(5000))  # near-saturated
    assert decompress_filter(compress_filter(full)) == full


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------


def _rid(rng: random.Random) -> int:
    return (rng.randrange(0, 1 << 16) << 32) | rng.randrange(0, 1 << 32)


def _rids(rng: random.Random) -> tuple:
    return tuple(_rid(rng) for _ in range(rng.randrange(0, 20)))


def _text(rng: random.Random) -> str:
    alphabet = string.printable + "éèüßλ中文"
    return "".join(rng.choices(alphabet, k=rng.randrange(0, 40)))


def _record(rng: random.Random) -> PeerRecord:
    return PeerRecord(
        rng.randrange(0, 1 << 16),
        _text(rng),
        rng.random() < 0.5,
        rng.randrange(0, 1 << 32),
    )


def _rumor(rng: random.Random) -> WireRumor:
    return WireRumor(
        _rid(rng),
        rng.choice(list(RumorKind)),
        rng.randrange(0, 1 << 16),
        round(rng.uniform(0.0, 1e9), 6),
        rng.randbytes(rng.randrange(0, 64)),
    )


def _score(rng: random.Random) -> float:
    # Exactly representable in f32, since RankedResponse carries f32 scores.
    return float(rng.randrange(0, 1 << 16)) / 256.0


def _random_message(rng: random.Random):
    builders = [
        lambda: RumorPush(_rids(rng)),
        lambda: RumorReply(_rids(rng), _rids(rng)),
        lambda: RumorData(tuple(_rumor(rng) for _ in range(rng.randrange(0, 8)))),
        lambda: AERequest(rng.randrange(0, 1 << 64)),
        lambda: AENothing(),
        lambda: AERecent(_rids(rng), rng.randrange(0, 1 << 32)),
        lambda: AESummary(
            tuple(_record(rng) for _ in range(rng.randrange(0, 8))), _rids(rng)
        ),
        lambda: PullRequest(_rids(rng)),
        lambda: JoinRequest(
            _record(rng),
            rng.randbytes(rng.randrange(0, 64)),
            _rid(rng),
            round(rng.uniform(0.0, 1e9), 6),
        ),
        lambda: JoinSnapshot(
            tuple(
                SnapshotEntry(_record(rng), rng.randbytes(rng.randrange(0, 32)))
                for _ in range(rng.randrange(0, 6))
            ),
            _rids(rng),
        ),
        lambda: RankedQuery(
            tuple(_text(rng) for _ in range(rng.randrange(0, 6))),
            tuple((_text(rng), _score(rng)) for _ in range(rng.randrange(0, 6))),
            rng.randrange(0, 1 << 16),
        ),
        lambda: RankedResponse(
            tuple((_text(rng), _score(rng)) for _ in range(rng.randrange(0, 10)))
        ),
        lambda: ExhaustiveQuery(tuple(_text(rng) for _ in range(rng.randrange(0, 8)))),
        lambda: ExhaustiveResponse(
            tuple(_text(rng) for _ in range(rng.randrange(0, 10)))
        ),
        lambda: SnippetFetch(_text(rng)),
        lambda: SnippetResponse(rng.random() < 0.5, _text(rng), _text(rng)),
        lambda: ErrorReply(_text(rng)),
    ]
    return rng.choice(builders)()


def test_codec_roundtrip_random_messages():
    rng = random.Random(f"{SEED}-codec")
    for case in range(CASES + 100):
        msg = _random_message(rng)
        back = decode(encode(msg))
        assert back == msg, f"seed={SEED} case={case} type={type(msg).__name__}"


def test_ranked_query_ipf_precision_survives_f64():
    # IPF weights ride the wire as f64: arbitrary doubles must round-trip.
    rng = random.Random(f"{SEED}-ipf")
    for case in range(CASES):
        q = RankedQuery(("t",), (("t", rng.uniform(0.0, 50.0)),), 5)
        assert decode(encode(q)) == q, f"seed={SEED} case={case}"
