"""Partial-view behavior under churn: shard rebalance and member death.

Two failure surfaces:

* **shard churn** — adding or removing a shard on the consistent-hash
  ring may move at most its fair share of pid assignments
  (``ceil(N / (S+1)) + 1``), every mover must involve the changed shard,
  and removal must restore the original assignment exactly (the ring is
  deterministic, not history-dependent);
* **member death** — killing a shard member mid-community must neither
  break search (the fan-out falls through to the shard's runner-up) nor
  permanently lose its shard-mates' filters: a survivor that dropped a
  home filter re-learns it through the ``want_members`` backfill path.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.constants import BloomConfig, PartialViewConfig
from repro.gossip.partialview import ShardMap
from repro.net.client import NetworkSearchClient
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = [pytest.mark.chaos, pytest.mark.partialview]

BLOOM = BloomConfig(num_bits=4096, num_hashes=2)
PVIEW = PartialViewConfig(num_shards=3, sample_size=2)


# -- consistent-hash rebalance bounds -----------------------------------------

#: (num_pids, num_shards, points_per_shard) — virtual-point counts high
#: enough that the arcs stay near their fair share.
REBALANCE_CONFIGS = [(200, 8, 64), (500, 8, 128), (256, 8, 192)]


@pytest.mark.parametrize("n,s,points", REBALANCE_CONFIGS)
def test_adding_a_shard_moves_at_most_its_fair_share(n, s, points):
    smap = ShardMap(s, points_per_shard=points)
    before = {pid: smap.shard_of(pid) for pid in range(n)}
    smap.add_shard(s)  # shard id s joins the ring
    after = {pid: smap.shard_of(pid) for pid in range(n)}
    movers = {pid for pid in before if before[pid] != after[pid]}
    bound = math.ceil(n / (s + 1)) + 1
    assert len(movers) <= bound, (len(movers), bound)
    # Every mover moved TO the new shard — no unrelated reshuffling.
    assert all(after[pid] == s for pid in movers)


@pytest.mark.parametrize("n,s,points", REBALANCE_CONFIGS)
def test_removing_a_shard_moves_only_its_own_pids(n, s, points):
    smap = ShardMap(s + 1, points_per_shard=points)
    before = {pid: smap.shard_of(pid) for pid in range(n)}
    victim = s  # the highest shard id leaves the ring
    smap.remove_shard(victim)
    after = {pid: smap.shard_of(pid) for pid in range(n)}
    movers = {pid for pid in before if before[pid] != after[pid]}
    # Exactly the victim's pids move (their arcs fall to successors);
    # everyone else's successor position is untouched.
    assert movers == {pid for pid in before if before[pid] == victim}
    bound = math.ceil(n / (s + 1)) + 1
    assert len(movers) <= bound, (len(movers), bound)


@pytest.mark.parametrize("n,s,points", REBALANCE_CONFIGS)
def test_shard_churn_round_trip_restores_assignments(n, s, points):
    smap = ShardMap(s, points_per_shard=points)
    before = {pid: smap.shard_of(pid) for pid in range(n)}
    smap.add_shard(s)
    smap.remove_shard(s)
    assert {pid: smap.shard_of(pid) for pid in range(n)} == before


def test_two_instances_agree_after_identical_churn():
    # Shard membership is gossip-free state: any two nodes applying the
    # same shard set must compute identical assignments.
    a, b = ShardMap(4), ShardMap(4)
    a.add_shard(4)
    b.add_shard(4)
    a.remove_shard(1)
    b.remove_shard(1)
    assert [a.shard_of(pid) for pid in range(300)] == [
        b.shard_of(pid) for pid in range(300)
    ]


# -- member death in a live partial-view community ----------------------------


def _pv_node(net: LoopbackNetwork, pid: int) -> NetworkPeer:
    return NetworkPeer(
        pid,
        "peer",
        pid,
        transport=net.transport(),
        seed=pid,
        registry=Registry(),
        bloom_config=BLOOM,
        partial_view=PVIEW,
    )


async def _converge(nodes: list[NetworkPeer], rounds: int = 40) -> None:
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()


def test_killed_shard_member_neither_breaks_search_nor_loses_filters():
    async def scenario():
        net = LoopbackNetwork(seed=23)
        nodes = [_pv_node(net, pid) for pid in range(9)]
        for node in nodes:
            await node.start()
        for node in nodes:
            pid = node.peer_id
            node.publish(Document(f"doc-{pid}", f"topic{pid} shared corpus term"))
        for node in nodes[1:]:
            await node.join(nodes[0].address)
        await _converge(nodes)

        # Kill one member of a shard that is foreign to the searcher and
        # has at least one survivor to fall through to.
        searcher = nodes[0]
        pview = searcher.pview
        assert pview is not None
        by_shard: dict[int, list[NetworkPeer]] = {}
        for node in nodes[1:]:
            by_shard.setdefault(pview.shard_of(node.peer_id), []).append(node)
        shard, members = next(
            (s, m)
            for s, m in sorted(by_shard.items())
            if s != pview.home and len(m) >= 2
        )
        victim, survivor = members[0], members[1]
        await victim.stop()

        # Search still answers: the fan-out's first contact may hit the
        # corpse, fail, and fall through to the shard's runner-up.
        client = NetworkSearchClient(searcher)
        result = await client.ranked_search("shared corpus", k=9)
        got = {d.doc_id for d in result.results}
        live = {f"doc-{n.peer_id}" for n in nodes if n is not victim}
        assert live <= got

        # A survivor in the victim's shard drops one of its home filters
        # (as a restart-from-empty would): the want_members backfill path
        # re-learns it from whichever peer still holds a copy.
        mate = survivor
        lost_pid = next(
            pid
            for pid, entry in mate.peer.directory.items()
            if pid != mate.peer_id
            and mate.pview is not None
            and mate.pview.shard_of(pid) == mate.pview.home
            and entry.bloom_filter is not None
        )
        mate.peer.directory[lost_pid].bloom_filter = None
        for _ in range(30):
            await mate._backfill_home()  # random target per call
            if mate.peer.directory[lost_pid].bloom_filter is not None:
                break
        relearned = mate.peer.directory[lost_pid].bloom_filter
        assert relearned is not None
        # Bit-identical to the authoritative copy, not merely non-None.
        owner = next(n for n in nodes if n.peer_id == lost_pid)
        if owner is not victim:
            assert relearned == owner.peer.store.bloom_filter

        for node in nodes:
            if node is not victim:
                await node.stop()

    asyncio.run(scenario())
