"""End-to-end integration tests crossing every subsystem.

These are the "does the whole paper hang together" checks: corpora flow
through communities into both search algorithms; gossip convergence and
search agree on directory contents; PFS rides on top of everything.
"""

import numpy as np
import pytest

from repro.constants import GossipConfig, RankingConfig
from repro.core.community import InProcessCommunity
from repro.corpus.collections import make_collection
from repro.experiments.search_quality import build_testbed, evaluate_k
from repro.gossip.simulation import GossipSimulation
from repro.pfs.pfs import PFS
from repro.sim.metrics import ConvergenceTracker
from repro.sim.topology import lan_topology
from repro.text.document import Document


class TestSearchPipeline:
    @pytest.fixture(scope="class")
    def testbed(self):
        collection = make_collection("MED", scale=0.2, seed=21)
        return build_testbed(collection, num_peers=60, seed=21)

    def test_ipf_tracks_idf(self, testbed):
        """Figure 6(a)'s headline: TF×IPF recall/precision stays close to
        the centralized oracle."""
        point = evaluate_k(testbed, 40)
        assert point.recall_ipf >= point.recall_idf - 0.10
        assert point.precision_ipf >= point.precision_idf - 0.10

    def test_recall_grows_with_k(self, testbed):
        small = evaluate_k(testbed, 10)
        large = evaluate_k(testbed, 80)
        assert large.recall_ipf > small.recall_ipf

    def test_adaptive_beats_naive_recall(self, testbed):
        adaptive = evaluate_k(testbed, 20, stopping="adaptive")
        naive = evaluate_k(testbed, 20, stopping="first-k")
        assert adaptive.recall_ipf >= naive.recall_ipf
        # And the naive rule contacts no more peers than adaptive.
        assert naive.avg_peers_ipf <= adaptive.avg_peers_ipf

    def test_best_is_lower_bound(self, testbed):
        point = evaluate_k(testbed, 20)
        assert point.avg_peers_best <= point.avg_peers_ipf

    def test_peers_contacted_well_below_community(self, testbed):
        point = evaluate_k(testbed, 20)
        assert point.avg_peers_ipf < testbed.num_peers / 2


class TestGossipDirectoryAgreement:
    def test_converged_community_has_identical_directories(self):
        cfg = GossipConfig(base_interval_s=1.0, max_interval_s=2.0)
        world = GossipSimulation(lan_topology(15), cfg, seed=33)
        tracker = ConvergenceTracker()
        world.trackers.append(tracker)
        world.establish(range(15))
        rumors = [world.peers[i].originate_update(200) for i in (0, 5, 9)]
        for rumor in rumors:
            world.tracked_register(rumor.rid, rumor.origin)
        world.sim.run(until=900.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()
        digests = {p.directory.digest for p in world.peers}
        assert len(digests) == 1

    def test_conservation_of_knowledge(self):
        """No peer ever knows a rumor that was never created, and the
        origin always knows its own rumor."""
        cfg = GossipConfig(base_interval_s=1.0, max_interval_s=2.0)
        world = GossipSimulation(lan_topology(10), cfg, seed=34)
        world.establish(range(10))
        rumor = world.peers[3].originate_update(100)
        world.sim.run(until=120.0)
        valid_ids = {rumor.rid}
        for peer in world.peers:
            assert peer.directory.known <= valid_ids
        assert world.peers[3].directory.knows(rumor.rid)


class TestPFSOverCommunity:
    def test_full_stack_share_and_find(self):
        clock = [0.0]
        community = InProcessCommunity(4, clock=lambda: clock[0])
        for pid in range(4):
            community.brokerage.add_member(pid)
        alice, bob = PFS(community, 0), PFS(community, 1)
        bob.publish_file("/thesis.txt", "gossip based replication of bloom filters")
        d = alice.make_directory("/replication")
        assert "thesis.txt" in d.links
        servers = {0: alice.files, 1: bob.files}
        content = alice.read_url(d.links["thesis.txt"], servers)
        assert "replication" in content

    def test_ranked_search_sees_pfs_files(self):
        community = InProcessCommunity(3)
        pfs = PFS(community, 2)
        pfs.publish_file("/ml.txt", "machine learning with gradient descent")
        community.publish(0, Document("d-noise", "completely unrelated"))
        result = community.ranked_search("gradient descent", k=2)
        assert result.doc_ids() == ["pfs:2:/ml.txt"]


class TestDeterminism:
    def test_search_experiment_reproducible(self):
        collection = make_collection("MED", scale=0.1, seed=5)
        a = build_testbed(collection, num_peers=30, seed=5)
        b = build_testbed(collection, num_peers=30, seed=5)
        pa = evaluate_k(a, 20)
        pb = evaluate_k(b, 20)
        assert pa.recall_ipf == pb.recall_ipf
        assert pa.avg_peers_ipf == pb.avg_peers_ipf
