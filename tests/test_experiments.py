"""Tests for the experiment harness: each runner produces the right
structure and the paper's qualitative shape at miniature scale."""

import pytest

from repro.constants import GossipConfig
from repro.experiments.common import Series, format_series, format_table
from repro.experiments.microbench import PAPER_TABLE1, run_microbench
from repro.experiments.propagation import SCENARIOS, figure2_series, run_figure2
from repro.experiments.table3 import format_table3, run_table3


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_and_format(self):
        s1 = Series("one")
        s1.add(1, 10)
        s1.add(2, 20)
        s2 = Series("two")
        s2.add(2, 200)
        text = format_series([s1, s2], "x", "y")
        assert "one" in text and "two" in text
        assert len(s1) == 2


class TestMicrobench:
    def test_rows_cover_all_operations(self):
        rows = run_microbench(key_counts=(200, 500, 1000), repeats=1)
        assert {r.operation for r in rows} == set(PAPER_TABLE1)

    def test_linear_model_quality(self):
        rows = run_microbench(key_counts=(500, 2000, 5000, 10000), repeats=2)
        by_op = {r.operation: r for r in rows}
        # Bloom insertion cost must be dominated by the per-key term and
        # fit a line well (the paper's model form).
        insert = by_op["bloom_insert"]
        assert insert.fit.slope > 0
        assert insert.fit.r_squared > 0.9

    def test_cost_string_format(self):
        rows = run_microbench(key_counts=(200, 400), repeats=1)
        assert "no. keys" in rows[0].cost_string()

    def test_too_few_counts_rejected(self):
        with pytest.raises(ValueError):
            run_microbench(key_counts=(100,))


class TestTable3:
    def test_rows_paper_columns(self):
        rows = run_table3(names=["MED"], scale=0.05)
        assert rows[0]["paper_documents"] == 1033
        assert rows[0]["gen_documents"] >= 50
        text = format_table3(rows)
        assert "MED" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def sweep(self):
        fast = {
            "LAN": ("lan", {"base_interval_s": 2.0, "max_interval_s": 4.0}),
            "LAN-AE": ("lan", {"base_interval_s": 2.0, "max_interval_s": 4.0,
                               "anti_entropy_only": True}),
        }
        original = dict(SCENARIOS)
        SCENARIOS.update(fast)
        try:
            yield run_figure2(sizes=(20, 40), scenarios=("LAN", "LAN-AE"))
        finally:
            SCENARIOS.clear()
            SCENARIOS.update(original)

    def test_all_runs_converged(self, sweep):
        for runs in sweep.results.values():
            assert all(r.converged for r in runs)

    def test_ae_only_costs_more(self, sweep):
        lan = sweep.scenario("LAN")
        ae = sweep.scenario("LAN-AE")
        for planetp, baseline in zip(lan, ae):
            assert baseline.total_bytes > planetp.total_bytes

    def test_series_structure(self, sweep):
        panels = figure2_series(sweep)
        assert {s.label for s in panels["time"]} == {"LAN", "LAN-AE"}
        assert all(len(s) == 2 for s in panels["volume"])
        assert panels["bandwidth"] == []  # no DSL scenario in this sweep


class TestScenarioTable:
    def test_paper_scenarios_present(self):
        assert set(SCENARIOS) == {"LAN", "LAN-AE", "DSL-10", "DSL-30", "DSL-60", "MIX"}
        topo, overrides = SCENARIOS["DSL-10"]
        assert topo == "dsl"
        assert overrides["base_interval_s"] == 10.0
