"""Tests for the local data store and the PlanetP peer."""

import pytest

from repro.constants import BloomConfig
from repro.core.datastore import LocalDataStore
from repro.core.peer import PlanetPPeer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet


class TestDataStore:
    def test_publish_indexes_and_summarizes(self):
        store = LocalDataStore()
        store.publish(Document("d1", "gossip protocols everywhere"))
        assert "d1" in store
        assert store.index.document_frequency("gossip") == 1
        assert "gossip" in store.bloom_filter

    def test_publish_xml_snippet(self):
        store = LocalDataStore()
        store.publish(XMLSnippet("s1", "<doc>bloom filters rock</doc>"))
        assert "bloom" in store.bloom_filter
        assert store.get("s1").metadata == {}

    def test_duplicate_publish_rejected(self):
        store = LocalDataStore()
        store.publish(Document("d1", "text"))
        with pytest.raises(ValueError):
            store.publish(Document("d1", "other"))

    def test_filter_version_bumps_on_new_terms_only(self):
        store = LocalDataStore()
        v0 = store.filter_version
        store.publish(Document("d1", "unique words here"))
        v1 = store.filter_version
        assert v1 > v0
        # Re-publishing the same vocabulary adds no new terms.
        store.publish(Document("d2", "unique words here"))
        assert store.filter_version == v1

    def test_remove_marks_filter_stale_and_regenerates(self):
        store = LocalDataStore()
        store.publish(Document("d1", "ephemeral content"))
        store.publish(Document("d2", "durable content"))
        store.remove("d1")
        # Accessing the filter triggers regeneration; the removed
        # document's unique term is gone.
        bf = store.bloom_filter
        assert "ephemer" in [t for t in store.index.terms()] or True  # stemmed
        assert store.index.num_documents() == 1
        assert "durabl" in bf  # stemmed form of 'durable'

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LocalDataStore().remove("ghost")

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            LocalDataStore().get("ghost")

    def test_custom_bloom_config(self):
        store = LocalDataStore(bloom_config=BloomConfig(num_bits=1024, num_hashes=3))
        assert store.bloom_filter.num_bits == 1024

    def test_publish_after_remove_reindexes(self):
        # Regression: a remove followed by a publish of the same id must
        # behave exactly like a first publish (index, filter, content).
        store = LocalDataStore()
        store.publish(Document("d1", "original wording"))
        store.remove("d1")
        store.publish(Document("d1", "replacement vocabulary"))
        assert store.get("d1").text == "replacement vocabulary"
        assert store.index.document_frequency("replac") == 1
        assert store.index.document_frequency("origin") == 0
        assert "replac" in store.bloom_filter

    def test_on_operation_fires_after_apply_with_analyzed_terms(self):
        store = LocalDataStore()
        seen = []

        def hook(op, doc, term_freqs):
            # Fired after the mutation applied: the store already holds
            # (or no longer holds) the document when the hook runs.
            seen.append((op, doc.doc_id, term_freqs, doc.doc_id in store))

        store.on_operation = hook
        store.publish(Document("d1", "gossip gossip protocols"))
        store.remove("d1")
        assert seen[0][0:2] == ("publish", "d1") and seen[0][3] is True
        assert seen[0][2]["gossip"] == 2  # analyzed term frequencies
        assert seen[1] == ("remove", "d1", None, False)

    def test_on_operation_skipped_on_rejected_mutations(self):
        store = LocalDataStore()
        calls = []
        store.on_operation = lambda op, doc, tf: calls.append(op)
        store.publish(Document("d1", "text"))
        with pytest.raises(ValueError):
            store.publish(Document("d1", "duplicate"))
        with pytest.raises(KeyError):
            store.remove("ghost")
        assert calls == ["publish"]

    def test_apply_paths_bypass_the_hook(self):
        # Replay (apply_publish/apply_remove) must never re-log.
        store = LocalDataStore()
        calls = []
        store.on_operation = lambda op, doc, tf: calls.append(op)
        store.apply_publish(Document("d1", "replayed"), {"replay": 1})
        store.apply_remove("d1")
        assert calls == []
        assert store.index.num_documents() == 0

    def test_restore_requires_empty_store(self):
        store = LocalDataStore()
        store.publish(Document("d1", "occupied"))
        with pytest.raises(ValueError, match="empty"):
            store.restore([], None, 0)


class TestPeer:
    def test_publish_via_peer(self):
        peer = PlanetPPeer(0)
        peer.publish(Document("d1", "content here"))
        assert len(peer.store) == 1

    def test_directory_updates_respect_versions(self):
        peer = PlanetPPeer(0)
        other = PlanetPPeer(1)
        other.publish(Document("d1", "remote content"))
        bf = other.store.bloom_filter
        assert peer.update_directory(1, other.address, bf, 5)
        # A stale version must not overwrite.
        assert not peer.update_directory(1, other.address, bf, 3)
        assert peer.directory[1].filter_version == 5

    def test_online_status_changes(self):
        peer = PlanetPPeer(0)
        other = PlanetPPeer(1)
        peer.update_directory(1, other.address, other.store.bloom_filter, 0)
        peer.mark_peer_offline(1)
        assert peer.known_online_peers() == []
        assert peer.update_directory(1, other.address, other.store.bloom_filter, 0,
                                     online=True)
        assert peer.known_online_peers() == [1]

    def test_candidate_peers_uses_filters(self):
        searcher = PlanetPPeer(0)
        holder = PlanetPPeer(1)
        empty = PlanetPPeer(2)
        holder.publish(Document("d1", "gossip protocols"))
        searcher.update_directory(1, holder.address, holder.store.bloom_filter, 1)
        searcher.update_directory(2, empty.address, empty.store.bloom_filter, 1)
        terms = ["gossip"]
        assert searcher.candidate_peers(terms) == [1]

    def test_candidate_includes_self(self):
        peer = PlanetPPeer(0)
        peer.publish(Document("d1", "local gossip"))
        assert peer.candidate_peers(["gossip"]) == [0]

    def test_drop_peer(self):
        peer = PlanetPPeer(0)
        peer.update_directory(1, "addr", PlanetPPeer(1).store.bloom_filter, 0)
        peer.drop_peer(1)
        assert 1 not in peer.directory
        with pytest.raises(ValueError):
            peer.drop_peer(0)

    def test_invalid_peer_id(self):
        with pytest.raises(ValueError):
            PlanetPPeer(-1)
