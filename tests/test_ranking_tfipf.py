"""Tests for TF×IPF peer ranking and the distributed search loop."""

import math

import pytest

from repro.bloom.filter import BloomFilter
from repro.ranking.stopping import AdaptiveStopping, FirstKStopping, NeverStop
from repro.ranking.tfidf import RankedDoc
from repro.ranking.tfipf import TFIPFSearch, compute_ipf, rank_peers


class StubBackend:
    """A hand-wired community: explicit filters and canned local results."""

    def __init__(self, peer_terms: dict[int, list[str]], peer_docs: dict[int, list[RankedDoc]]):
        self._filters = {}
        for pid, terms in peer_terms.items():
            bf = BloomFilter(8192, 2)
            bf.add_many(terms)
            self._filters[pid] = bf
        self._docs = peer_docs
        self.queries: list[int] = []

    def online_peer_ids(self):
        return sorted(self._filters)

    def peer_filter(self, pid):
        return self._filters[pid]

    def query_peer(self, pid, terms, ipf, k):
        self.queries.append(pid)
        return self._docs.get(pid, [])[:k]


@pytest.fixture
def backend() -> StubBackend:
    return StubBackend(
        peer_terms={
            0: ["gossip", "bloom"],
            1: ["gossip"],
            2: ["bloom"],
            3: ["unrelated"],
        },
        peer_docs={
            0: [RankedDoc("a0", 3.0), RankedDoc("b0", 2.0)],
            1: [RankedDoc("a1", 2.5)],
            2: [RankedDoc("a2", 1.0)],
        },
    )


class TestIPFComputation:
    def test_ipf_counts_filters(self, backend):
        ipf, hits = compute_ipf(["gossip", "bloom", "absent"], backend)
        # gossip on 2 of 4 peers, bloom on 2 of 4, absent on none.
        assert ipf["gossip"] == pytest.approx(math.log(1 + 4 / 2))
        assert ipf["bloom"] == pytest.approx(math.log(1 + 4 / 2))
        assert ipf["absent"] == 0.0
        assert set(hits) == {0, 1, 2}

    def test_rank_peers_equation3(self, backend):
        ranking, ipf = rank_peers(["gossip", "bloom"], backend)
        # Peer 0 has both terms: top rank; 1 and 2 tie, break on id.
        assert [pid for pid, _ in ranking] == [0, 1, 2]
        assert ranking[0][1] == pytest.approx(ipf["gossip"] + ipf["bloom"])

    def test_peers_without_terms_excluded(self, backend):
        ranking, _ = rank_peers(["gossip"], backend)
        assert all(pid in (0, 1) for pid, _ in ranking)


class TestSearchLoop:
    def test_search_returns_merged_topk(self, backend):
        search = TFIPFSearch(backend, stopping=NeverStop())
        result = search.search(["gossip", "bloom"], k=3)
        assert result.doc_ids() == ["a0", "a1", "b0"]
        assert result.peers_contacted == [0, 1, 2]

    def test_adaptive_stopping_prunes_contacts(self):
        # 30 peers hold the term; only the first holds good documents and
        # every later peer returns nothing. With p=2, the search should
        # stop after ~k retrieved + 2 unproductive peers.
        peer_terms = {pid: ["tt"] for pid in range(30)}
        peer_docs = {0: [RankedDoc(f"d{i}", 10.0 - i) for i in range(5)]}
        backend = StubBackend(peer_terms, peer_docs)
        search = TFIPFSearch(backend, stopping=AdaptiveStopping())
        result = search.search(["tt"], k=3)
        assert result.num_peers_contacted < 10

    def test_first_k_stops_immediately(self, backend):
        search = TFIPFSearch(backend, stopping=FirstKStopping())
        result = search.search(["gossip", "bloom"], k=2)
        assert result.num_peers_contacted == 1  # peer 0 returned 2 docs

    def test_group_size_contacts_in_parallel(self, backend):
        search = TFIPFSearch(backend, stopping=FirstKStopping(), group_size=3)
        result = search.search(["gossip", "bloom"], k=2)
        # The whole first group is contacted even though peer 0 sufficed.
        assert result.num_peers_contacted == 3

    def test_duplicate_docs_keep_best_score(self):
        backend = StubBackend(
            peer_terms={0: ["tt"], 1: ["tt"]},
            peer_docs={
                0: [RankedDoc("shared", 1.0)],
                1: [RankedDoc("shared", 2.0)],
            },
        )
        search = TFIPFSearch(backend, stopping=NeverStop())
        result = search.search(["tt"], k=1)
        assert result.results == [RankedDoc("shared", 2.0)]

    def test_k_validation(self, backend):
        search = TFIPFSearch(backend)
        with pytest.raises(ValueError):
            search.search(["gossip"], k=0)

    def test_group_size_validation(self, backend):
        with pytest.raises(ValueError):
            TFIPFSearch(backend, group_size=0)

    def test_no_matching_peers(self, backend):
        search = TFIPFSearch(backend)
        result = search.search(["nothing-has-this"], k=5)
        assert result.results == []
        assert result.peers_contacted == []


class TestEvaluationMetrics:
    def test_recall_precision(self):
        from repro.ranking.evaluation import precision, recall

        relevant = {"a", "b", "c", "d"}
        presented = ["a", "b", "x"]
        assert recall(presented, relevant) == pytest.approx(0.5)
        assert precision(presented, relevant) == pytest.approx(2 / 3)

    def test_edge_cases(self):
        from repro.ranking.evaluation import precision, recall

        assert recall(["x"], set()) == 1.0
        assert precision([], {"a"}) == 1.0

    def test_averaging(self):
        from repro.corpus.queries import Query
        from repro.ranking.evaluation import average_recall_precision

        q1 = Query("q1", ("t",), frozenset({"a", "b"}))
        q2 = Query("q2", ("t",), frozenset({"c"}))
        avg_r, avg_p = average_recall_precision(
            [(q1, ["a"]), (q2, ["c", "x"])]
        )
        assert avg_r == pytest.approx((0.5 + 1.0) / 2)
        assert avg_p == pytest.approx((1.0 + 0.5) / 2)

    def test_empty_average_raises(self):
        from repro.ranking.evaluation import average_recall_precision

        with pytest.raises(ValueError):
            average_recall_precision([])
