"""Tests for the Table 3 collection presets and the peer partitioner."""

import numpy as np
import pytest

from repro.corpus.collections import (
    COLLECTION_PRESETS,
    collection_table_rows,
    make_collection,
)
from repro.corpus.partition import partition_documents
from repro.corpus.queries import Query


class TestPresets:
    def test_paper_table3_values(self):
        """The presets must match the paper's Table 3 exactly."""
        expected = {
            "CACM": (52, 3204, 75493, 2.1),
            "MED": (30, 1033, 83451, 1.0),
            "CRAN": (152, 1400, 117718, 1.6),
            "CISI": (76, 1460, 84957, 2.4),
            "AP89": (97, 84678, 129603, 266.0),
        }
        assert set(COLLECTION_PRESETS) == set(expected)
        for name, (q, d, w, mb) in expected.items():
            spec = COLLECTION_PRESETS[name]
            assert (spec.num_queries, spec.num_documents, spec.num_words, spec.size_mb) == (
                q, d, w, mb,
            )

    def test_make_collection_scaled(self):
        coll = make_collection("CACM", scale=0.1, seed=0)
        assert coll.name == "CACM"
        assert coll.num_documents == pytest.approx(320, abs=2)
        assert coll.num_queries >= 10

    def test_case_insensitive(self):
        assert make_collection("med", scale=0.1).name == "MED"

    def test_unknown_collection(self):
        with pytest.raises(KeyError):
            make_collection("WEB")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            make_collection("CACM", scale=0.0)
        with pytest.raises(ValueError):
            make_collection("CACM", scale=1.5)

    def test_table_rows_structure(self):
        rows = collection_table_rows(["CACM"], scale=0.02)
        assert len(rows) == 1
        row = rows[0]
        assert row["trace"] == "CACM"
        assert row["paper_documents"] == 3204
        assert row["gen_documents"] > 0
        assert row["gen_size_mb"] > 0


class TestPartition:
    def test_partition_covers_all_documents(self):
        parts = partition_documents(1000, 37, seed=0)
        assert len(parts) == 37
        combined = np.concatenate(parts)
        assert np.array_equal(np.sort(combined), np.arange(1000))

    def test_weibull_is_skewed(self):
        parts = partition_documents(5000, 100, distribution="weibull", shape=0.5, seed=1)
        sizes = np.array(sorted((len(p) for p in parts), reverse=True))
        # Top 10% of peers should hold well over 10% of documents.
        assert sizes[:10].sum() > 0.25 * 5000

    def test_uniform_is_flatter_than_weibull(self):
        wei = partition_documents(5000, 100, "weibull", shape=0.5, seed=2)
        uni = partition_documents(5000, 100, "uniform", seed=2)
        assert np.std([len(p) for p in uni]) < np.std([len(p) for p in wei])

    def test_deterministic(self):
        a = partition_documents(100, 10, seed=5)
        b = partition_documents(100, 10, seed=5)
        for pa, pb in zip(a, b):
            assert np.array_equal(pa, pb)

    def test_zero_documents(self):
        parts = partition_documents(0, 5, seed=0)
        assert all(p.size == 0 for p in parts)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_documents(10, 0)
        with pytest.raises(ValueError):
            partition_documents(-1, 5)
        with pytest.raises(ValueError):
            partition_documents(10, 5, distribution="exotic")


class TestQuery:
    def test_query_basics(self):
        q = Query("q1", ("gossip", "peer"), frozenset({"d1"}))
        assert q.text == "gossip peer"
        assert len(q) == 2

    def test_query_validation(self):
        with pytest.raises(ValueError):
            Query("", ("t",))
        with pytest.raises(ValueError):
            Query("q1", ())
