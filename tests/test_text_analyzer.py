"""Tests for the analysis pipeline and stop words."""

from collections import Counter

from repro.text.analyzer import Analyzer
from repro.text.stopwords import STOPWORDS, is_stopword


class TestStopwords:
    def test_common_function_words_present(self):
        for w in ("the", "of", "and", "is", "etc"):
            assert is_stopword(w)

    def test_content_words_absent(self):
        for w in ("gossip", "bloom", "filter", "peer"):
            assert not is_stopword(w)

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)


class TestAnalyzer:
    def test_full_pipeline(self):
        a = Analyzer()
        assert a.analyze("The cats are running") == ["cat", "run"]

    def test_no_stopword_removal(self):
        a = Analyzer(remove_stopwords=False, stem=True)
        assert "the" in a.analyze("the cats")

    def test_no_stemming(self):
        a = Analyzer(remove_stopwords=True, stem=False)
        assert a.analyze("the cats are running") == ["cats", "running"]

    def test_term_frequencies(self):
        a = Analyzer(remove_stopwords=False, stem=False)
        freqs = a.term_frequencies("ab ab cd")
        assert freqs == Counter({"ab": 2, "cd": 1})

    def test_analyze_query_dedups_preserving_order(self):
        a = Analyzer(remove_stopwords=False, stem=False)
        assert a.analyze_query("zz yy zz xx yy") == ["zz", "yy", "xx"]

    def test_query_and_document_agree(self):
        """The invariant everything rests on: queries and documents map
        through the identical pipeline, so terms align."""
        a = Analyzer()
        doc_terms = set(a.analyze("distributed systems are running experiments"))
        query_terms = a.analyze_query("running experiment")
        assert all(t in doc_terms for t in query_terms)

    def test_stem_cache_consistency(self):
        a = Analyzer()
        first = a.analyze("running running running")
        second = a.analyze("running")
        assert first == ["run", "run", "run"]
        assert second == ["run"]

    def test_empty_text(self):
        a = Analyzer()
        assert a.analyze("") == []
        assert a.term_frequencies("") == Counter()
