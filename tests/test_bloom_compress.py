"""Tests for run-length + Golomb Bloom filter compression (Section 7.1)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.compress import compress_filter, compressed_size, decompress_filter
from repro.bloom.filter import BloomFilter


class TestRoundtrip:
    def test_empty_filter(self):
        bf = BloomFilter(4096, 2)
        assert decompress_filter(compress_filter(bf), 2) == bf

    def test_small_filter(self, small_filter):
        blob = compress_filter(small_filter)
        restored = decompress_filter(blob, small_filter.num_hashes)
        assert restored == small_filter
        assert "alpha" in restored

    def test_prototype_scale(self):
        bf = BloomFilter.paper_prototype()
        bf.add_many([f"term-{i}" for i in range(5000)])
        restored = decompress_filter(compress_filter(bf), 2)
        assert restored == bf

    def test_num_inserted_metadata(self):
        bf = BloomFilter(1024, 2)
        bf.add_many(["a", "b"])
        restored = decompress_filter(compress_filter(bf), 2, num_inserted=2)
        assert restored.num_inserted == 2

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decompress_filter(b"\x00\x01", 2)


class TestEffectiveness:
    def test_sparse_filter_compresses_well(self):
        """The paper's motivation: a 50 KB filter with 1000 terms should
        compress to roughly the Table 2 wire size (3000 B), far below the
        raw 50 KB."""
        bf = BloomFilter.paper_prototype()
        bf.add_many([f"key-{i}" for i in range(1000)])
        size = compressed_size(bf)
        raw = bf.num_bits // 8
        assert size < raw / 10
        assert size < 2 * 3000  # same order as Table 2's 3000 B

    def test_20000_keys_order_of_table2(self):
        bf = BloomFilter.paper_prototype()
        bf.add_many([f"key-{i}" for i in range(20000)])
        size = compressed_size(bf)
        assert size < 2 * 16000  # Table 2 says 16 000 B

    def test_denser_filter_larger_encoding(self):
        sparse = BloomFilter(2**16, 2)
        sparse.add_many([f"s{i}" for i in range(100)])
        dense = BloomFilter(2**16, 2)
        dense.add_many([f"d{i}" for i in range(5000)])
        assert compressed_size(sparse) < compressed_size(dense)


class TestGoldenPayload:
    def test_full_filter_blob_unchanged(self):
        """Whole-filter wire bytes captured before the vectorized codec
        landed; the format (and therefore this digest) must not move."""
        bf = BloomFilter(8192, 2)
        bf.add_many([f"term-{i}" for i in range(600)])
        blob = compress_filter(bf)
        assert len(blob) == 604
        assert (
            hashlib.sha256(blob).hexdigest()
            == "14b59b1013a8a84af1e3638804f30d27ad4276340d83b1a7c705e1de642d6e8f"
        )


class TestVersionCache:
    def test_repeat_compression_is_cached(self):
        bf = BloomFilter(4096, 2)
        bf.add_many(["a", "b", "c"])
        first = compress_filter(bf)
        assert compress_filter(bf) is first  # memo returns the same object

    def test_add_invalidates(self):
        bf = BloomFilter(4096, 2)
        bf.add("a")
        before = compress_filter(bf)
        version = bf.version
        bf.add("b")
        assert bf.version > version
        after = compress_filter(bf)
        assert after != before
        assert decompress_filter(after, 2) == bf

    def test_add_many_and_union_invalidate(self):
        bf = BloomFilter(4096, 2)
        bf.add_many(["a", "b"])
        stale = compress_filter(bf)
        other = BloomFilter(4096, 2)
        other.add_many(["x", "y"])
        bf.union_inplace(other)
        assert compress_filter(bf) != stale
        assert decompress_filter(compress_filter(bf), 2) == bf

    def test_no_op_add_still_invalidates(self):
        """Version tracks mutation *calls*, not bit changes: re-adding an
        existing key conservatively drops the memo (and re-encodes to the
        identical bytes)."""
        bf = BloomFilter(4096, 2)
        bf.add("a")
        first = compress_filter(bf)
        bf.add("a")
        second = compress_filter(bf)
        assert second is not first
        assert second == first

    def test_use_cache_false_bypasses(self):
        bf = BloomFilter(4096, 2)
        bf.add("a")
        cached = compress_filter(bf)
        cold = compress_filter(bf, use_cache=False)
        assert cold == cached
        assert cold is not cached

    def test_compressed_size_uses_cache_flag(self):
        bf = BloomFilter(4096, 2)
        bf.add_many(["a", "b"])
        assert compressed_size(bf) == compressed_size(bf, use_cache=False)


@given(st.sets(st.text(min_size=1, max_size=10), max_size=150))
@settings(max_examples=40, deadline=None)
def test_property_compress_roundtrip(terms):
    """Compression is lossless for any term set."""
    bf = BloomFilter(8192, 2)
    bf.add_many(sorted(terms))
    assert decompress_filter(compress_filter(bf), 2) == bf
