"""Tests for the statistics helpers (linear fits, CDFs, summaries)."""

import numpy as np
import pytest

from repro.utils.stats import cdf_points, fit_linear, percentile, summarize


class TestFitLinear:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])  # y = 1 + 2x
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 10], [5, 25])
        assert fit.predict(5) == pytest.approx(15.0)

    def test_noisy_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        x = np.arange(50.0)
        y = 2 * x + rng.normal(0, 5, 50)
        fit = fit_linear(x, y)
        assert 0.8 < fit.r_squared < 1.0
        assert fit.slope == pytest.approx(2.0, abs=0.3)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_linear([3, 3, 3], [1, 2, 3])

    def test_constant_y(self):
        fit = fit_linear([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_format_cost(self):
        fit = fit_linear([0, 1], [4.0, 4.011])
        assert "no. keys" in fit.format_cost()


class TestCdf:
    def test_sorted_and_normalized(self):
        xs, ps = cdf_points([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ps.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, ps = cdf_points([])
        assert xs.size == 0 and ps.size == 0

    def test_duplicates_kept(self):
        xs, ps = cdf_points([5.0, 5.0])
        assert xs.tolist() == [5.0, 5.0]
        assert ps[-1] == pytest.approx(1.0)


class TestSummaries:
    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["median"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
