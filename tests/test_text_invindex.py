"""Tests for the inverted index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.invindex import InvertedIndex, Posting


def _index(**docs):
    idx = InvertedIndex()
    for doc_id, freqs in docs.items():
        idx.add_document(doc_id, freqs)
    return idx


class TestAddRemove:
    def test_add_and_lookup(self):
        idx = _index(d1={"gossip": 2, "peer": 1})
        assert idx.term_frequency("gossip", "d1") == 2
        assert idx.document_length("d1") == 3
        assert idx.num_documents() == 1
        assert idx.vocabulary_size() == 2

    def test_duplicate_doc_raises(self):
        idx = _index(d1={"a1": 1})
        with pytest.raises(ValueError):
            idx.add_document("d1", {"b1": 1})

    def test_zero_tf_rejected(self):
        idx = InvertedIndex()
        with pytest.raises(ValueError):
            idx.add_document("d1", {"a1": 0})

    def test_empty_document_allowed(self):
        idx = InvertedIndex()
        idx.add_document("empty", {})
        assert idx.document_length("empty") == 0
        assert idx.num_documents() == 1

    def test_remove_document(self):
        idx = _index(d1={"shared": 1, "only1": 2}, d2={"shared": 3})
        idx.remove_document("d1")
        assert idx.num_documents() == 1
        assert "only1" not in idx
        assert idx.document_frequency("shared") == 1
        with pytest.raises(KeyError):
            idx.document_length("d1")

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            InvertedIndex().remove_document("ghost")

    def test_total_term_count_tracks(self):
        idx = _index(d1={"a1": 2}, d2={"b1": 3})
        assert idx.total_term_count() == 5
        idx.remove_document("d1")
        assert idx.total_term_count() == 3


class TestQueries:
    def test_postings(self):
        idx = _index(d1={"term": 2}, d2={"term": 5})
        postings = sorted(idx.postings("term"), key=lambda p: p.doc_id)
        assert postings == [Posting("d1", 2), Posting("d2", 5)]
        assert idx.postings("absent") == []

    def test_frequencies(self):
        idx = _index(d1={"xx": 2}, d2={"xx": 3, "yy": 1})
        assert idx.document_frequency("xx") == 2
        assert idx.collection_frequency("xx") == 5
        assert idx.term_frequency("xx", "d3") == 0

    def test_conjunctive_match(self):
        idx = _index(
            d1={"gossip": 1, "peer": 1},
            d2={"gossip": 1},
            d3={"peer": 1, "gossip": 2, "extra": 1},
        )
        assert idx.conjunctive_match(["gossip", "peer"]) == {"d1", "d3"}
        assert idx.conjunctive_match(["gossip", "absent"]) == set()
        assert idx.conjunctive_match([]) == {"d1", "d2", "d3"}

    def test_contains(self):
        idx = _index(d1={"present": 1})
        assert "present" in idx
        assert "absent" not in idx

    def test_posting_validates(self):
        with pytest.raises(ValueError):
            Posting("d", 0)


@given(
    st.dictionaries(
        st.text(st.characters(codec="ascii", categories=["L"]), min_size=1, max_size=6),
        st.dictionaries(
            st.text(st.characters(codec="ascii", categories=["L"]), min_size=1, max_size=6),
            st.integers(min_value=1, max_value=20),
            max_size=10,
        ),
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_lengths_consistent(docs):
    """|D| equals the sum of its term frequencies; collection frequency
    equals the sum over postings."""
    idx = InvertedIndex()
    for doc_id, freqs in docs.items():
        idx.add_document(doc_id, freqs)
    for doc_id, freqs in docs.items():
        assert idx.document_length(doc_id) == sum(freqs.values())
    vocab = {t for freqs in docs.values() for t in freqs}
    for term in vocab:
        assert idx.collection_frequency(term) == sum(
            freqs.get(term, 0) for freqs in docs.values()
        )


@given(
    st.lists(
        st.tuples(
            st.text("abc", min_size=1, max_size=3),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=50, deadline=None)
def test_property_remove_restores_empty(doc_terms):
    """Adding then removing a document leaves the index empty."""
    idx = InvertedIndex()
    idx.add_document("doc", dict(doc_terms))
    idx.remove_document("doc")
    assert idx.num_documents() == 0
    assert idx.vocabulary_size() == 0
    assert idx.total_term_count() == 0
