"""Unit tests for repro.obs: instruments, registry, traces, exposition.

The Prometheus text format is checked with a small strict parser rather
than eyeballing substrings: every non-comment line must match the sample
grammar, every sample must be preceded by HELP/TYPE for its family, and
histogram bucket series must be cumulative with ``le="+Inf"`` equal to
``_count``.
"""

import json
import re

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    Registry,
    TraceLog,
    global_registry,
    set_global_registry,
)

# ---------------------------------------------------------------------------
# Counter / Gauge
# ---------------------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("t", "x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("t", "x_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_zero_increment_allowed(self):
        c = Counter("t", "x_total")
        c.inc(0)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t", "depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0
        g.inc(-20)
        assert g.value == -8.0


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("t", "lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # le=1.0 gets 0.5 and the boundary value 1.0 (le is inclusive).
        assert snap.counts == (2, 1, 1, 1)
        assert snap.total == 5
        assert snap.sum == pytest.approx(106.0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", "h", bounds=())
        with pytest.raises(ValueError):
            Histogram("t", "h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", "h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", "h", bounds=(1.0, float("inf")))

    def test_snapshot_is_frozen(self):
        h = Histogram("t", "h", bounds=(1.0,))
        snap = h.snapshot()
        with pytest.raises(AttributeError):
            snap.total = 99

    def test_merge_requires_same_bounds(self):
        a = Histogram("t", "a", bounds=(1.0, 2.0)).snapshot()
        b = Histogram("t", "b", bounds=(1.0, 3.0)).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_elementwise(self):
        ha = Histogram("t", "a", bounds=(1.0, 2.0))
        hb = Histogram("t", "b", bounds=(1.0, 2.0))
        ha.observe(0.5)
        hb.observe(1.5)
        hb.observe(5.0)
        merged = ha.snapshot().merge(hb.snapshot())
        assert merged.counts == (1, 1, 1)
        assert merged.total == 3
        assert merged.sum == pytest.approx(7.0)

    def test_quantiles(self):
        h = Histogram("t", "h", bounds=(10.0, 20.0, 30.0))
        for _ in range(10):
            h.observe(5.0)  # all in the first bucket
        snap = h.snapshot()
        assert snap.quantile(0.0) == 0.0
        # Median of a full first bucket interpolates to its middle.
        assert snap.quantile(0.5) == pytest.approx(5.0)
        assert snap.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps_to_last_bound(self):
        h = Histogram("t", "h", bounds=(1.0, 2.0))
        h.observe(50.0)
        assert h.snapshot().quantile(0.99) == 2.0

    def test_quantile_empty_and_domain(self):
        snap = Histogram("t", "h", bounds=(1.0,)).snapshot()
        assert snap.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            snap.quantile(1.5)
        with pytest.raises(ValueError):
            snap.quantile(-0.1)

    def test_mean(self):
        h = Histogram("t", "h", bounds=(100.0,))
        assert h.snapshot().mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.snapshot().mean == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# TraceLog
# ---------------------------------------------------------------------------


class TestTraceLog:
    def test_emit_and_filter(self):
        ticks = iter(range(100))
        log = TraceLog(capacity=8, clock=lambda: next(ticks))
        log.emit("round_started", peer=1)
        log.emit("rumor_pushed", peer=1, target=2)
        log.emit("round_started", peer=2)
        assert len(log) == 3
        rounds = log.events("round_started")
        assert [e.fields["peer"] for e in rounds] == [1, 2]
        assert rounds[0].seq == 0 and rounds[1].seq == 2
        assert rounds[0].time == 0.0

    def test_ring_eviction_counts_dropped(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["i"] for e in log.events()] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_jsonl_roundtrip(self):
        log = TraceLog(clock=lambda: 1.5)
        log.emit("peer_offline", peer=3, target="peer:4", failures=2)
        log.emit("fault_injected", fault="drops")
        text = log.to_jsonl()
        assert text.endswith("\n")
        records = [json.loads(line) for line in text.splitlines()]
        assert records[0] == {
            "seq": 0,
            "time": 1.5,
            "kind": "peer_offline",
            "peer": 3,
            "target": "peer:4",
            "failures": 2,
        }
        assert records[1]["fault"] == "drops"

    def test_empty_jsonl(self):
        assert TraceLog().to_jsonl() == ""

    def test_clear_keeps_sequence(self):
        log = TraceLog()
        log.emit("a")
        log.clear()
        assert len(log) == 0
        assert log.emit("b").seq == 1

    def test_kind_is_positional_only(self):
        # A field literally named "kind" must not collide with the tag.
        event = TraceLog().emit("tagged", kind="field-value")
        assert event.kind == "tagged"
        assert event.fields["kind"] == "field-value"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = Registry()
        a = reg.counter("node", "rounds_total")
        b = reg.counter("node", "rounds_total")
        assert a is b
        a.inc()
        assert reg.value("node", "rounds_total") == 1.0

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("node", "x")
        with pytest.raises(TypeError):
            reg.gauge("node", "x")
        reg.histogram("node", "h")
        with pytest.raises(TypeError):
            reg.value("node", "h")

    def test_value_of_unregistered_is_zero(self):
        assert Registry().value("nobody", "nothing") == 0.0

    def test_instruments_sorted(self):
        reg = Registry()
        reg.counter("z", "a")
        reg.counter("a", "z")
        reg.counter("a", "a")
        keys = [(i.component, i.name) for i in reg.instruments()]
        assert keys == sorted(keys)

    def test_samples_flatten_histograms(self):
        reg = Registry()
        reg.counter("t", "c_total").inc(3)
        h = reg.histogram("t", "lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        samples = dict(reg.samples())
        assert samples["planetp_t_c_total"] == 3.0
        assert samples['planetp_t_lat_bucket{le="1"}'] == 1.0
        assert samples['planetp_t_lat_bucket{le="2"}'] == 1.0
        assert samples['planetp_t_lat_bucket{le="+Inf"}'] == 2.0
        assert samples["planetp_t_lat_count"] == 2.0
        assert samples["planetp_t_lat_sum"] == pytest.approx(5.5)

    def test_emit_feeds_embedded_trace(self):
        reg = Registry(clock=lambda: 7.0)
        reg.emit("round_started", peer=0)
        assert reg.trace.events("round_started")[0].time == 7.0


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(\{{le=\"[^\"]+\"\}})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)


def _parse_exposition(text: str) -> dict[str, dict]:
    """Strict mini-parser: returns family -> {type, samples: [(name, labels, value)]}."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert re.fullmatch(_NAME, name)
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(maxsplit=3)
            assert name == current, "TYPE must follow its HELP"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
        else:
            m = _SAMPLE_RE.match(line)
            assert m, f"unparseable sample line: {line!r}"
            sample_name, labels, value = m.group(1), m.group(2), float(m.group(3))
            base = re.sub(r"_(bucket|sum|count)$", "", sample_name)
            family = sample_name if sample_name in families else base
            assert family == current, f"sample {sample_name} outside its family"
            families[family]["samples"].append((sample_name, labels, value))
    return families


class TestRenderText:
    def _populated(self) -> Registry:
        reg = Registry()
        reg.counter("transport", "bytes_sent_total", "bytes sent").inc(1234)
        reg.gauge("node", "directory_size", "known peers").set(6)
        h = reg.histogram("transport", "request_latency_seconds", bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        return reg

    def test_valid_exposition(self):
        families = _parse_exposition(self._populated().render_text())
        assert families["planetp_transport_bytes_sent_total"]["type"] == "counter"
        assert families["planetp_node_directory_size"]["type"] == "gauge"
        assert (
            families["planetp_transport_request_latency_seconds"]["type"] == "histogram"
        )

    def test_histogram_buckets_cumulative_and_consistent(self):
        families = _parse_exposition(self._populated().render_text())
        fam = families["planetp_transport_request_latency_seconds"]
        buckets = [
            (labels, value)
            for name, labels, value in fam["samples"]
            if name.endswith("_bucket")
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values), "bucket series must be cumulative"
        assert buckets[-1][0] == '{le="+Inf"}'
        count = next(v for n, _, v in fam["samples"] if n.endswith("_count"))
        assert values[-1] == count == 4

    def test_counter_sample_matches_value(self):
        families = _parse_exposition(self._populated().render_text())
        name, labels, value = families["planetp_transport_bytes_sent_total"]["samples"][0]
        assert labels is None and value == 1234.0

    def test_name_mangling(self):
        reg = Registry()
        reg.counter("net-io", "bytes.sent")
        families = _parse_exposition(reg.render_text())
        assert "planetp_net_io_bytes_sent" in families

    def test_samples_agree_with_render_text(self):
        reg = self._populated()
        rendered = {
            line.rsplit(" ", 1)[0]
            for line in reg.render_text().splitlines()
            if not line.startswith("#")
        }
        # samples() flattens to exactly the sample names render_text emits.
        assert {name for name, _ in reg.samples()} == rendered


# ---------------------------------------------------------------------------
# Global registry plumbing
# ---------------------------------------------------------------------------


class TestGlobalRegistry:
    def test_singleton_and_swap(self):
        original = global_registry()
        assert global_registry() is original
        mine = Registry()
        previous = set_global_registry(mine)
        try:
            assert previous is original
            assert global_registry() is mine
        finally:
            set_global_registry(previous)
        assert global_registry() is original
