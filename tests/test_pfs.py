"""Tests for PFS: file server, namespace, and the PFS core flows."""

import pytest

from repro.core.community import InProcessCommunity
from repro.pfs.fileserver import FileServer
from repro.pfs.namespace import SemanticNamespace
from repro.pfs.pfs import PFS


class TestFileServer:
    def test_url_roundtrip(self):
        fs = FileServer(3)
        fs.put_file("/docs/a.txt", "hello")
        url = fs.url_for("/docs/a.txt")
        assert fs.get(url) == "hello"

    def test_unknown_path(self):
        fs = FileServer(0)
        with pytest.raises(FileNotFoundError):
            fs.url_for("/missing")
        with pytest.raises(FileNotFoundError):
            fs.read("/missing")

    def test_foreign_url_rejected(self):
        fs = FileServer(0)
        with pytest.raises(ValueError):
            fs.get("http://elsewhere/doc")

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            FileServer(0).put_file("relative.txt", "x")

    def test_delete(self):
        fs = FileServer(0)
        fs.put_file("/a", "x")
        fs.delete_file("/a")
        assert "/a" not in fs
        with pytest.raises(FileNotFoundError):
            fs.delete_file("/a")


class TestNamespace:
    def test_make_and_get(self):
        ns = SemanticNamespace()
        d = ns.make_directory("/gossip", ("gossip",), now=0.0)
        assert ns.get("/gossip") is d
        assert "/gossip" in ns
        assert len(ns) == 1

    def test_effective_query_refines(self):
        ns = SemanticNamespace()
        assert ns.effective_query("/gossip/protocols") == "gossip protocols"

    def test_duplicate_rejected(self):
        ns = SemanticNamespace()
        ns.make_directory("/a", ("a1",), 0.0)
        with pytest.raises(FileExistsError):
            ns.make_directory("/a", ("a1",), 0.0)

    def test_bad_paths(self):
        ns = SemanticNamespace()
        with pytest.raises(ValueError):
            ns.effective_query("relative")
        with pytest.raises(ValueError):
            ns.effective_query("/")

    def test_remove(self):
        ns = SemanticNamespace()
        ns.make_directory("/a", ("a1",), 0.0)
        ns.remove_directory("/a")
        with pytest.raises(FileNotFoundError):
            ns.get("/a")


class TestPFS:
    @pytest.fixture
    def setup(self):
        clock = [0.0]
        community = InProcessCommunity(3, clock=lambda: clock[0])
        for pid in range(3):
            community.brokerage.add_member(pid)
        pfs = PFS(community, 0)
        return community, pfs, clock

    def test_publish_file_indexes_content(self, setup):
        community, pfs, _ = setup
        pfs.publish_file("/notes.txt", "gossip dissemination research notes")
        docs = community.exhaustive_search("dissemination")
        assert len(docs) == 1
        assert docs[0].metadata["path"] == "/notes.txt"

    def test_hot_terms_brokered(self, setup):
        community, pfs, _ = setup
        content = "gossip " * 20 + "rare term appears once"
        pfs.publish_file("/hot.txt", content)
        # 'gossip' dominates the file: it must be on the brokerage now.
        hits = community.brokerage.lookup("gossip")
        assert any(s.snippet_id == "pfs:0:/hot.txt" for s in hits)

    def test_brokered_advert_expires(self, setup):
        community, pfs, clock = setup
        pfs.publish_file("/hot.txt", "gossip " * 10)
        clock[0] = pfs.broker_ttl_s + 1
        assert community.brokerage.lookup("gossip") == []

    def test_directory_populated_on_create(self, setup):
        community, pfs, _ = setup
        pfs.publish_file("/a.txt", "alpha content about gossip")
        d = pfs.make_directory("/gossip")
        assert "a.txt" in d.links

    def test_upcall_adds_new_files(self, setup):
        community, pfs, _ = setup
        d = pfs.make_directory("/gossip")
        assert len(d) == 0
        pfs.publish_file("/later.txt", "late gossip news")
        assert "later.txt" in d.links

    def test_refinement_narrows(self, setup):
        community, pfs, _ = setup
        pfs.publish_file("/both.txt", "gossip about protocols")
        pfs.publish_file("/one.txt", "gossip only here")
        broad = pfs.make_directory("/gossip")
        narrow = pfs.make_directory("/gossip/protocols")
        assert set(broad.links) == {"both.txt", "one.txt"}
        assert set(narrow.links) == {"both.txt"}

    def test_stale_directory_refreshes_removals(self, setup):
        community, pfs, clock = setup
        pfs.publish_file("/temp.txt", "gossip that will vanish")
        d = pfs.make_directory("/gossip")
        assert "temp.txt" in d.links
        pfs.unpublish_file("/temp.txt")
        # Link lingers until the staleness refresh...
        assert "temp.txt" in d.links
        clock[0] = pfs.dir_refresh_s + 1
        d = pfs.open_directory("/gossip")
        assert "temp.txt" not in d.links

    def test_unpublish_unknown_raises(self, setup):
        _, pfs, _ = setup
        with pytest.raises(FileNotFoundError):
            pfs.unpublish_file("/ghost")

    def test_read_url_cross_peer(self, setup):
        community, pfs, _ = setup
        other = PFS(community, 1)
        other.publish_file("/theirs.txt", "remote gossip file")
        d = pfs.make_directory("/remote")
        url = other.files.url_for("/theirs.txt")
        assert pfs.read_url(url, {1: other.files}) == "remote gossip file"
        with pytest.raises(LookupError):
            pfs.read_url("http://unknown.host/x")

    def test_xml_escaping_of_content(self, setup):
        community, pfs, _ = setup
        pfs.publish_file("/odd.txt", 'weird <tag> & "chars" gossip')
        docs = community.exhaustive_search("weird gossip")
        assert len(docs) == 1

    def test_unpublish_raises_typed_error_when_index_lost_the_doc(self, setup):
        """The community dropped the snippet out from under us: the
        failure surfaces as ContentNotFound, not the datastore's bare
        KeyError (which callers could not tell from a dict bug)."""
        from repro.store.chunkstore import ContentNotFound

        community, pfs, _ = setup
        pfs.publish_file("/fragile.txt", "gossip content that will vanish remotely")
        community.remove(pfs._snippet_id("/fragile.txt"))
        with pytest.raises(ContentNotFound) as exc:
            pfs.unpublish_file("/fragile.txt")
        assert isinstance(exc.value, LookupError)
        assert "not in the community index" in str(exc.value)

    def test_read_url_miss_raises_typed_error(self, setup):
        from repro.store.chunkstore import ContentNotFound

        _, pfs, _ = setup
        with pytest.raises(ContentNotFound, match="no server for URL") as exc:
            pfs.read_url("http://unknown.host/x")
        # KeyError-compatible: pre-typed-error handlers still work.
        assert isinstance(exc.value, KeyError)
        # ... and so do peer registries that simply lack the host.
        other = PFS(InProcessCommunity(2), 1)
        with pytest.raises(ContentNotFound):
            pfs.read_url("http://nowhere/x", {1: other.files})
