"""AnalyticsPlane over loopback: epoch aging, digest exchanges, convergence.

Real :class:`~repro.net.node.NetworkPeer` instances on the deterministic
loopback fabric with an active analytics config, driven by explicit
``gossip_round()`` calls — every sketch exchange piggybacks on the round,
so convergence outcomes are reproducible without sockets or timers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constants import AnalyticsConfig
from repro.gossip.wire import (
    SketchExchange,
    SketchReply,
    TopTermsReply,
    TopTermsRequest,
)
from repro.net.codec import ErrorReply
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = pytest.mark.analytics


class Community:
    """N loopback peers with the analytics plane on (or off)."""

    def __init__(
        self,
        n: int,
        config: AnalyticsConfig | None = AnalyticsConfig(),
        seed: int = 0,
    ) -> None:
        self.net = LoopbackNetwork(seed=seed)
        self.registries = {pid: Registry() for pid in range(n)}
        self.nodes = {
            pid: NetworkPeer(
                pid,
                "peer",
                pid,
                transport=self.net.transport(),
                seed=(seed << 16) | pid,
                registry=self.registries[pid],
                analytics_config=config,
            )
            for pid in range(n)
        }

    async def boot(self) -> None:
        for node in self.nodes.values():
            await node.start()
        for pid in range(1, len(self.nodes)):
            await self.nodes[pid].join(self.nodes[0].address)
        for _ in range(200):
            if all(
                node.members() == sorted(self.nodes) for node in self.nodes.values()
            ):
                return
            for node in self.nodes.values():
                await node.gossip_round()
        raise AssertionError("loopback community failed to converge")

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    async def rounds(self, n: int) -> None:
        for _ in range(n):
            for node in self.nodes.values():
                await node.gossip_round()

    def sketches_converged(self) -> bool:
        digests = {node.analytics.sketch.versions() for node in self.nodes.values()}
        return len(digests) == 1 and len(next(iter(digests))) == len(self.nodes)


def _run(coro):
    return asyncio.run(coro)


def _doc(doc_id: str, text: str) -> Document:
    return Document(doc_id, text)


# -- epoch aging ------------------------------------------------------------


def test_refresh_bumps_epoch_only_on_change():
    async def scenario():
        community = Community(1)
        node = community.nodes[0]
        await node.start()
        node.publish(_doc("d1", "gossip gossip bloom"))
        assert node.analytics.refresh_local()
        entry = node.analytics.sketch.entries[0]
        assert entry.epoch == 1
        # Nothing changed: the rebuild must NOT bump — a gratuitous bump
        # would make every exchange re-ship the identical entry forever.
        assert not node.analytics.refresh_local()
        assert node.analytics.sketch.entries[0].epoch == 1
        # Publishing changes the index, so the next rebuild bumps.
        node.publish(_doc("d2", "epidemic protocols"))
        assert node.analytics.refresh_local()
        assert node.analytics.sketch.entries[0].epoch == 2
        await node.stop()

    _run(scenario())


def test_removal_shrinks_the_summary_under_a_new_epoch():
    async def scenario():
        community = Community(1)
        node = community.nodes[0]
        await node.start()
        node.publish(_doc("d1", "gossip bloom"))
        node.publish(_doc("d2", "zanzibar zanzibar zanzibar"))
        node.analytics.refresh_local()
        before = dict(node.analytics.sketch.entries[0].terms)
        assert "zanzibar" in before
        node.peer.remove("d2")
        assert node.analytics.refresh_local()
        entry = node.analytics.sketch.entries[0]
        assert entry.epoch == 2
        assert "zanzibar" not in dict(entry.terms)
        await node.stop()

    _run(scenario())


# -- exchange protocol ------------------------------------------------------


def test_on_exchange_serves_exactly_what_the_digest_lacks():
    async def scenario():
        community = Community(2)
        await community.boot()
        a, b = community.nodes[0], community.nodes[1]
        a.publish(_doc("d1", "gossip bloom filters"))
        a.analytics.refresh_local()
        b.publish(_doc("d2", "epidemic replication"))
        b.analytics.refresh_local()
        # A requester whose digest already covers everything gets nothing
        # back but the digest ...
        reply = b.analytics.on_exchange(
            SketchExchange((), b.analytics.sketch.versions())
        )
        assert isinstance(reply, SketchReply)
        assert reply.entries == ()
        assert reply.versions == b.analytics.sketch.versions()
        # ... a stale digest gets exactly the origins it is behind on ...
        stale = tuple((origin, 0) for origin, _ in b.analytics.sketch.versions())
        reply = b.analytics.on_exchange(SketchExchange((), stale))
        assert {e.origin for e in reply.entries} == {
            origin for origin, _ in b.analytics.sketch.versions()
        }
        # ... and an empty digest means "push-only leg": merge, ship nothing.
        reply = b.analytics.on_exchange(SketchExchange((), ()))
        assert reply.entries == ()
        # Pushed entries are merged in (the push-back leg of a round).
        own = a.analytics.sketch.entries[0]
        b.analytics.on_exchange(SketchExchange((own,), ()))
        assert b.analytics.sketch.entries[0] == own
        await community.stop()

    _run(scenario())


def test_community_converges_to_one_digest():
    async def scenario():
        community = Community(4)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(_doc(f"d{pid}", f"topic{pid} gossip shared"))
        await community.rounds(12)
        assert community.sketches_converged()
        # Every node computes the same top-k from the same merged state.
        estimates = {
            tuple(node.analytics.sketch.top_terms(5))
            for node in community.nodes.values()
        }
        assert len(estimates) == 1
        await community.stop()

    _run(scenario())


def test_converged_community_goes_digest_only():
    async def scenario():
        community = Community(3)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(_doc(f"d{pid}", f"subject{pid} gossip"))
        await community.rounds(12)
        assert community.sketches_converged()
        # Quiescent: further rounds must adopt nothing anywhere.
        merged_before = {
            pid: community.registries[pid].value("analytics", "entries_merged_total")
            for pid in community.nodes
        }
        await community.rounds(5)
        for pid in community.nodes:
            assert (
                community.registries[pid].value("analytics", "entries_merged_total")
                == merged_before[pid]
            )
        await community.stop()

    _run(scenario())


def test_top_terms_rpc_answers_lazily_before_any_round():
    async def scenario():
        community = Community(1)
        node = community.nodes[0]
        await node.start()
        node.publish(_doc("d1", "gossip gossip bloom"))
        # No gossip round has run, but the RPC still serves the node's
        # own contribution via the lazy rebuild.
        reply = node.analytics.on_top_terms(TopTermsRequest(10))
        assert isinstance(reply, TopTermsReply)
        assert reply.origin_count == 1
        assert dict(reply.entries).get("gossip", 0) >= 2
        await node.stop()

    _run(scenario())


def test_departed_origin_is_forgotten_with_its_directory_row():
    async def scenario():
        community = Community(3)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(_doc(f"d{pid}", f"area{pid} gossip"))
        await community.rounds(12)
        assert community.sketches_converged()
        survivor = community.nodes[0]
        survivor.analytics.forget(2)
        assert 2 not in survivor.analytics.sketch.entries
        assert survivor.analytics.sketch.versions() == tuple(
            (o, e.epoch)
            for o, e in sorted(survivor.analytics.sketch.entries.items())
        )
        await community.stop()

    _run(scenario())


# -- opt-in gating ----------------------------------------------------------


def test_disabled_plane_rejects_analytics_rpcs():
    async def scenario():
        community = Community(2, config=None)
        await community.boot()
        a = community.nodes[0]
        assert not a.analytics.enabled
        reply = await a._request_peer(1, SketchExchange((), ()))
        assert isinstance(reply, ErrorReply)
        reply = await a._request_peer(1, TopTermsRequest(10))
        assert isinstance(reply, ErrorReply)
        await community.stop()

    _run(scenario())


def test_disabled_plane_costs_nothing():
    async def scenario():
        community = Community(2, config=None)
        await community.boot()
        for pid, node in community.nodes.items():
            node.publish(_doc(f"d{pid}", f"field{pid} gossip"))
            node.analytics.record_access(f"d{pid}")  # gated off
        await community.rounds(8)
        for pid in community.nodes:
            reg = community.registries[pid]
            assert reg.value("node", "analytics_real_bytes_total") == 0
            assert reg.value("analytics", "sketch_exchanges_total") == 0
            assert not community.nodes[pid].analytics.accesses
        await community.stop()

    _run(scenario())


def test_access_counters_feed_the_own_entry():
    async def scenario():
        community = Community(1)
        node = community.nodes[0]
        await node.start()
        node.publish(_doc("d1", "gossip bloom"))
        node.publish(_doc("d2", "epidemic push"))
        for _ in range(3):
            node.analytics.record_access("d1")
        node.analytics.record_access("d2")
        node.analytics.record_access("ghost")  # not held: filtered out
        node.analytics.refresh_local()
        entry = node.analytics.sketch.entries[0]
        assert entry.docs == (("d1", 3), ("d2", 1))
        await node.stop()

    _run(scenario())
