"""ContentPlane over loopback: k-way replication, handoff, orphan GC.

Every scenario boots real :class:`~repro.net.node.NetworkPeer` instances
on the deterministic loopback fabric with an active content config and
drives :meth:`~repro.content.ContentPlane.maintenance_round` explicitly,
so replication outcomes are reproducible without sockets or timers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constants import ContentConfig
from repro.content import replica_ring
from repro.gossip.wire import ManifestPush
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = pytest.mark.content

DOC_TEXT = "planetp replicates chunked content across ring successors " * 20


class Community:
    """N loopback peers with an active content plane."""

    def __init__(self, n: int, config: ContentConfig, seed: int = 0) -> None:
        self.net = LoopbackNetwork(seed=seed)
        self.registries = {pid: Registry() for pid in range(n)}
        self.nodes = {
            pid: NetworkPeer(
                pid,
                "peer",
                pid,
                transport=self.net.transport(),
                seed=(seed << 16) | pid,
                registry=self.registries[pid],
                content_config=config,
            )
            for pid in range(n)
        }

    async def boot(self) -> None:
        for node in self.nodes.values():
            await node.start()
        for pid in range(1, len(self.nodes)):
            await self.nodes[pid].join(self.nodes[0].address)
        for _ in range(200):
            if all(
                node.members() == sorted(self.nodes) for node in self.nodes.values()
            ):
                return
            for node in self.nodes.values():
                await node.gossip_round()
        raise AssertionError("loopback community failed to converge")

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    async def mark_offline(self, dead: int, via: int, max_rounds: int = 50) -> None:
        """Run gossip at ``via`` until it notices ``dead`` stopped
        answering (the same failed-contact evidence a deployment uses)."""
        node = self.nodes[via]
        for _ in range(max_rounds):
            entry = node.peer.directory.get(dead)
            if entry is not None and not entry.online:
                return
            await node.gossip_round()
        raise AssertionError(f"peer {via} never marked {dead} offline")

    def complete_holders(self, doc_id: str) -> list[int]:
        return [
            pid
            for pid, node in self.nodes.items()
            if node.content.store.is_complete(doc_id)
        ]


def _run(coro):
    return asyncio.run(coro)


def test_replica_ring_is_deterministic_and_order_insensitive():
    a = replica_ring([5, 1, 9, 1, 3])
    b = replica_ring([1, 3, 5, 9])
    for key in ("doc-a", "doc-b", "n0001-d2"):
        assert a.successors_for(key, 3) == b.successors_for(key, 3)
    assert sorted(set(a.brokers())) == [1, 3, 5, 9]


def test_publish_replicates_to_k_ring_successors():
    async def scenario():
        community = Community(5, ContentConfig(replicas=2, chunk_size=128))
        await community.boot()
        origin = community.nodes[0]
        origin.publish(Document("doc-a", DOC_TEXT))
        for _ in range(5):
            await origin.content.maintenance_round()
        targets = origin.content.replica_targets("doc-a", origin=0)
        assert len(targets) == 2 and 0 not in targets
        # Exactly the origin plus its two ring successors hold the bytes.
        assert community.complete_holders("doc-a") == sorted([0, *targets])
        for pid in targets:
            replica = community.nodes[pid].content.store
            assert replica.read_doc("doc-a") == DOC_TEXT.encode("utf-8")
        # The fixed point: everything held is fully replicated, and the
        # push traffic was accounted as content bytes, not gossip.
        assert origin.content.fully_replicated_docs() == len(
            origin.content.store.doc_ids()
        )
        assert community.registries[0].value("node", "content_real_bytes_total") > 0
        await community.stop()

    _run(scenario())


def test_gossip_round_drives_replication():
    async def scenario():
        community = Community(4, ContentConfig(replicas=1, chunk_size=256))
        await community.boot()
        community.nodes[2].publish(Document("doc-g", DOC_TEXT))
        for _ in range(6):
            for node in community.nodes.values():
                await node.gossip_round()
        assert len(community.complete_holders("doc-g")) == 2
        await community.stop()

    _run(scenario())


def test_holder_death_triggers_handoff_to_next_successor():
    async def scenario():
        community = Community(4, ContentConfig(replicas=1, chunk_size=128))
        await community.boot()
        origin = community.nodes[0]
        origin.publish(Document("doc-h", DOC_TEXT))
        for _ in range(3):
            await origin.content.maintenance_round()
        (first_target,) = origin.content.replica_targets("doc-h", origin=0)
        await community.nodes[first_target].stop()
        await community.mark_offline(first_target, via=0)
        for _ in range(5):
            await origin.content.maintenance_round()
        (new_target,) = origin.content.replica_targets("doc-h", origin=0)
        assert new_target != first_target
        assert community.nodes[new_target].content.store.is_complete("doc-h")
        assert community.registries[0].value("content", "handoff_repushes_total") >= 1
        await community.stop()

    _run(scenario())


def test_orphan_copy_dropped_only_after_targets_confirm():
    async def scenario():
        community = Community(4, ContentConfig(replicas=1, chunk_size=128))
        await community.boot()
        origin = community.nodes[0]
        origin.publish(Document("doc-o", DOC_TEXT))
        manifest = origin.content.store.get_manifest("doc-o")
        (target,) = origin.content.replica_targets("doc-o", origin=0)
        stray = next(
            pid for pid in community.nodes if pid not in (0, target)
        )
        # Hand a complete copy to a peer the ring never chose (as if
        # membership shifted after an earlier replication round).
        plane = community.nodes[stray].content
        plane.on_manifest_push(ManifestPush(manifest))
        for index in range(manifest.num_chunks):
            plane.store.put_chunk(
                "doc-o", index, origin.content.store.get_chunk("doc-o", index)
            )
        assert plane.orphan_bytes() > 0
        # One maintenance round: the stray pushes its copy to the real
        # target (the ring tells it who that is), sees it confirm, and
        # only then garbage-collects itself.
        for _ in range(3):
            await plane.maintenance_round()
        assert not plane.store.has_manifest("doc-o")
        assert plane.orphan_bytes() == 0
        assert community.nodes[target].content.store.is_complete("doc-o")
        reg = community.registries[stray]
        assert reg.value("content", "orphans_dropped_total") == 1
        assert reg.value("content", "orphan_bytes_freed_total") > 0
        await community.stop()

    _run(scenario())


def test_incomplete_copy_on_non_target_is_dropped_immediately():
    async def scenario():
        community = Community(4, ContentConfig(replicas=1, chunk_size=128))
        await community.boot()
        origin = community.nodes[0]
        origin.publish(Document("doc-i", DOC_TEXT))
        manifest = origin.content.store.get_manifest("doc-i")
        (target,) = origin.content.replica_targets("doc-i", origin=0)
        stray = next(pid for pid in community.nodes if pid not in (0, target))
        plane = community.nodes[stray].content
        plane.on_manifest_push(ManifestPush(manifest))
        # Only the manifest landed (interrupted push): a non-target can
        # never complete it, so maintenance drops it at once.
        await plane.maintenance_round()
        assert not plane.store.has_manifest("doc-i")
        await community.stop()

    _run(scenario())


def test_replication_completes_under_lossy_transport():
    async def scenario():
        community = Community(5, ContentConfig(replicas=2, chunk_size=128), seed=3)
        await community.boot()
        community.net.drop_rate = 0.25  # every RPC now fails 1-in-4
        origin = community.nodes[0]
        origin.publish(Document("doc-l", DOC_TEXT))
        for _ in range(120):
            # Full gossip rounds, not bare maintenance: successful gossip
            # contacts are what heal drop-induced offline marks, and the
            # maintenance step rides along on each round.
            for node in community.nodes.values():
                await node.gossip_round()
            if len(community.complete_holders("doc-l")) >= 3:
                break
        community.net.drop_rate = 0.0
        assert len(community.complete_holders("doc-l")) >= 3
        assert community.registries[0].value("content", "push_failures_total") > 0
        await community.stop()

    _run(scenario())


def test_inactive_plane_stores_locally_but_never_pushes():
    async def scenario():
        community = Community(3, ContentConfig(replicas=0))
        await community.boot()
        origin = community.nodes[0]
        origin.publish(Document("doc-p", DOC_TEXT))
        assert not origin.content.active
        assert origin.content.replica_targets("doc-p", origin=0) == []
        for node in community.nodes.values():
            await node.gossip_round()
        assert community.complete_holders("doc-p") == [0]
        assert community.registries[0].value("content", "manifest_pushes_total") == 0
        # The local copy still serves chunk requests (the CLI get path).
        assert origin.content.store.read_doc("doc-p") == DOC_TEXT.encode("utf-8")
        await community.stop()

    _run(scenario())
