"""Properties of the analytics sketch: the algebra gossip relies on.

Gossip delivers sketch entries duplicated, reordered, and along
different paths, so convergence rests on the merge being a join over a
total order — commutative, associative, idempotent.  These tests check
that algebra on randomized entry sets, plus the space-saving summary's
classic guarantees (never underestimates, bounded overestimation,
bounded memory).
"""

from __future__ import annotations

import random

import pytest

from repro.analytics import SpaceSaving, TermSketch
from repro.gossip.wire import SketchEntry

pytestmark = pytest.mark.analytics

SEED = 20260808


def _random_entry(rng: random.Random, origin: int) -> SketchEntry:
    terms = tuple(
        (f"term{rng.randrange(12)}", rng.randrange(1, 100))
        for _ in range(rng.randrange(0, 6))
    )
    docs = tuple(
        (f"doc{rng.randrange(8)}", rng.randrange(1, 50))
        for _ in range(rng.randrange(0, 3))
    )
    return SketchEntry(origin, rng.randrange(0, 5), terms, docs)


def _random_entries(rng: random.Random, n: int) -> list[SketchEntry]:
    # Deliberately includes colliding origins and equal epochs so the
    # content tie-break is exercised, not just the epoch fast path.
    return [_random_entry(rng, rng.randrange(6)) for _ in range(n)]


def _merged(entries) -> dict[int, SketchEntry]:
    sketch = TermSketch()
    sketch.merge(entries)
    return dict(sketch.entries)


# -- merge algebra ----------------------------------------------------------


def test_merge_is_commutative():
    rng = random.Random(f"{SEED}-comm")
    for _ in range(50):
        entries = _random_entries(rng, 10)
        shuffled = entries[:]
        rng.shuffle(shuffled)
        assert _merged(entries) == _merged(shuffled)


def test_merge_is_associative():
    rng = random.Random(f"{SEED}-assoc")
    for _ in range(50):
        a, b, c = (_random_entries(rng, 5) for _ in range(3))
        # (a ⊔ b) ⊔ c  ==  a ⊔ (b ⊔ c), expressed through merge order.
        left = TermSketch()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        right = TermSketch()
        right.merge(b)
        right.merge(c)
        inner = list(right.entries.values())
        right2 = TermSketch()
        right2.merge(a)
        right2.merge(inner)
        assert left.entries == right2.entries


def test_merge_is_idempotent():
    rng = random.Random(f"{SEED}-idem")
    for _ in range(50):
        entries = _random_entries(rng, 10)
        once = _merged(entries)
        sketch = TermSketch()
        sketch.merge(entries)
        sketch.merge(entries)  # replaying the whole set changes nothing
        assert sketch.entries == once
        assert sketch.merge(entries) == 0  # and adopts nothing


def test_higher_epoch_always_wins():
    sketch = TermSketch()
    old = SketchEntry(1, 2, (("a", 10),), ())
    new = SketchEntry(1, 3, (), ())  # emptier content, higher epoch
    sketch.merge([old])
    assert sketch.merge_entry(new)
    assert sketch.entries[1] == new
    assert not sketch.merge_entry(old)  # stale entry bounces


def test_equal_epoch_breaks_ties_on_content():
    # Possible after a crash loses an epoch bump: both replicas must
    # still pick the same winner, whichever arrives first.
    a = SketchEntry(1, 2, (("a", 10),), ())
    b = SketchEntry(1, 2, (("b", 5),), ())
    s1, s2 = TermSketch(), TermSketch()
    s1.merge([a, b])
    s2.merge([b, a])
    assert s1.entries == s2.entries


# -- digests ---------------------------------------------------------------


def test_versions_digest_and_entries_ahead_of_are_complementary():
    rng = random.Random(f"{SEED}-digest")
    for _ in range(25):
        ours = _merged(_random_entries(rng, 10))
        theirs = _merged(_random_entries(rng, 10))
        sketch = TermSketch()
        sketch.entries = dict(ours)
        ahead = sketch.entries_ahead_of(
            (o, e.epoch) for o, e in theirs.items()
        )
        for entry in ahead:
            held = theirs.get(entry.origin)
            assert held is None or held.epoch < entry.epoch
        # Nothing the digest already covers is shipped.
        shipped = {e.origin for e in ahead}
        for origin, entry in ours.items():
            if origin in theirs and theirs[origin].epoch >= entry.epoch:
                assert origin not in shipped


def test_aggregates_sum_over_origins():
    sketch = TermSketch()
    sketch.merge(
        [
            SketchEntry(1, 1, (("a", 10), ("b", 2)), (("d1", 3),)),
            SketchEntry(2, 1, (("a", 5), ("c", 7)), (("d1", 1), ("d2", 4))),
        ]
    )
    assert sketch.term_counts() == {"a": 15, "b": 2, "c": 7}
    assert sketch.doc_counts() == {"d1": 4, "d2": 4}
    assert sketch.top_terms(2) == [("a", 15), ("c", 7)]


# -- space-saving ----------------------------------------------------------


def test_space_saving_never_underestimates():
    rng = random.Random(f"{SEED}-ss")
    for _ in range(20):
        truth: dict[str, int] = {}
        summary = SpaceSaving(capacity=8)
        for _ in range(400):
            item = f"item{rng.randrange(30)}"
            truth[item] = truth.get(item, 0) + 1
            summary.offer(item)
        for item, estimate in summary.items():
            assert estimate >= truth[item]
            assert estimate - truth[item] <= summary.error(item)


def test_space_saving_error_bounded_by_n_over_capacity():
    rng = random.Random(f"{SEED}-bound")
    summary = SpaceSaving(capacity=16)
    n = 2000
    for _ in range(n):
        summary.offer(f"item{rng.randrange(100)}")
    for item, _ in summary.items():
        assert summary.error(item) <= n // summary.capacity


def test_space_saving_respects_capacity():
    summary = SpaceSaving(capacity=4)
    for i in range(100):
        summary.offer(f"item{i}")
    assert len(summary) == 4


def test_space_saving_heavy_hitter_survives_churn():
    summary = SpaceSaving(capacity=8)
    rng = random.Random(f"{SEED}-hh")
    for _ in range(500):
        summary.offer("heavy")
        summary.offer(f"noise{rng.randrange(200)}")
    items = dict(summary.items())
    assert "heavy" in items
    assert items["heavy"] >= 500


def test_space_saving_items_order_is_deterministic():
    summary = SpaceSaving(capacity=8)
    for item in ["b", "a", "c", "a", "b"]:
        summary.offer(item)
    assert summary.items() == [("a", 2), ("b", 2), ("c", 1)]


def test_space_saving_rejects_bad_input():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)
    summary = SpaceSaving(capacity=2)
    summary.offer("x", 0)  # non-positive counts are ignored
    summary.offer("y", -3)
    assert len(summary) == 0
