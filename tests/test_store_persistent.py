"""PersistentDataStore: WAL durability, snapshots, and warm recovery.

A "crash" here is simply abandoning a store without :meth:`close` — the
WAL was fsynced per acknowledged operation, so a second store constructed
over the same directory must recover every acknowledged mutation.  The
recovery paths are proven Analyzer-free by recovering with an analyzer
that raises on use.
"""

from __future__ import annotations

import pytest

from repro.constants import BloomConfig, StoreConfig
from repro.obs import Registry
from repro.store import PersistentDataStore
from repro.text.analyzer import Analyzer
from repro.text.document import Document


class _PoisonedAnalyzer(Analyzer):
    """Proves recovery never re-analyzes: any use is a test failure."""

    def term_frequencies(self, text: str):
        raise AssertionError("the Analyzer must not run during recovery")


def _store(tmp_path, **kwargs) -> PersistentDataStore:
    kwargs.setdefault("registry", Registry())
    kwargs.setdefault("config", StoreConfig(fsync=False))
    return PersistentDataStore(tmp_path, **kwargs)


def test_acknowledged_publishes_survive_a_crash(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("a", "gossip spreads rumors epidemically"))
    store.publish(Document("b", "bloom filters summarize membership"))
    live_filter = store.bloom_filter.copy()
    # no close(): SIGKILL

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(recovered) == 2 and "a" in recovered and "b" in recovered
    assert recovered.get("a").text == "gossip spreads rumors epidemically"
    assert recovered.last_recovery.replayed_records == 2
    assert recovered.last_recovery.snapshot_path is None
    # The filter was rebuilt from persisted term frequencies, bit-for-bit.
    assert recovered.bloom_filter == live_filter
    recovered.close()


def test_remove_and_republish_survive_replay(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("doc", "first life"))
    store.remove("doc")
    store.publish(Document("doc", "second life"))

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(recovered) == 1
    assert recovered.get("doc").text == "second life"
    assert recovered.last_recovery.replayed_records == 3
    recovered.close()


def test_metadata_roundtrips_through_wal_and_snapshot(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("m", "with metadata", {"source": "unit", "rank": 3}))
    # WAL path:
    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert recovered.get("m").metadata == {"source": "unit", "rank": 3}
    recovered.close()  # snapshots
    # Snapshot path:
    again = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert again.get("m").metadata == {"source": "unit", "rank": 3}
    assert again.last_recovery.replayed_records == 0
    again.close()


def test_auto_snapshot_resets_the_wal(tmp_path):
    registry = Registry()
    store = _store(
        tmp_path,
        registry=registry,
        config=StoreConfig(snapshot_every=3, fsync=False),
    )
    for i in range(3):
        store.publish(Document(f"d{i}", f"document number {i}"))
    assert registry.counter("store", "snapshots_total", "").value == 1
    assert store.wal.size_bytes == 8  # just the magic header again

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(recovered) == 3
    assert recovered.last_recovery.replayed_records == 0
    assert recovered.last_recovery.snapshot_seq == 3
    recovered.close()


def test_recovery_is_snapshot_plus_wal_suffix(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("snapped", "inside the snapshot"))
    store.snapshot()
    store.publish(Document("walled", "after the snapshot"))

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(recovered) == 2
    assert recovered.last_recovery.snapshot_seq == 1
    assert recovered.last_recovery.replayed_records == 1
    recovered.close()


def test_crash_between_snapshot_and_wal_reset_is_idempotent(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("a", "alpha text"))
    store.publish(Document("b", "beta text"))
    stale_wal = store.wal.path.read_bytes()
    store.snapshot()
    store.close(snapshot=False)
    # Simulate dying after the snapshot rename but before the WAL reset:
    # the old records (seq 1-2, already covered by the snapshot) linger.
    store.wal.path.write_bytes(stale_wal)

    recovered = _store(tmp_path)
    assert len(recovered) == 2  # not 4: stale records were skipped by seq
    assert recovered.last_recovery.replayed_records == 0
    # New sequence numbers continue past the recovered ones.
    recovered.publish(Document("c", "published after recovery"))
    recovered.close()
    final = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(final) == 3
    final.close()


def test_filter_version_is_monotone_across_restarts(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("a", "some distinct words here"))
    store.publish(Document("b", "wholly different vocabulary there"))
    version = store.filter_version
    assert version >= 2

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert recovered.filter_version >= version
    recovered.close()


def test_clean_close_makes_next_recovery_pure_snapshot(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("x", "shutdown flushes pending records"))
    store.close()
    store.close()  # idempotent

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert recovered.last_recovery.replayed_records == 0
    assert recovered.last_recovery.documents == 1
    recovered.close()


def test_failed_publish_is_not_logged(tmp_path):
    registry = Registry()
    store = _store(tmp_path, registry=registry)
    store.publish(Document("dup", "first"))
    with pytest.raises(ValueError, match="already published"):
        store.publish(Document("dup", "second"))
    assert registry.counter("store", "wal_records_total", "").value == 1
    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert recovered.get("dup").text == "first"
    recovered.close()


def test_unknown_wal_ops_are_skipped_not_fatal(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("keep", "a real record"))
    store.wal.append({"seq": 99, "op": "compact", "id": "future-format"})
    store.wal.append({"seq": 100, "op": "remove", "id": "never-published"})

    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer())
    assert len(recovered) == 1 and "keep" in recovered
    assert recovered.last_recovery.replayed_records == 1
    recovered.close()


def test_bloom_config_change_rebuilds_filter_from_index(tmp_path):
    store = _store(tmp_path, bloom_config=BloomConfig(num_bits=1 << 14, num_hashes=2))
    store.publish(Document("a", "resize the community filter"))
    store.close()

    resized = BloomConfig(num_bits=1 << 15, num_hashes=3)
    recovered = _store(tmp_path, analyzer=_PoisonedAnalyzer(), bloom_config=resized)
    assert recovered.bloom_filter.num_bits == resized.num_bits
    assert recovered.bloom_filter.num_hashes == resized.num_hashes
    # The rebuilt filter still answers for the recovered vocabulary.
    assert all(t in recovered.bloom_filter for t in recovered.index.terms())
    recovered.close()


def test_recovery_metrics_are_published(tmp_path):
    store = _store(tmp_path)
    store.publish(Document("a", "metric bearing document"))
    registry = Registry()
    recovered = _store(tmp_path, registry=registry, analyzer=_PoisonedAnalyzer())
    assert registry.value("store", "recovered_documents") == 1
    assert registry.counter(
        "store", "recovery_replayed_records_total", ""
    ).value == 1
    recovered.close()


def test_incarnation_counts_every_open_durably(tmp_path):
    first = _store(tmp_path)
    assert first.incarnation == 1
    # "Crash" (no close) still counted: the bump is durable at construction.
    second = _store(tmp_path)
    assert second.incarnation == 2
    second.close()
    # A damaged counter restarts the count rather than failing the open.
    (tmp_path / "incarnation").write_text("not a number")
    third = _store(tmp_path)
    assert third.incarnation == 1
    third.close()


def test_delegation_surface_matches_local_store(tmp_path):
    store = _store(tmp_path)
    doc = store.publish(Document("a", "delegation surface check"))
    assert doc.doc_id == "a"
    assert len(store) == 1 and "a" in store
    assert list(store.document_ids()) == ["a"]
    assert store.num_terms() == store.store.num_terms() > 0
    assert store.get("a").text == "delegation surface check"
    assert store.analyzer is store.store.analyzer
    assert store.bloom_config is store.store.bloom_config
    assert store.index is store.store.index
    assert store.regenerate_filter() == store.bloom_filter
    assert "PersistentDataStore" in repr(store)
    removed = store.remove("a")
    assert removed.doc_id == "a" and len(store) == 0
    store.close()
