"""Tests for the merged-filter directory (Section 2's storage trade-off)."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.core.merged import MergedDirectory


def _filters(assignments: dict[int, list[str]]) -> dict[int, BloomFilter]:
    out = {}
    for pid, terms in assignments.items():
        bf = BloomFilter(8192, 2)
        bf.add_many(terms)
        out[pid] = bf
    return out


@pytest.fixture
def filters():
    return _filters(
        {
            0: ["gossip"],
            1: ["bloom"],
            2: ["ranking"],
            3: ["chord"],
            4: ["pastry"],
        }
    )


class TestMerging:
    def test_group_size_one_is_exact(self, filters):
        merged = MergedDirectory(filters, group_size=1)
        assert merged.num_groups == 5
        assert merged.candidate_peers(["gossip"]) == [0]

    def test_merged_groups_return_whole_group(self, filters):
        merged = MergedDirectory(filters, group_size=2)
        # Groups: (0,1), (2,3), (4,).  'gossip' hits group (0,1).
        assert merged.candidate_peers(["gossip"]) == [0, 1]
        assert merged.candidate_peers(["pastry"]) == [4]

    def test_no_false_negatives(self, filters):
        """The invariant that makes merging safe: every true holder is
        always among the candidates, at any group size."""
        for group_size in (1, 2, 3, 5):
            merged = MergedDirectory(filters, group_size=group_size)
            for pid, term in enumerate(["gossip", "bloom", "ranking", "chord", "pastry"]):
                assert pid in merged.candidate_peers([term]), (group_size, term)

    def test_conjunction_across_merge_can_over_approximate(self, filters):
        """A conjunctive query may hit a merged group even though no
        single member has all terms — the accuracy cost of merging."""
        exact = MergedDirectory(filters, group_size=1)
        merged = MergedDirectory(filters, group_size=5)
        assert exact.candidate_peers(["gossip", "bloom"]) == []
        assert merged.candidate_peers(["gossip", "bloom"]) == [0, 1, 2, 3, 4]

    def test_memory_savings(self, filters):
        exact = MergedDirectory(filters, group_size=1)
        merged = MergedDirectory(filters, group_size=5)
        assert merged.memory_bits() == exact.memory_bits() / 5

    def test_merge_ratio(self):
        assert MergedDirectory.merge_ratio(100, 1) == 1.0
        assert MergedDirectory.merge_ratio(100, 4) == 0.25
        assert MergedDirectory.merge_ratio(5, 2) == pytest.approx(3 / 5)
        with pytest.raises(ValueError):
            MergedDirectory.merge_ratio(0, 1)

    def test_validation(self, filters):
        with pytest.raises(ValueError):
            MergedDirectory(filters, group_size=0)
        with pytest.raises(ValueError):
            MergedDirectory({}, group_size=1)
