"""Tests for the stacked-filter directory matcher (FilterMatrix)."""

import numpy as np
import pytest

from repro.bloom.filter import BloomFilter
from repro.bloom.matcher import FilterMatrix


def make_filter(terms, num_bits=4096, num_hashes=2):
    bf = BloomFilter(num_bits, num_hashes)
    bf.add_many(terms)
    return bf


def loop_match(directory, terms):
    """The pre-matrix per-peer reference path."""
    return sorted(pid for pid, bf in directory.items() if bf.contains_all(terms))


class TestMatching:
    def test_agrees_with_per_peer_loop(self):
        rng = np.random.default_rng(7)
        directory = {}
        for pid in range(60):
            terms = [f"t{int(x)}" for x in rng.integers(0, 40, size=12)]
            directory[pid] = make_filter(terms)
        matrix = FilterMatrix()
        matrix.sync_mapping(directory)
        for query in (["t1"], ["t1", "t2"], ["t5", "t17", "t33"], ["absent"]):
            assert sorted(matrix.match_all_terms(query)) == loop_match(directory, query)

    def test_hit_matrix_shape_and_values(self):
        directory = {1: make_filter(["a", "b"]), 2: make_filter(["b", "c"])}
        matrix = FilterMatrix()
        matrix.sync_mapping(directory)
        terms = ["a", "b", "zzz-absent"]
        peers, hits = matrix.hit_matrix(terms)
        assert hits.shape == (2, 3)
        by_peer = dict(zip(peers, hits))
        # Inserted terms are guaranteed hits; everything else must agree
        # with the scalar path (false positives included).
        assert by_peer[1][0] and by_peer[1][1] and by_peer[2][1]
        for pid, bf in directory.items():
            assert by_peer[pid].tolist() == bf.contains_each(terms).tolist()

    def test_empty_query_matches_everyone(self):
        directory = {1: make_filter(["a"]), 2: make_filter(["b"])}
        matrix = FilterMatrix()
        matrix.sync_mapping(directory)
        assert sorted(matrix.match_all_terms([])) == [1, 2]

    def test_empty_matrix(self):
        matrix = FilterMatrix()
        assert matrix.match_all_terms(["a"]) == []
        peers, hits = matrix.hit_matrix(["a"])
        assert peers == [] and hits.shape == (0, 1)


class TestChurn:
    def test_join_leave_update_stays_consistent(self):
        """Matrix answers must track the directory through arbitrary churn."""
        rng = np.random.default_rng(42)
        directory: dict[int, BloomFilter] = {}
        matrix = FilterMatrix()
        next_pid = 0
        for _ in range(200):
            op = rng.integers(0, 3)
            if op == 0 or not directory:  # join
                directory[next_pid] = make_filter([f"k{next_pid % 13}"])
                next_pid += 1
            elif op == 1:  # leave
                departing = int(rng.choice(list(directory)))
                del directory[departing]
            else:  # in-place filter growth (gossip applied a diff)
                pid = int(rng.choice(list(directory)))
                directory[pid].add(f"extra-{int(rng.integers(0, 13))}")
            matrix.sync_mapping(directory)
            query = [f"k{int(rng.integers(0, 13))}"]
            assert sorted(matrix.match_all_terms(query)) == loop_match(directory, query)
            assert sorted(matrix.peer_ids) == sorted(directory)

    def test_mutation_without_sync_then_sync(self):
        """A filter mutated after sync is stale until the next sync —
        then the version bump forces a row refresh."""
        bf = make_filter(["old"])
        matrix = FilterMatrix()
        matrix.sync_mapping({1: bf})
        bf.add("new")
        matrix.sync_mapping({1: bf})
        assert matrix.match_all_terms(["new"]) == [1]

    def test_replaced_filter_object_detected(self):
        """decompress/apply_diff install a *new* object for a peer; the
        identity check must catch it even at the same version number."""
        matrix = FilterMatrix()
        matrix.sync_mapping({1: make_filter(["alpha"])})
        matrix.sync_mapping({1: make_filter(["beta"])})
        assert matrix.match_all_terms(["beta"]) == [1]
        assert matrix.match_all_terms(["alpha"]) == []

    def test_unchanged_filter_row_not_recopied(self):
        bf = make_filter(["a"])
        matrix = FilterMatrix()
        matrix.sync_mapping({1: bf})
        words_before = matrix._words.copy()
        state_before = matrix._state[0]
        matrix.sync_mapping({1: bf})  # steady-state: nothing changed
        assert matrix._state[0] is state_before
        assert (matrix._words == words_before).all()


class TestIrregularGeometry:
    def test_mismatched_filter_falls_back(self):
        matrix = FilterMatrix()
        matrix.sync_mapping({1: make_filter(["a"]), 2: make_filter(["a", "b"])})
        odd = make_filter(["a", "odd"], num_bits=1 << 14)
        matrix.update(3, odd)
        assert sorted(matrix.match_all_terms(["a"])) == [1, 2, 3]
        assert matrix.match_all_terms(["odd"]) == [3]
        peers, hits = matrix.hit_matrix(["a", "odd"])
        assert set(peers) == {1, 2, 3}
        assert hits.shape == (3, 2)
        matrix.remove(3)
        assert sorted(matrix.peer_ids) == [1, 2]

    def test_irregular_peer_dropped_by_sync(self):
        matrix = FilterMatrix()
        matrix.update(1, make_filter(["a"]))
        matrix.update(9, make_filter(["a"], num_bits=1 << 14))
        matrix.sync_mapping({1: make_filter(["a"])})
        assert matrix.peer_ids == [1]


class TestCapacity:
    def test_growth_beyond_initial_capacity(self):
        directory = {pid: make_filter([f"p{pid}"]) for pid in range(40)}
        matrix = FilterMatrix()
        matrix.sync_mapping(directory)
        assert len(matrix) == 40
        for pid in range(40):
            assert pid in matrix.match_all_terms([f"p{pid}"])

    def test_swap_with_last_removal(self):
        directory = {pid: make_filter([f"p{pid}"]) for pid in range(5)}
        matrix = FilterMatrix()
        matrix.sync_mapping(directory)
        matrix.remove(0)  # forces the last row to move into row 0
        assert sorted(matrix.peer_ids) == [1, 2, 3, 4]
        for pid in (1, 2, 3, 4):
            assert pid in matrix.match_all_terms([f"p{pid}"])
