"""The serving-plane scheduler (repro.serve.scheduler) and the bounded
search client it drives.

Admission control is exercised with a blocked search slot: arrivals past
``max_queue`` bounce immediately, a queued query that outlives its
deadline is shed when its slot finally frees, and both rejections carry a
``retry_after_s`` hint that tracks the measured mean latency.  Caching is
exercised end to end — a repeated query is answered without re-running
the search, and a publish moves the directory generation so the stale
entry is evicted, never served.  The client half covers the fan-out
semaphore and the per-peer deadline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constants import ServeConfig
from repro.net.client import NetworkSearchClient
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import PeerGate, QueryRejected, QueryScheduler
from repro.text.document import Document

DOCS = [
    Document("d-gossip", "gossip protocols spread rumors epidemically"),
    Document("d-bloom", "bloom filters summarize term membership compactly"),
    Document("d-rank", "ranking orders documents by similarity scores"),
]


def _node(net: LoopbackNetwork, pid: int) -> NetworkPeer:
    return NetworkPeer(
        pid, "peer", pid, transport=net.transport(), seed=pid, registry=Registry()
    )


async def _solo_scheduler(config: ServeConfig | None = None):
    """One started node holding DOCS, fronted by a scheduler."""
    net = LoopbackNetwork()
    node = _node(net, 0)
    await node.start()
    for doc in DOCS:
        node.publish(doc)
    return node, QueryScheduler(node, config)


def test_repeated_query_is_a_cache_hit():
    async def scenario():
        node, sched = await _solo_scheduler()
        first = await sched.ranked("gossip protocols", k=5)
        again = await sched.ranked("gossip protocols", k=5)
        assert [d.doc_id for d in again.results] == [
            d.doc_id for d in first.results
        ]
        reg = node.obs
        assert reg.value("serve", "result_cache_hits_total") == 1
        assert reg.value("serve", "queries_completed_total") == 2
        # The hit never re-ran the search: only one admission.
        assert reg.value("serve", "queries_admitted_total") == 1
        await node.stop()

    asyncio.run(scenario())


def test_publish_invalidates_the_cache():
    async def scenario():
        node, sched = await _solo_scheduler()
        before = await sched.ranked("gossip", k=5)
        assert "d-fresh" not in [d.doc_id for d in before.results]
        node.publish(Document("d-fresh", "fresh gossip just published"))
        after = await sched.ranked("gossip", k=5)
        assert "d-fresh" in [d.doc_id for d in after.results]
        reg = node.obs
        # The old entry was detected stale and evicted — never served.
        assert reg.value("serve", "result_cache_stale_total") == 1
        assert reg.value("serve", "result_cache_hits_total") == 0
        await node.stop()

    asyncio.run(scenario())


def test_exhaustive_is_cached_and_invalidated_too():
    async def scenario():
        node, sched = await _solo_scheduler()
        assert await sched.exhaustive("bloom filters") == ["d-bloom"]
        await sched.exhaustive("bloom filters")
        assert node.obs.value("serve", "result_cache_hits_total") == 1
        node.publish(Document("d-b2", "more bloom filters arrive"))
        assert await sched.exhaustive("bloom filters") == ["d-b2", "d-bloom"]
        await node.stop()

    asyncio.run(scenario())


def test_input_validation():
    async def scenario():
        node, sched = await _solo_scheduler()
        with pytest.raises(ValueError):
            await sched.ranked("gossip", k=0)
        with pytest.raises(ValueError):
            await sched.ranked("...")  # analyzes to zero terms
        assert await sched.exhaustive("...") == []
        await node.stop()

    asyncio.run(scenario())


def _block_searches(sched: QueryScheduler) -> asyncio.Event:
    """Make the scheduler's searches park until the event is set."""
    release = asyncio.Event()

    async def parked(query: str, k: int = 20):
        await release.wait()
        return f"answer:{query}"

    sched.client.ranked_search = parked  # type: ignore[method-assign]
    return release


def test_full_queue_rejects_with_retry_hint():
    async def scenario():
        node, sched = await _solo_scheduler(
            ServeConfig(max_concurrent=1, max_queue=1)
        )
        release = _block_searches(sched)
        running = asyncio.ensure_future(sched.ranked("gossip"))
        await asyncio.sleep(0)  # let it take the only slot
        queued = asyncio.ensure_future(sched.ranked("bloom"))
        await asyncio.sleep(0)  # let it occupy the one queue spot
        with pytest.raises(QueryRejected) as excinfo:
            await sched.ranked("ranking")
        assert excinfo.value.reason == "admission queue full"
        assert excinfo.value.retry_after_s > 0
        assert node.obs.value("serve", "queries_rejected_total") == 1
        release.set()
        assert await running == "answer:gossip"
        assert await queued == "answer:bloom"
        assert node.obs.value("serve", "queries_completed_total") == 2
        assert node.obs.value("serve", "queries_queued") == 0
        assert node.obs.value("serve", "queries_inflight") == 0
        await node.stop()

    asyncio.run(scenario())


def test_expired_queued_query_is_shed_not_run():
    async def scenario():
        node, sched = await _solo_scheduler(
            ServeConfig(max_concurrent=1, max_queue=4)
        )
        release = _block_searches(sched)
        running = asyncio.ensure_future(sched.ranked("gossip"))
        await asyncio.sleep(0)
        doomed = asyncio.ensure_future(sched.ranked("bloom", deadline_s=0.0))
        await asyncio.sleep(0.01)  # any real wait exceeds a zero deadline
        release.set()
        await running
        with pytest.raises(QueryRejected) as excinfo:
            await doomed
        assert excinfo.value.reason == "deadline exceeded while queued"
        assert node.obs.value("serve", "queries_shed_total") == 1
        # The shed query was never admitted or run.
        assert node.obs.value("serve", "queries_admitted_total") == 1
        await node.stop()

    asyncio.run(scenario())


def test_retry_after_tracks_measured_latency():
    async def scenario():
        node, sched = await _solo_scheduler(ServeConfig(max_concurrent=1))
        assert sched.retry_after() == pytest.approx(0.25)  # coarse default
        node.obs.histogram(
            "serve", "query_latency_seconds", "admission-to-answer time"
        ).observe(2.0)
        assert sched.retry_after() == pytest.approx(2.0)
        await node.stop()

    asyncio.run(scenario())


def test_queued_twin_query_is_answered_from_cache():
    """A query that queued behind an identical one must reuse its answer
    instead of re-running the search (the post-wait cache re-check)."""

    async def scenario():
        node, sched = await _solo_scheduler(
            ServeConfig(max_concurrent=1, max_queue=4)
        )
        release = _block_searches(sched)
        first = asyncio.ensure_future(sched.ranked("gossip"))
        await asyncio.sleep(0)
        twin = asyncio.ensure_future(sched.ranked("gossip"))
        await asyncio.sleep(0)
        release.set()
        assert await first == await twin == "answer:gossip"
        assert node.obs.value("serve", "result_cache_hits_total") == 1
        await node.stop()

    asyncio.run(scenario())


# -- PeerGate -----------------------------------------------------------------


def test_peer_gate_hands_out_one_semaphore_per_peer():
    async def scenario():
        gate = PeerGate(2)
        assert gate.slot(5) is gate.slot(5)
        assert gate.slot(5) is not gate.slot(6)
        async with gate.slot(5):
            async with gate.slot(5):
                assert gate.slot(5).locked()  # cap of 2 reached
            assert not gate.slot(5).locked()

    asyncio.run(scenario())
    with pytest.raises(ValueError):
        PeerGate(0)


# -- the bounded search client ------------------------------------------------


async def _community(net: LoopbackNetwork, n: int) -> list[NetworkPeer]:
    nodes = [_node(net, pid) for pid in range(n)]
    for node in nodes:
        await node.start()
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    for pid, node in enumerate(nodes):
        node.publish(Document(f"d{pid}", f"gossip shard {pid} of the corpus"))
    for _ in range(20):
        await asyncio.gather(*(node.gossip_round() for node in nodes))
    return nodes


def test_fanout_limit_bounds_concurrent_rpcs():
    async def scenario():
        net = LoopbackNetwork(latency_s=0.001)  # force request overlap
        nodes = await _community(net, 5)
        querier = nodes[0]
        inflight, seen_max = 0, 0
        inner = querier.transport.request

        async def counted(address: str, body: bytes) -> bytes:
            nonlocal inflight, seen_max
            inflight += 1
            seen_max = max(seen_max, inflight)
            try:
                return await inner(address, body)
            finally:
                inflight -= 1

        querier.transport.request = counted  # type: ignore[method-assign]
        client = NetworkSearchClient(querier, group_size=4, fanout_limit=1)
        await client.ranked_search("gossip corpus", k=10)
        assert seen_max == 1, f"fan-out cap leaked: {seen_max} concurrent RPCs"
        for node in nodes:
            await node.stop()

    asyncio.run(scenario())


def test_peer_deadline_abandons_a_stalled_peer():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _community(net, 3)
        querier, stalled = nodes[0], nodes[2]
        inner = querier.transport.request

        async def wedged(address: str, body: bytes) -> bytes:
            if address == stalled.address:
                await asyncio.sleep(60.0)
            return await inner(address, body)

        querier.transport.request = wedged  # type: ignore[method-assign]
        # One wave covering everyone, so the wedged peer is contacted.
        client = NetworkSearchClient(querier, group_size=3, peer_deadline_s=0.05)
        result = await client.ranked_search("gossip corpus", k=10)
        # The wedged peer contributed nothing, everyone else answered.
        got = {d.doc_id for d in result.results}
        assert "d0" in got and "d1" in got and "d2" not in got
        assert (
            querier.obs.value("client", "peer_deadline_timeouts_total") == 1
        )
        # A deadline miss is a failed contact: marked offline locally.
        assert not querier.peer.directory[stalled.peer_id].online
        for node in nodes:
            await node.stop()

    asyncio.run(scenario())


def test_client_bound_validation():
    async def scenario():
        net = LoopbackNetwork()
        node = _node(net, 0)
        with pytest.raises(ValueError):
            NetworkSearchClient(node, fanout_limit=0)
        with pytest.raises(ValueError):
            NetworkSearchClient(node, peer_deadline_s=0.0)

    asyncio.run(scenario())
