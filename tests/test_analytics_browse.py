"""The popularity-ranked browsable namespace, local and community-wide.

``local_listing`` answers the node-side BrowseRequest RPC from the local
index; :class:`CommunityBrowser` runs community listings through the
:class:`~repro.serve.scheduler.QueryScheduler`, so browse traffic gets
the same admission control, result caching, and generation-keyed
invalidation as search — a publish moves the directory generation and
the stale listing is evicted, never served.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analytics import CommunityBrowser, local_listing
from repro.constants import AnalyticsConfig
from repro.gossip.wire import BrowseRequest
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import QueryScheduler
from repro.text.document import Document

pytestmark = pytest.mark.analytics

DOCS = [
    Document("d-gossip", "gossip protocols spread rumors epidemically"),
    Document("d-bloom", "gossip summarized by bloom filters compactly"),
    Document("d-rank", "gossip ranking orders documents by similarity"),
]


def _node(net: LoopbackNetwork, pid: int) -> NetworkPeer:
    return NetworkPeer(
        pid,
        "peer",
        pid,
        transport=net.transport(),
        seed=pid,
        registry=Registry(),
        analytics_config=AnalyticsConfig(),
    )


async def _solo():
    """One started node holding DOCS, with d-bloom made popular."""
    net = LoopbackNetwork()
    node = _node(net, 0)
    await node.start()
    for doc in DOCS:
        node.publish(doc)
    for _ in range(5):
        node.analytics.record_access("d-bloom")
    node.analytics.record_access("d-rank")
    return node


def _browse_scheduler(node: NetworkPeer) -> QueryScheduler:
    sched = QueryScheduler(node)
    sched.attach_browser(CommunityBrowser(sched))
    return sched


# -- local_listing ----------------------------------------------------------


def test_local_listing_is_popularity_ordered():
    async def scenario():
        node = await _solo()
        reply = local_listing(node, BrowseRequest("/gossip", 10))
        assert reply.found
        names = [doc_id for doc_id, _, _ in reply.entries]
        # d-bloom (5 accesses) first, d-rank (1) next, d-gossip (0) last.
        assert names == ["d-bloom", "d-rank", "d-gossip"]
        scores = [pop for _, _, pop in reply.entries]
        assert scores == sorted(scores, reverse=True)
        for doc_id, link, _ in reply.entries:
            assert link == f"planetp://{doc_id}"
        await node.stop()

    asyncio.run(scenario())


def test_local_listing_rejects_bad_paths_softly():
    async def scenario():
        node = await _solo()
        for path in ["/", "", "relative/path", "/the/of"]:  # all-stopwords too
            reply = local_listing(node, BrowseRequest(path, 10))
            assert not reply.found
            assert reply.entries == ()
        await node.stop()

    asyncio.run(scenario())


def test_local_listing_clamps_k_and_reports_generation():
    async def scenario():
        node = await _solo()
        reply = local_listing(node, BrowseRequest("/gossip", 1))
        assert len(reply.entries) == 1
        before = reply.generation
        node.publish(Document("d-new", "brand new gossip arrives"))
        after = local_listing(node, BrowseRequest("/gossip", 10))
        assert after.generation != before
        assert "d-new" in [doc_id for doc_id, _, _ in after.entries]
        await node.stop()

    asyncio.run(scenario())


# -- CommunityBrowser through the scheduler --------------------------------


def test_scheduler_browse_requires_an_attached_browser():
    async def scenario():
        node = await _solo()
        sched = QueryScheduler(node)
        with pytest.raises(RuntimeError, match="no browser attached"):
            await sched.browse("/gossip")
        with pytest.raises(ValueError):
            await _browse_scheduler(node).browse("/gossip", k=0)
        await node.stop()

    asyncio.run(scenario())


def test_community_listing_is_popularity_ordered():
    async def scenario():
        node = await _solo()
        sched = _browse_scheduler(node)
        listing = await sched.browse("/gossip", k=10)
        assert listing.query == "gossip"
        assert listing.names() == ["d-bloom", "d-rank", "d-gossip"]
        pops = [e.popularity for e in listing.entries]
        assert pops == sorted(pops, reverse=True)
        await node.stop()

    asyncio.run(scenario())


def test_repeated_browse_is_a_cache_hit():
    async def scenario():
        node = await _solo()
        sched = _browse_scheduler(node)
        first = await sched.browse("/gossip", k=5)
        again = await sched.browse("/gossip", k=5)
        assert again.names() == first.names()
        assert node.obs.value("serve", "result_cache_hits_total") == 1
        assert node.obs.value("serve", "queries_admitted_total") == 1
        await node.stop()

    asyncio.run(scenario())


def test_publish_invalidates_a_cached_listing():
    async def scenario():
        node = await _solo()
        sched = _browse_scheduler(node)
        before = await sched.browse("/gossip", k=10)
        assert "d-fresh" not in before.names()
        node.publish(Document("d-fresh", "fresh gossip just published"))
        after = await sched.browse("/gossip", k=10)
        # The stale listing was evicted, never served: zero stale serves.
        assert "d-fresh" in after.names()
        assert after.generation != before.generation
        assert node.obs.value("serve", "result_cache_stale_total") == 1
        assert node.obs.value("serve", "result_cache_hits_total") == 0
        await node.stop()

    asyncio.run(scenario())


def test_browse_rejects_malformed_paths():
    async def scenario():
        node = await _solo()
        sched = _browse_scheduler(node)
        with pytest.raises(ValueError):
            await sched.browse("/the/of", k=5)  # analyzes to zero terms
        await node.stop()

    asyncio.run(scenario())


def test_community_popularity_dominates_search_relevance():
    async def scenario():
        # d-bloom mentions "gossip" once; d-gossip is far more relevant
        # to the query — but community access counts outrank relevance.
        node = await _solo()
        sched = _browse_scheduler(node)
        listing = await sched.browse("/gossip", k=2)
        assert listing.names()[0] == "d-bloom"
        assert len(listing.entries) == 2  # k truncates after the re-rank
        await node.stop()

    asyncio.run(scenario())
