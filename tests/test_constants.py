"""Table 2 and protocol-parameter fidelity tests.

These pin the reproduction's constants to the values the paper publishes,
so a refactor can't silently drift from the paper's configuration.
"""

import pytest

from repro import constants as c
from repro.constants import BloomConfig, GossipConfig, RankingConfig


class TestTable2:
    def test_cpu_gossip_time(self):
        assert c.CPU_GOSSIP_TIME_S == 0.005  # 5 ms

    def test_gossip_intervals(self):
        assert c.BASE_GOSSIP_INTERVAL_S == 30.0
        assert c.MAX_GOSSIP_INTERVAL_S == 60.0

    def test_wire_sizes(self):
        assert c.MESSAGE_HEADER_BYTES == 3
        assert c.BF_1000_KEYS_BYTES == 3000
        assert c.BF_20000_KEYS_BYTES == 16000
        assert c.BF_SUMMARY_BYTES == 6
        assert c.PEER_SUMMARY_BYTES == 48

    def test_link_speeds_span_table2(self):
        # "Network BW 56Kb/s to 45Mb/s"
        assert c.LINK_MODEM == 56_000 / 8
        assert c.LINK_LAN == 45_000_000 / 8

    def test_mix_distribution_sums_to_one(self):
        assert sum(f for f, _ in c.MIX_DISTRIBUTION) == pytest.approx(1.0)
        fractions = [f for f, _ in c.MIX_DISTRIBUTION]
        assert fractions == [0.09, 0.21, 0.50, 0.16, 0.04]


class TestSection3Parameters:
    def test_protocol_constants(self):
        assert c.ANTI_ENTROPY_PERIOD == 10  # every tenth round
        assert c.GOSSIP_LESS_THRESHOLD == 2
        assert c.GOSSIP_SLOWDOWN_S == 5.0
        assert c.BW_AWARE_FAST_TO_SLOW_PROB == 0.01

    def test_fast_threshold_is_512kbps(self):
        assert c.FAST_LINK_THRESHOLD_BPS == 512_000 / 8


class TestSection5Parameters:
    def test_stopping_heuristic_constants(self):
        # p = floor(2 + N/300) + 2*floor(k/50)
        assert (c.STOPPING_A, c.STOPPING_N_DIVISOR) == (2, 300)
        assert (c.STOPPING_K_COEFF, c.STOPPING_K_DIVISOR) == (2, 50)


class TestSection6Parameters:
    def test_pfs_constants(self):
        assert c.PFS_BROKER_TERM_FRACTION == 0.10  # "10% most frequent"
        assert c.PFS_BROKER_DISCARD_S == 600.0  # "10 minutes"


class TestSection71Parameters:
    def test_prototype_filter(self):
        assert c.PROTOTYPE_BF_BITS == 50 * 1024 * 8  # 50 KB
        assert c.PROTOTYPE_BF_CAPACITY == 50_000
        assert c.DEFAULT_BF_HASHES == 2


class TestConfigValidation:
    def test_gossip_config_defaults_are_paper_values(self):
        cfg = GossipConfig()
        assert cfg.base_interval_s == 30.0
        assert cfg.anti_entropy_period == 10
        assert cfg.use_partial_ae and not cfg.anti_entropy_only

    def test_gossip_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            GossipConfig(base_interval_s=0)
        with pytest.raises(ValueError):
            GossipConfig(max_interval_s=10.0, base_interval_s=30.0)
        with pytest.raises(ValueError):
            GossipConfig(anti_entropy_period=0)
        with pytest.raises(ValueError):
            GossipConfig(fast_to_slow_prob=2.0)

    def test_bloom_config_validation(self):
        with pytest.raises(ValueError):
            BloomConfig(num_bits=4)
        with pytest.raises(ValueError):
            BloomConfig(num_hashes=0)

    def test_ranking_config_is_equation4(self):
        assert RankingConfig().stopping_p(300, 50) == 3 + 2
