"""Tests for the Porter stemmer against the algorithm's published examples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.porter import PorterStemmer, porter_stem

# Examples from Porter's 1980 paper, step by step.
STEP_EXAMPLES = [
    # step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("caress", "caress"),
    ("cats", "cat"),
    # step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    # step 1b cleanup
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    # step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # step 5
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", STEP_EXAMPLES)
def test_porter_paper_examples(word, expected):
    assert porter_stem(word) == expected


class TestGeneralBehaviour:
    def test_short_words_unchanged(self):
        for w in ("a", "is", "be"):
            assert porter_stem(w) == w

    def test_common_conflations(self):
        # The property stemming exists for: variants conflate.
        assert porter_stem("running") == porter_stem("runs") == "run"
        assert porter_stem("connected") == porter_stem("connecting") == "connect"

    def test_measure(self):
        m = PorterStemmer._measure
        assert m("tr") == 0
        assert m("ee") == 0
        assert m("tree") == 0
        assert m("trouble") == 1
        assert m("oats") == 1
        assert m("ivy") == 1
        assert m("troubles") == 2
        assert m("oaten") == 2
        assert m("private") == 2

    def test_cvc(self):
        assert PorterStemmer._ends_cvc("hop")
        assert not PorterStemmer._ends_cvc("snow")  # ends in w
        assert not PorterStemmer._ends_cvc("box")  # ends in x
        assert not PorterStemmer._ends_cvc("tray")  # ends in y

    def test_y_as_vowel(self):
        # 'y' after a consonant acts as a vowel.
        assert PorterStemmer._contains_vowel("syzygy")
        assert not PorterStemmer._contains_vowel("tr")


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_property_stem_total_and_idempotent_shape(word):
    """Stemming never crashes, never grows a word, and yields lowercase."""
    stem = porter_stem(word)
    assert len(stem) <= len(word)
    assert stem == stem.lower()
