"""Persistent queries over the wire (repro.serve.subscriptions).

Loopback communities drive the full path: a :class:`SubscriptionClient`
posts a standing query at one node, a document published on a *different*
node travels by gossip to the serving node's replicated directory, and
the subscriber receives exactly one ``Notify`` upcall for it.  Around
that spine: baseline silencing, dedup across re-probes, unsubscribe,
reattach after a client restart, unacked-notify retries, durable
checkpoints across a server restart, and checkpoint-file robustness.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constants import StoreConfig
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork, TransportError
from repro.obs import Registry
from repro.serve import SubscriptionClient
from repro.store import (
    SubscriptionCheckpoint,
    SubscriptionEntry,
    load_subscriptions,
    save_subscriptions,
)
from repro.text.document import Document

FAST_STORE = StoreConfig(fsync=False)


def _node(net: LoopbackNetwork, pid: int, port: int | None = None, **kwargs) -> NetworkPeer:
    kwargs.setdefault("registry", Registry())
    return NetworkPeer(
        pid, "peer", port if port is not None else pid,
        transport=net.transport(), seed=pid, **kwargs,
    )


async def _boot(net: LoopbackNetwork, n: int) -> list[NetworkPeer]:
    nodes = [_node(net, pid) for pid in range(n)]
    for node in nodes:
        await node.start()
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    await _spread(nodes)
    return nodes


async def _spread(nodes: list[NetworkPeer], rounds: int = 15) -> None:
    """Drive gossip rounds, letting the subscription workers run between
    them, then settle any remaining dirty marks deterministically."""
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()
    for node in nodes:
        while await node.subscriptions.drain():
            pass


async def _client(net: LoopbackNetwork, port: int = 9000) -> SubscriptionClient:
    client = SubscriptionClient(
        "client", port, transport=net.transport(), registry=Registry()
    )
    await client.start()
    return client


def test_remote_publish_reaches_the_subscriber_once():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 3)
        client = await _client(net)
        events = []
        sub_id = await client.subscribe(nodes[0].address, "gossip", events.append)
        assert len(nodes[0].subscriptions) == 1

        nodes[2].publish(Document("d-new", "gossip spreads epidemically"))
        await _spread(nodes)
        assert [e.doc_id for e in events] == ["d-new"]
        notify = events[0]
        assert notify.sub_id == sub_id
        assert notify.origin == 2
        assert "gossip" in notify.text
        reg = nodes[0].obs
        assert reg.value("serve", "notifies_sent_total") == 1
        assert reg.value("serve", "subscriptions_active") == 1

        # Re-probing the same content must not re-deliver.
        nodes[0].subscriptions.mark_all_dirty()
        await _spread(nodes, rounds=3)
        assert len(events) == 1

        for node in nodes:
            await node.stop()
        await client.close()

    asyncio.run(scenario())


def test_baseline_documents_are_silent():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 3)
        nodes[1].publish(Document("d-old", "gossip existed before anyone asked"))
        await _spread(nodes)

        client = await _client(net)
        events = []
        await client.subscribe(nodes[0].address, "gossip", events.append)
        nodes[0].subscriptions.mark_all_dirty()
        await _spread(nodes, rounds=3)
        assert events == []  # pre-existing matches were baselined

        nodes[1].publish(Document("d-new", "gossip published after subscribing"))
        await _spread(nodes)
        assert [e.doc_id for e in events] == ["d-new"]

        for node in nodes:
            await node.stop()
        await client.close()

    asyncio.run(scenario())


def test_publish_on_the_serving_node_itself_fires():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 2)
        client = await _client(net)
        events = []
        await client.subscribe(nodes[0].address, "bloom", events.append)
        nodes[0].publish(Document("d-local", "bloom filters grown locally"))
        await _spread(nodes, rounds=3)
        assert [e.doc_id for e in events] == ["d-local"]
        assert events[0].origin == 0
        for node in nodes:
            await node.stop()
        await client.close()

    asyncio.run(scenario())


def test_unsubscribe_stops_delivery():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 2)
        client = await _client(net)
        events = []
        sub_id = await client.subscribe(nodes[0].address, "gossip", events.append)
        assert await client.unsubscribe(nodes[0].address, sub_id) is True
        assert len(nodes[0].subscriptions) == 0
        nodes[1].publish(Document("d", "gossip into the void"))
        await _spread(nodes)
        assert events == []
        # Idempotent: the second cancel reports the id as unknown.
        assert await client.unsubscribe(nodes[0].address, sub_id) is False
        for node in nodes:
            await node.stop()
        await client.close()

    asyncio.run(scenario())


def test_zero_term_subscription_is_declined():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 1)
        client = await _client(net)
        with pytest.raises(TransportError, match="declined"):
            await client.subscribe(nodes[0].address, "", lambda n: None)
        assert len(nodes[0].subscriptions) == 0
        await nodes[0].stop()
        await client.close()

    asyncio.run(scenario())


def test_subscribe_before_start_is_refused():
    async def scenario():
        net = LoopbackNetwork()
        client = SubscriptionClient(
            "client", 1, transport=net.transport(), registry=Registry()
        )
        with pytest.raises(RuntimeError, match="start"):
            await client.subscribe("peer:0", "gossip", lambda n: None)

    asyncio.run(scenario())


def test_client_restart_reattaches_and_keeps_dedup():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 2)
        first = await _client(net, port=9000)
        events_old = []
        sub_id = await first.subscribe(
            nodes[0].address, "gossip", events_old.append
        )
        nodes[1].publish(Document("d1", "gossip round one"))
        await _spread(nodes)
        assert [e.doc_id for e in events_old] == ["d1"]
        await first.close()  # the client dies; its address goes away

        # A new incarnation at a different address reattaches by sub id.
        second = await _client(net, port=9001)
        events_new = []
        reattached = await second.subscribe(
            nodes[0].address, "gossip", events_new.append, sub_id=sub_id
        )
        assert reattached == sub_id
        assert len(nodes[0].subscriptions) == 1  # no duplicate registration
        nodes[1].publish(Document("d2", "gossip round two"))
        await _spread(nodes)
        # Only the new document arrives: d1 stayed in the delivered set.
        assert [e.doc_id for e in events_new] == ["d2"]
        for node in nodes:
            await node.stop()
        await second.close()

    asyncio.run(scenario())


def test_unacked_notify_is_retried_until_the_client_returns():
    async def scenario():
        net = LoopbackNetwork()
        nodes = await _boot(net, 2)
        client = await _client(net, port=9000)
        events = []
        sub_id = await client.subscribe(nodes[0].address, "gossip", events.append)
        await client.close()  # gone before anything is published

        nodes[1].publish(Document("d", "gossip with nobody listening"))
        await _spread(nodes)
        assert events == []
        reg = nodes[0].obs
        assert reg.value("serve", "notify_failures_total") >= 1
        assert reg.value("serve", "notifies_sent_total") == 0

        # The client comes back at the same address and reattaches; the
        # retried probe delivers the queued document.
        revived = await _client(net, port=9000)
        await revived.subscribe(
            nodes[0].address, "gossip", events.append, sub_id=sub_id
        )
        nodes[0].subscriptions.mark_dirty(1)
        await _spread(nodes, rounds=3)
        assert [e.doc_id for e in events] == ["d"]
        assert reg.value("serve", "notifies_sent_total") == 1
        for node in nodes:
            await node.stop()
        await revived.close()

    asyncio.run(scenario())


def test_subscriptions_survive_a_server_restart(tmp_path):
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0, data_dir=tmp_path, store_config=FAST_STORE)
        b = _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])

        client = await _client(net)
        events = []
        sub_id = await client.subscribe(a.address, "gossip", events.append)
        b.publish(Document("d1", "gossip before the crash"))
        await _spread([a, b])
        assert [e.doc_id for e in events] == ["d1"]
        await a.stop()  # writes directory + subscription checkpoints

        # Published while the serving node is down: no rumor will ever
        # re-apply for it after the restart — only the start()-time
        # directory sweep can catch it.
        b.publish(Document("d2", "gossip during the outage"))

        a2 = _node(net, 0, port=100, data_dir=tmp_path, store_config=FAST_STORE)
        restored = a2.subscriptions.subscriptions
        assert a2.subscriptions.restored_subscriptions == 1
        assert restored[sub_id].delivered == {"d1"}
        assert restored[sub_id].notify_address == client.address
        await a2.start()
        await _spread([a2, b])
        # Exactly the outage document arrives; d1 is not re-delivered.
        assert [e.doc_id for e in events] == ["d1", "d2"]
        await a2.stop()
        await b.stop()
        await client.close()

    asyncio.run(scenario())


# -- checkpoint file robustness ----------------------------------------------


def test_subscription_checkpoint_roundtrip(tmp_path):
    path = tmp_path / "subs.ckpt"
    ckpt = SubscriptionCheckpoint(
        7,
        123.5,
        4,
        (
            SubscriptionEntry(3, ("gossip", "bloom"), "client:9", 1.0, ("d1", "d2")),
        ),
    )
    assert save_subscriptions(path, ckpt) > 0
    loaded = load_subscriptions(path)
    assert loaded == ckpt


def test_corrupt_subscription_checkpoint_is_a_cold_start(tmp_path):
    path = tmp_path / "subs.ckpt"
    ckpt = SubscriptionCheckpoint(7, 1.0, 2, ())
    save_subscriptions(path, ckpt)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # torn write
    assert load_subscriptions(path) is None
    assert load_subscriptions(tmp_path / "absent.ckpt") is None


def test_checkpoint_for_another_peer_is_ignored(tmp_path):
    async def scenario():
        net = LoopbackNetwork()
        save_subscriptions(
            tmp_path / "subscriptions.ckpt",
            SubscriptionCheckpoint(
                9, 1.0, 5, (SubscriptionEntry(1, ("t",), "x:1", 0.0, ()),)
            ),
        )
        node = _node(net, 0, data_dir=tmp_path, store_config=FAST_STORE)
        assert node.subscriptions.restored_subscriptions == 0
        assert len(node.subscriptions) == 0

    asyncio.run(scenario())
