"""The partial-view layer: shard maps, summaries, and sharded search.

Three levels, cheapest first:

* pure :class:`~repro.gossip.partialview.ShardMap` /
  :class:`~repro.gossip.partialview.ShardSummary` properties — hashing
  determinism, full pid coverage, the summary-as-OR semantics that make
  shard fan-out false-negative-free;
* :class:`~repro.gossip.partialview.PartialView` admission bounds — a
  node never pins more than home + sample full filters;
* a loopback community in partial-view mode — every node converges to a
  bounded filter set plus complete summaries, ranked and exhaustive
  search agree with a flat node on the same corpus, and the serve
  generation still moves on a *remote* publish even when the publisher's
  full filter was never kept.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig, PartialViewConfig
from repro.gossip.partialview import PartialView, ShardMap, ShardSummary
from repro.net.client import NetworkSearchClient
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import directory_generation
from repro.text.document import Document

pytestmark = pytest.mark.partialview

BLOOM = BloomConfig(num_bits=4096, num_hashes=2)
PVIEW = PartialViewConfig(num_shards=3, sample_size=2)


# -- ShardMap -----------------------------------------------------------------


def test_shard_map_is_deterministic_across_instances():
    a, b = ShardMap(8), ShardMap(8)
    for pid in range(500):
        assert a.shard_of(pid) == b.shard_of(pid)


def test_shard_map_covers_every_shard():
    smap = ShardMap(8)
    seen = {smap.shard_of(pid) for pid in range(2000)}
    assert seen == set(range(8))


def test_shard_map_assignment_is_roughly_balanced():
    smap = ShardMap(8, points_per_shard=64)
    counts = [0] * 8
    for pid in range(4000):
        counts[smap.shard_of(pid)] += 1
    # Consistent hashing with 64 virtual points per shard: no shard may
    # own more than ~3x its fair share (4000/8 = 500).
    assert max(counts) < 1500
    assert min(counts) > 100


def test_shard_map_peer_churn_never_remaps():
    # The ring's occupants are shards, not peers — learning about new
    # pids (any amount of peer churn) cannot move existing assignments.
    smap = ShardMap(8)
    before = {pid: smap.shard_of(pid) for pid in range(100)}
    for pid in range(100, 10_000):
        smap.shard_of(pid)
    assert {pid: smap.shard_of(pid) for pid in before} == before


def test_shard_map_rejects_degenerate_configs():
    with pytest.raises(ValueError):
        ShardMap(0)
    with pytest.raises(ValueError):
        ShardMap(4, points_per_shard=0)
    smap = ShardMap(4)
    with pytest.raises(ValueError):
        smap.add_shard(2)  # already placed
    with pytest.raises(KeyError):
        smap.remove_shard(99)


# -- ShardSummary -------------------------------------------------------------


def _filter_with(terms: list[str]) -> BloomFilter:
    bf = BloomFilter(BLOOM.num_bits, BLOOM.num_hashes)
    bf.add_many(terms)
    return bf


def test_summary_is_the_bitwise_or_of_member_filters():
    members = [
        _filter_with([f"term-{pid}-{j}" for j in range(6)]) for pid in range(5)
    ]
    summary = ShardSummary(1, BLOOM.num_bits, BLOOM.num_hashes)
    for bf in members:
        summary.fold_filter(bf)
    expected = BloomFilter(BLOOM.num_bits, BLOOM.num_hashes)
    for bf in members:
        expected.union_inplace(bf)
    assert summary.bloom == expected
    assert summary.version == len(members)
    # The defining guarantee: no member term is ever a summary miss.
    for pid in range(5):
        for j in range(6):
            assert f"term-{pid}-{j}" in summary.bloom


def test_summary_skips_foreign_geometry():
    summary = ShardSummary(0, BLOOM.num_bits, BLOOM.num_hashes)
    summary.fold_filter(BloomFilter(8192, 2))  # wrong num_bits
    summary.fold_filter(BloomFilter(BLOOM.num_bits, 4))  # wrong num_hashes
    assert summary.version == 0


def test_summary_install_is_monotone_and_adopts_freshness():
    local = ShardSummary(0, BLOOM.num_bits, BLOOM.num_hashes)
    local.fold_filter(_filter_with(["alpha"]))
    remote = _filter_with(["beta", "gamma"])
    local.install(remote, member_count=7, version=40)
    assert "alpha" in local.bloom  # union, never replace
    assert "beta" in local.bloom
    assert local.version == 40
    assert local.member_count == 7
    local.install(_filter_with(["delta"]), member_count=0, version=3)
    assert local.version == 41  # stale version ignored; the fold counted
    assert local.member_count == 7  # zero census carries no information


# -- PartialView admission bounds ---------------------------------------------


def test_view_keeps_home_filters_unconditionally():
    view = PartialView(0, PVIEW, BLOOM)
    home_pids = [pid for pid in range(200) if view.shard_of(pid) == view.home]
    assert all(view.keeps_filter(pid) for pid in home_pids)
    assert view.sample == set()  # home admission never consumes sample room


def test_view_sample_is_bounded():
    view = PartialView(0, PVIEW, BLOOM)
    foreign = [pid for pid in range(200) if view.shard_of(pid) != view.home]
    kept = [pid for pid in foreign if view.maybe_admit(pid)]
    assert len(kept) == PVIEW.sample_size
    assert len(view.sample) == PVIEW.sample_size
    # Everyone else is refused — and stays refused on a retry.
    refused = [pid for pid in foreign if pid not in view.sample]
    assert refused and not any(view.maybe_admit(pid) for pid in refused)


def test_view_forget_frees_sample_room():
    view = PartialView(0, PVIEW, BLOOM)
    foreign = [pid for pid in range(200) if view.shard_of(pid) != view.home]
    for pid in foreign:
        view.maybe_admit(pid)
    victim = next(iter(view.sample))
    view.forget(victim)
    newcomer = next(pid for pid in foreign if pid not in view.sample)
    assert view.maybe_admit(newcomer)
    assert len(view.sample) == PVIEW.sample_size


def test_unknown_shards_shrink_as_summaries_arrive():
    view = PartialView(0, PVIEW, BLOOM)
    foreign = [s for s in view.shard_map.shards if s != view.home]
    assert view.unknown_shards() == foreign
    covered = foreign[0]
    view.summary_for(covered).fold_filter(_filter_with(["x"]))
    assert covered not in view.unknown_shards()


# -- loopback community in partial-view mode ----------------------------------


def _pv_node(net: LoopbackNetwork, pid: int, pview: bool = True) -> NetworkPeer:
    return NetworkPeer(
        pid,
        "peer",
        pid,
        transport=net.transport(),
        seed=pid,
        registry=Registry(),
        bloom_config=BLOOM,
        partial_view=PVIEW if pview else None,
    )


async def _converge(nodes: list[NetworkPeer], rounds: int = 40) -> None:
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()


def _corpus(nodes: list[NetworkPeer]) -> None:
    for node in nodes:
        pid = node.peer_id
        node.publish(Document(f"doc-{pid}", f"topic{pid} shared corpus term"))


def test_partialview_community_bounds_filters_and_answers_searches():
    async def scenario():
        net = LoopbackNetwork(seed=7)
        nodes = [_pv_node(net, pid) for pid in range(8)]
        # One flat observer proves search parity across modes.
        flat = _pv_node(net, 8, pview=False)
        for node in [*nodes, flat]:
            await node.start()
        _corpus(nodes)
        for node in [*nodes[1:], flat]:
            await node.join(nodes[0].address)
        await _converge([*nodes, flat])

        for node in nodes:
            pview = node.pview
            assert pview is not None
            held = [
                pid
                for pid, entry in node.peer.directory.items()
                if pid != node.peer_id and entry.bloom_filter is not None
            ]
            # The admission bound: home members + at most sample_size.
            home_members = [
                pid
                for pid in node.peer.directory
                if pid != node.peer_id and pview.shard_of(pid) == pview.home
            ]
            assert len(held) <= len(home_members) + PVIEW.sample_size
            # ... but the *record* directory is complete.
            assert len(node.peer.directory) == 9
            # Complete summary coverage of every foreign shard.
            assert pview.unknown_shards() == []

        # Ranked search through shard fan-out matches the flat observer.
        pv_client = NetworkSearchClient(nodes[2])
        flat_client = NetworkSearchClient(flat)
        for query in ("topic5", "shared corpus", "topic0 shared"):
            got = await pv_client.ranked_search(query, k=8)
            want = await flat_client.ranked_search(query, k=8)
            assert {d.doc_id for d in got.results} == {
                d.doc_id for d in want.results
            }, query

        # Exhaustive search agrees too (conjunctive, Section 5.1).
        got_docs = await pv_client.exhaustive_search("shared corpus term")
        want_docs = await flat_client.exhaustive_search("shared corpus term")
        assert got_docs == want_docs
        assert len(got_docs) == 8

        for node in [*nodes, flat]:
            await node.stop()

    asyncio.run(scenario())


def test_remote_publish_moves_generation_without_the_full_filter():
    async def scenario():
        net = LoopbackNetwork(seed=11)
        nodes = [_pv_node(net, pid) for pid in range(8)]
        for node in nodes:
            await node.start()
        _corpus(nodes)
        for node in nodes[1:]:
            await node.join(nodes[0].address)
        await _converge(nodes)

        # Pick an observer that does NOT hold the publisher's filter, so
        # invalidation must come from the replicated version counters and
        # summary folds, not from a local filter mutation.
        publisher, observer = None, None
        for cand in nodes:
            for other in nodes:
                if (
                    other is not cand
                    and cand.peer.directory[other.peer_id].bloom_filter is None
                ):
                    observer, publisher = cand, other
                    break
            if observer is not None:
                break
        assert observer is not None and publisher is not None

        g0 = directory_generation(observer)
        publisher.publish(Document("d-new", "zeta freshly published content"))
        await _converge(nodes, rounds=12)
        assert directory_generation(observer) != g0
        # And the new content is actually searchable from the observer.
        client = NetworkSearchClient(observer)
        docs = await client.exhaustive_search("zeta")
        assert docs == ["d-new"]

        for node in nodes:
            await node.stop()

    asyncio.run(scenario())
