"""Tests for the simulator-vs-reality validation layer."""

import pytest

from repro.constants import GossipConfig
from repro.gossip.validation import (
    run_live_replication,
    wire_model_vs_real,
)


class TestWireModel:
    def test_model_within_2x_of_real_compression(self):
        """Table 2's interpolated wire sizes and our actual Golomb
        compression agree to within a factor of two across the range the
        paper anchors (1000 and 20000 keys)."""
        rows = wire_model_vs_real(key_counts=(1000, 5000, 10000, 20000))
        for row in rows:
            assert 0.5 <= row.ratio <= 2.0, (row.num_keys, row.ratio)

    def test_real_size_monotone_in_keys(self):
        rows = wire_model_vs_real(key_counts=(1000, 5000, 20000))
        sizes = [r.real_bytes for r in rows]
        assert sizes == sorted(sizes)

    def test_anchors_order_of_magnitude(self):
        """1000 keys ≈ 3 KB and 20000 keys ≈ 16 KB in the paper; our real
        encodings land in the same order of magnitude."""
        rows = {r.num_keys: r for r in wire_model_vs_real((1000, 20000))}
        assert 1000 < rows[1000].real_bytes < 10_000
        assert 8_000 < rows[20000].real_bytes < 64_000


class TestLiveReplication:
    def test_replicas_become_exact(self):
        """The validation the paper did on its cluster: after gossiping
        real compressed diffs, every peer's replica is bit-identical to
        the publisher's filter."""
        result = run_live_replication(n_peers=15, n_publishers=3, seed=1)
        assert result.converged
        assert result.replicas_exact
        assert result.total_bytes > 0

    def test_costs_are_real_not_model(self):
        """Volume scales with the publishers' actual diff sizes."""
        small = run_live_replication(
            n_peers=12, n_publishers=2, terms_per_publisher=100, seed=2
        )
        large = run_live_replication(
            n_peers=12, n_publishers=2, terms_per_publisher=2000, seed=2
        )
        assert large.total_bytes > small.total_bytes

    def test_works_on_dsl_topology(self):
        result = run_live_replication(
            n_peers=10, n_publishers=2, topology="dsl", seed=3
        )
        assert result.replicas_exact

    def test_custom_config(self):
        cfg = GossipConfig(base_interval_s=1.0, max_interval_s=2.0)
        result = run_live_replication(n_peers=8, n_publishers=1, config=cfg, seed=4)
        assert result.replicas_exact
        assert result.convergence_time_s < 600.0
