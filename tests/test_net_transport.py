"""Transports carry frames faithfully: loopback determinism, real TCP."""

import asyncio

import pytest

from repro.constants import NetConfig
from repro.net.transport import (
    LoopbackNetwork,
    TcpTransport,
    TransportError,
)


async def _echo(body: bytes) -> bytes:
    return b"echo:" + body


# -- loopback ---------------------------------------------------------------


def test_loopback_request_response():
    async def scenario():
        net = LoopbackNetwork()
        server = net.transport()
        await server.serve("a:1", _echo)
        client = net.transport()
        reply = await client.request("a:1", b"hello")
        assert reply == b"echo:hello"
        assert net.frames_carried == 2
        assert net.bytes_carried == len(b"hello") + len(b"echo:hello")

    asyncio.run(scenario())


def test_loopback_unknown_address():
    async def scenario():
        net = LoopbackNetwork()
        with pytest.raises(TransportError, match="no peer serving"):
            await net.transport().request("nowhere:1", b"x")

    asyncio.run(scenario())


def test_loopback_duplicate_address_rejected():
    async def scenario():
        net = LoopbackNetwork()
        await net.transport().serve("a:1", _echo)
        with pytest.raises(TransportError, match="already in use"):
            await net.transport().serve("a:1", _echo)

    asyncio.run(scenario())


def test_loopback_injected_drops_are_deterministic():
    async def drops_with(seed: int) -> list[bool]:
        net = LoopbackNetwork(drop_rate=0.5, seed=seed)
        t = net.transport()
        await t.serve("a:1", _echo)
        outcomes = []
        for _ in range(20):
            try:
                await t.request("a:1", b"x")
                outcomes.append(True)
            except TransportError:
                outcomes.append(False)
        return outcomes

    first = asyncio.run(drops_with(7))
    second = asyncio.run(drops_with(7))
    assert first == second
    assert True in first and False in first


def test_loopback_close_deregisters():
    async def scenario():
        net = LoopbackNetwork()
        t = net.transport()
        await t.serve("a:1", _echo)
        await t.close()
        with pytest.raises(TransportError, match="no peer serving"):
            await net.transport().request("a:1", b"x")

    asyncio.run(scenario())


# -- TCP --------------------------------------------------------------------


def test_tcp_request_response_and_connection_reuse():
    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", _echo)
        assert address != "127.0.0.1:0"  # an ephemeral port was bound
        client = TcpTransport()
        try:
            assert await client.request(address, b"one") == b"echo:one"
            conn_after_first = client._conns[address]
            assert await client.request(address, b"two") == b"echo:two"
            assert client._conns[address] is conn_after_first
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_concurrent_requests_share_one_connection():
    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", _echo)
        client = TcpTransport()
        try:
            replies = await asyncio.gather(
                *(client.request(address, b"%d" % i) for i in range(8))
            )
            assert sorted(replies) == sorted(b"echo:%d" % i for i in range(8))
            assert len(client._conns) == 1
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_connect_failure_raises():
    async def scenario():
        client = TcpTransport(NetConfig(connect_timeout_s=0.5))
        # A port nothing listens on: bind one, close it, then dial it.
        probe = TcpTransport()
        address = await probe.serve("127.0.0.1:0", _echo)
        await probe.close()
        with pytest.raises(TransportError, match="cannot connect"):
            await client.request(address, b"x")
        await client.close()

    asyncio.run(scenario())


def test_tcp_oversized_reply_rejected_by_client():
    async def big(body: bytes) -> bytes:
        return b"y" * 4096

    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", big)
        client = TcpTransport(NetConfig(max_frame_bytes=1024))
        try:
            with pytest.raises(TransportError, match="exceeds max"):
                await client.request(address, b"x")
            assert address not in client._conns
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_bad_address_rejected():
    async def scenario():
        with pytest.raises(TransportError, match="want host:port"):
            await TcpTransport().request("no-port-here", b"x")

    asyncio.run(scenario())


# -- retry / backoff --------------------------------------------------------

_FAST_RETRY = NetConfig(
    request_retries=2,
    retry_backoff_s=0.01,
    retry_backoff_max_s=0.02,
    retry_jitter_frac=0.0,
)


def test_tcp_retry_recovers_from_transient_connection_error():
    calls = []

    async def flaky(body: bytes) -> bytes:
        calls.append(body)
        if len(calls) == 1:
            raise ConnectionResetError("simulated mid-stream reset")
        return b"ok:" + body

    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", flaky)
        client = TcpTransport(_FAST_RETRY)
        try:
            assert await client.request(address, b"x") == b"ok:x"
            assert len(calls) == 2
            assert client.retried_requests == 1
            assert client.failed_requests == 0
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_retries_exhaust_then_fail():
    calls = []

    async def always_resets(body: bytes) -> bytes:
        calls.append(body)
        raise ConnectionResetError("still down")

    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", always_resets)
        client = TcpTransport(_FAST_RETRY)
        try:
            with pytest.raises(TransportError):
                await client.request(address, b"x")
            assert len(calls) == 1 + _FAST_RETRY.request_retries
            assert client.failed_requests == 1
            assert client.retried_requests == _FAST_RETRY.request_retries
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_framing_violation_is_not_retried():
    async def big(body: bytes) -> bytes:
        return b"y" * 4096

    async def scenario():
        server = TcpTransport()
        address = await server.serve("127.0.0.1:0", big)
        client = TcpTransport(
            NetConfig(
                max_frame_bytes=1024,
                request_retries=5,
                retry_backoff_s=0.01,
                retry_jitter_frac=0.0,
            )
        )
        try:
            with pytest.raises(TransportError, match="exceeds max"):
                await client.request(address, b"x")
            # A protocol violation will not heal with time: no retries.
            assert client.retried_requests == 0
        finally:
            await client.close()
            await server.close()

    asyncio.run(scenario())


def test_tcp_deadline_cuts_retries_short():
    async def scenario():
        client = TcpTransport(
            NetConfig(
                connect_timeout_s=0.2,
                request_retries=50,
                retry_backoff_s=5.0,
                retry_backoff_max_s=5.0,
                retry_jitter_frac=0.0,
                request_deadline_s=0.5,
            )
        )
        probe = TcpTransport()
        address = await probe.serve("127.0.0.1:0", _echo)
        await probe.close()
        try:
            with pytest.raises(TransportError, match="cannot connect"):
                await client.request(address, b"x")
            # The 5 s backoff would overshoot the 0.5 s deadline, so the
            # request fails after the first attempt instead of sleeping.
            assert client.retried_requests == 0
            assert client.failed_requests == 1
        finally:
            await client.close()

    asyncio.run(scenario())
