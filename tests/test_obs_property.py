"""Property sweep for repro.obs histograms and instrument thread-safety.

Same pattern as tests/test_property_roundtrip.py: pure stdlib ``random``,
200+ seeded cases per property, SEED plus case index embedded in every
failure message so any counterexample reproduces exactly.
"""

import asyncio
import concurrent.futures
import random
import threading

from repro.obs import Counter, Gauge, Histogram, HistogramSnapshot, Registry

SEED = 20260806
CASES = 200


def _random_bounds(rng: random.Random) -> tuple[float, ...]:
    n = rng.randrange(1, 12)
    cuts = sorted(rng.sample(range(1, 10_000), n))
    scale = rng.choice([0.001, 0.1, 1.0, 64.0])
    return tuple(c * scale for c in cuts)


def _random_snapshot(
    rng: random.Random, bounds: tuple[float, ...], max_obs: int = 60
) -> HistogramSnapshot:
    h = Histogram("p", "h", bounds=bounds)
    hi = bounds[-1] * 2
    # Integer-valued observations keep float sums exact under reordering.
    for _ in range(rng.randrange(max_obs)):
        h.observe(float(rng.randrange(0, max(2, int(hi)))))
    return h.snapshot()


# ---------------------------------------------------------------------------
# Merge: associative, commutative, identity
# ---------------------------------------------------------------------------


def test_merge_associative_and_commutative():
    rng = random.Random(SEED)
    for case in range(CASES):
        bounds = _random_bounds(rng)
        a = _random_snapshot(rng, bounds)
        b = _random_snapshot(rng, bounds)
        c = _random_snapshot(rng, bounds)
        ctx = f"seed={SEED} case={case} bounds={bounds}"
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right, f"merge not associative: {ctx}"
        assert a.merge(b) == b.merge(a), f"merge not commutative: {ctx}"
        empty = Histogram("p", "e", bounds=bounds).snapshot()
        assert a.merge(empty) == a, f"empty not an identity: {ctx}"


def test_merge_totals_match_componentwise_sums():
    rng = random.Random(SEED + 1)
    for case in range(CASES):
        bounds = _random_bounds(rng)
        parts = [_random_snapshot(rng, bounds) for _ in range(rng.randrange(2, 6))]
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.merge(p)
        ctx = f"seed={SEED + 1} case={case}"
        assert merged.total == sum(p.total for p in parts), ctx
        assert merged.sum == sum(p.sum for p in parts), ctx
        for i in range(len(bounds) + 1):
            assert merged.counts[i] == sum(p.counts[i] for p in parts), f"{ctx} bucket={i}"


# ---------------------------------------------------------------------------
# Snapshot immutability: later observations never leak into older snapshots
# ---------------------------------------------------------------------------


def test_snapshot_immutable_under_later_observations():
    rng = random.Random(SEED + 2)
    for case in range(CASES):
        bounds = _random_bounds(rng)
        h = Histogram("p", "h", bounds=bounds)
        for _ in range(rng.randrange(30)):
            h.observe(rng.uniform(0, bounds[-1] * 2))
        before = h.snapshot()
        frozen = (before.bounds, before.counts, before.total, before.sum)
        for _ in range(rng.randrange(1, 30)):
            h.observe(rng.uniform(0, bounds[-1] * 2))
        ctx = f"seed={SEED + 2} case={case}"
        assert (before.bounds, before.counts, before.total, before.sum) == frozen, ctx
        after = h.snapshot()
        assert after.total > before.total or after == before, ctx


# ---------------------------------------------------------------------------
# Quantiles: monotone in q, bounded by the bucket range
# ---------------------------------------------------------------------------


def test_quantile_monotone_and_bounded():
    rng = random.Random(SEED + 3)
    for case in range(CASES):
        bounds = _random_bounds(rng)
        snap = _random_snapshot(rng, bounds)
        ctx = f"seed={SEED + 3} case={case} bounds={bounds}"
        qs = sorted(rng.uniform(0, 1) for _ in range(8))
        values = [snap.quantile(q) for q in qs]
        for (q1, v1), (q2, v2) in zip(zip(qs, values), zip(qs[1:], values[1:])):
            assert v1 <= v2, f"quantile not monotone ({q1}->{v1}, {q2}->{v2}): {ctx}"
        for q, v in zip(qs, values):
            assert 0.0 <= v <= bounds[-1], f"quantile {q}->{v} out of range: {ctx}"


def test_quantile_of_merge_between_part_extremes():
    # Merging can't push a quantile outside the min/max of the parts'
    # same-q quantiles (the merged distribution is a mixture).
    rng = random.Random(SEED + 4)
    for case in range(CASES):
        bounds = _random_bounds(rng)
        a = _random_snapshot(rng, bounds)
        b = _random_snapshot(rng, bounds)
        if a.total == 0 or b.total == 0:
            continue
        merged = a.merge(b)
        q = rng.uniform(0, 1)
        qa, qb, qm = a.quantile(q), b.quantile(q), merged.quantile(q)
        ctx = f"seed={SEED + 4} case={case} q={q}"
        lo, hi = min(qa, qb), max(qa, qb)
        # Allow one bucket of slack: interpolation is per-bucket linear.
        widths = [bounds[0]] + [b2 - b1 for b1, b2 in zip(bounds, bounds[1:])]
        slack = max(widths)
        assert lo - slack <= qm <= hi + slack, f"{ctx}: {qa}, {qb} -> {qm}"


# ---------------------------------------------------------------------------
# Thread-safety: counters and gauges hammered from threads and coroutines
# ---------------------------------------------------------------------------


def test_counter_thread_safety_under_threads():
    c = Counter("p", "hammered_total")
    threads = 8
    per_thread = 5_000
    barrier = threading.Barrier(threads)

    def hammer():
        barrier.wait()
        for _ in range(per_thread):
            c.inc()

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert c.value == threads * per_thread


def test_gauge_thread_safety_under_threads():
    g = Gauge("p", "depth")
    threads = 8
    per_thread = 5_000
    barrier = threading.Barrier(threads)

    def hammer(sign: int):
        barrier.wait()
        for _ in range(per_thread):
            g.inc(sign)

    workers = [
        threading.Thread(target=hammer, args=(1 if i % 2 == 0 else -1,))
        for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert g.value == 0.0  # equal +1/-1 populations cancel exactly


def test_histogram_thread_safety_under_threads():
    h = Histogram("p", "lat", bounds=(1.0, 2.0, 4.0))
    threads = 6
    per_thread = 3_000
    barrier = threading.Barrier(threads)

    def hammer(value: float):
        barrier.wait()
        for _ in range(per_thread):
            h.observe(value)

    values = [0.5, 1.5, 3.0, 8.0, 0.5, 1.5]
    workers = [threading.Thread(target=hammer, args=(v,)) for v in values]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    snap = h.snapshot()
    assert snap.total == threads * per_thread
    assert snap.counts == (2 * per_thread, 2 * per_thread, per_thread, per_thread)
    assert snap.sum == sum(v * per_thread for v in values)


def test_instruments_under_asyncio_gather():
    # Coroutines interleave on one loop while a thread pool pokes the
    # same instruments from real OS threads — the mixed regime a live
    # node actually runs in.
    reg = Registry()
    c = reg.counter("p", "ops_total")
    g = reg.gauge("p", "inflight")
    h = reg.histogram("p", "lat", bounds=(1.0, 4.0))

    async def coro_worker(n: int):
        for i in range(n):
            g.inc()
            c.inc()
            h.observe(float(i % 6))
            g.dec()
            if i % 64 == 0:
                await asyncio.sleep(0)

    def thread_worker(n: int):
        for i in range(n):
            c.inc()
            h.observe(float(i % 6))

    async def main():
        loop = asyncio.get_running_loop()
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            thread_jobs = [
                loop.run_in_executor(pool, thread_worker, 2_000) for _ in range(4)
            ]
            await asyncio.gather(*(coro_worker(2_000) for _ in range(8)), *thread_jobs)

    asyncio.run(main())
    total = 8 * 2_000 + 4 * 2_000
    assert c.value == total
    assert g.value == 0.0
    assert h.snapshot().total == total


def test_registry_registration_race():
    # Concurrent get-or-create for the same key must yield one instrument.
    reg = Registry()
    winners = []
    barrier = threading.Barrier(8)

    def register():
        barrier.wait()
        winners.append(reg.counter("race", "c_total"))

    workers = [threading.Thread(target=register) for _ in range(8)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert all(w is winners[0] for w in winners)
    for w in winners:
        w.inc()
    assert reg.value("race", "c_total") == 8.0
