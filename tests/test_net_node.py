"""NetworkPeer behaviour: join, publish, rumor spread, liveness, serving.

Everything runs over the deterministic loopback fabric with seeded RNGs,
so each scenario is reproducible without real sockets.
"""

import asyncio

import pytest

from repro.constants import GossipConfig
from repro.gossip.wire import AENothing, RumorPush, RumorReply
from repro.net import codec
from repro.net.codec import ErrorReply
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.text.document import Document


def _node(net: LoopbackNetwork, pid: int, clock=None, **kwargs) -> NetworkPeer:
    extra = {"clock": clock} if clock is not None else {}
    return NetworkPeer(
        pid, "peer", pid, transport=net.transport(), seed=pid, **extra, **kwargs
    )


def test_peer_id_must_fit_16_bits():
    with pytest.raises(ValueError, match="16 bits"):
        NetworkPeer(1 << 16)


def test_rumor_ids_are_globally_unique_per_peer():
    net = LoopbackNetwork()
    a, b = _node(net, 3), _node(net, 4)
    rids = [a._mint_rid(), a._mint_rid(), b._mint_rid()]
    assert len(set(rids)) == 3
    assert rids[0] >> 32 == 3 and rids[2] >> 32 == 4


def test_join_exchanges_records_and_filters():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        a.publish(Document("d-a", "gossip spreads rumors"))
        b.publish(Document("d-b", "bloom filters compress membership"))
        await b.join(a.address)
        # The bootstrap learned the joiner's rumor; the joiner got the
        # snapshot: both sides now see both members.
        assert a.members() == b.members() == [0, 1]
        # b's pre-join update rumor still needs one push to reach a.
        await b.gossip_round()
        assert a.digest == b.digest
        replica = a.replica_of(1)
        assert replica is not None
        assert replica == b.peer.store.bloom_filter
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_flush_updates_mints_only_on_growth():
    net = LoopbackNetwork()
    a = _node(net, 0)
    assert a.flush_updates() is None  # nothing published yet
    a.publish(Document("d", "some fresh terms here"))
    assert a.flush_updates() is None  # publish() already flushed this growth
    a.publish(Document("d2", "some fresh terms here"))
    assert a.flush_updates() is None  # identical terms set no new bits


def test_rumor_round_spreads_update_and_retires_rumor():
    async def scenario():
        config = GossipConfig(rumor_give_up_count=2)
        net = LoopbackNetwork()
        a, b = _node(net, 0, gossip_config=config), _node(net, 1, gossip_config=config)
        await a.start()
        await b.start()
        await b.join(a.address)
        a.publish(Document("d", "unique gossip terminology"))
        # a's hot set holds b's JOIN rumor too; pick a's own update rumor.
        hot_rid = next(rid for rid in a.hot if rid >> 32 == 0)
        await a.gossip_round()
        assert hot_rid in b.known
        assert b.replica_of(0) == a.peer.store.bloom_filter
        # Keep pushing to the only peer until the rumor goes cold.
        for _ in range(config.rumor_give_up_count + 1):
            await a.gossip_round()
        assert hot_rid not in a.hot
        assert hot_rid in a.recent  # retired into the partial-AE window
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_anti_entropy_reconciles_a_cold_gap():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        # Give b knowledge a lacks, without rumoring: learn quietly.
        b.publish(Document("d", "anti entropy repairs gaps"))
        b.hot.clear()  # b will never push it
        assert a.digest != b.digest
        # Force a's next round to be anti-entropy (no hot rumors at a).
        a.hot.clear()
        await a.gossip_round()
        assert a.digest == b.digest
        assert a.replica_of(1) == b.peer.store.bloom_filter
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_failed_contacts_mark_offline_and_t_dead_drops():
    async def scenario():
        now = [0.0]
        config = GossipConfig(t_dead_s=100.0)
        net = LoopbackNetwork()
        a = _node(net, 0, clock=lambda: now[0], gossip_config=config)
        b = _node(net, 1, clock=lambda: now[0], gossip_config=config)
        await a.start()
        await b.start()
        await b.join(a.address)
        await b.stop()  # silent departure: no announcement
        a.hot.clear()
        await a.gossip_round()  # contact fails
        assert a.peer.directory[1].online is False
        assert 1 in a.offline_since
        now[0] = 50.0
        await a.gossip_round()  # still within T_Dead
        assert 1 in a.peer.directory
        now[0] = 101.0
        await a.gossip_round()  # past T_Dead: dropped
        assert 1 not in a.peer.directory
        await a.stop()

    asyncio.run(scenario())


def test_rejoin_refreshes_address():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        old = a.peer.directory[1].address
        # b comes back at a new address and announces a REJOIN.
        b.address = "peer:99"
        b.peer.address = "peer:99"
        b.announce_rejoin()
        await b.gossip_round()
        assert a.peer.directory[1].address == "peer:99" != old
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_server_replies_error_on_garbage_and_unexpected_messages():
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        address = await a.start()
        client = net.transport()
        assert isinstance(codec.decode(await client.request(address, b"\xff\xff")), ErrorReply)
        body = await client.request(address, codec.encode(RumorReply((), ())))
        assert isinstance(codec.decode(body), ErrorReply)
        await a.stop()

    asyncio.run(scenario())


def test_push_reply_reports_needed_and_piggyback():
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        address = await a.start()
        a.known.update({111, 222})  # known and retired: in the AE window
        a.recent.extend([111, 222])
        client = net.transport()
        unknown = (5 << 32) | 1
        body = await client.request(address, codec.encode(RumorPush((unknown, 111))))
        reply = codec.decode(body)
        assert isinstance(reply, RumorReply)
        assert reply.needed == (unknown,)
        assert set(reply.piggyback) == {222}  # pushed ids are excluded
        await a.stop()

    asyncio.run(scenario())


def test_background_loop_converges_two_nodes():
    async def scenario():
        config = GossipConfig(base_interval_s=0.02, max_interval_s=0.05)
        net = LoopbackNetwork()
        a, b = _node(net, 0, gossip_config=config), _node(net, 1, gossip_config=config)
        await a.start()
        await b.start()
        a.publish(Document("d", "looped gossip convergence"))
        await b.join(a.address)
        a.run()
        b.run()
        for _ in range(100):
            if a.digest == b.digest and b.replica_of(0) is not None:
                break
            await asyncio.sleep(0.02)
        assert a.digest == b.digest
        await a.stop()
        await b.stop()
        assert a._gossip_task is None and b._gossip_task is None

    asyncio.run(scenario())


def test_ack_for_rumor_data_is_nothing():
    net = LoopbackNetwork()
    a = _node(net, 0)

    async def scenario():
        address = await a.start()
        client = net.transport()
        from repro.gossip.wire import RumorData

        body = await client.request(address, codec.encode(RumorData(())))
        assert codec.decode(body) == AENothing()
        await a.stop()

    asyncio.run(scenario())


def test_stop_cancels_inflight_gossip_cleanly():
    """Start/stop 20 peers with the background loop running: no "Task was
    destroyed but it is pending!" warnings, no stray tasks, no loop
    exception-handler callbacks."""
    import gc

    problems = []

    async def scenario():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, context: problems.append(context["message"])
        )
        config = GossipConfig(base_interval_s=0.005, max_interval_s=0.01)
        net = LoopbackNetwork()
        bootstrap = _node(net, 0, gossip_config=config)
        await bootstrap.start()
        bootstrap.run()
        for i in range(1, 21):
            node = _node(net, i, gossip_config=config)
            await node.start()
            node.publish(Document(f"d{i}", f"churn start stop {i}"))
            await node.join(bootstrap.address)
            node.run()
            if i % 2:
                await asyncio.sleep(0.01)  # let a gossip round get in flight
            await node.stop()
            assert node._gossip_task is None
            await node.stop()  # idempotent
        await bootstrap.stop()
        current = asyncio.current_task()
        leftovers = [t for t in asyncio.all_tasks() if t is not current]
        assert leftovers == [], f"tasks survived stop(): {leftovers}"

    asyncio.run(scenario())
    gc.collect()  # would emit "Task was destroyed" through the handler
    assert problems == []
