"""Edge cases of the in-process persistent-query manager (Section 5.1).

The dispatch loop must stay correct when callbacks mutate the registry
mid-dispatch — a cancel racing a publish must suppress the doomed
query's upcall, a post racing a publish must not corrupt iteration — and
the delivered set must dedup re-publications of the same document.
"""

from __future__ import annotations

import pytest

from repro.core.persistent import PersistentQueryManager
from repro.text.document import Document


def _terms(text: str) -> set[str]:
    return set(text.split())


def test_matching_document_fires_once_per_query():
    mgr = PersistentQueryManager()
    hits: list[str] = []
    mgr.post(["gossip"], lambda doc: hits.append(doc.doc_id))
    mgr.post(["gossip", "bloom"], lambda doc: hits.append("both:" + doc.doc_id))
    fired = mgr.on_new_document(Document("d1", ""), _terms("gossip bloom"))
    assert fired == 2
    assert sorted(hits) == ["both:d1", "d1"]
    assert mgr.on_new_document(Document("d2", ""), _terms("bloom")) == 0


def test_republished_document_is_deduplicated():
    """Remove-then-republish: the delivered set outlives the document,
    so the same doc id coming back never re-fires."""
    mgr = PersistentQueryManager()
    hits: list[str] = []
    mgr.post(["gossip"], lambda doc: hits.append(doc.doc_id))
    doc = Document("d", "gossip rumors")
    assert mgr.on_new_document(doc, _terms("gossip rumors")) == 1
    # The document is removed and published again — duplicate upcalls
    # would make every subscriber re-process old news.
    assert mgr.on_new_document(doc, _terms("gossip rumors")) == 0
    assert mgr.on_new_document(Document("d", "gossip edited"), _terms("gossip")) == 0
    assert hits == ["d"]


def test_cancel_racing_a_publish_suppresses_the_upcall():
    """A callback cancelling another query mid-dispatch must win the
    race: the cancelled query gets no upcall for the in-flight doc."""
    mgr = PersistentQueryManager()
    hits: list[str] = []

    def assassin(doc: Document) -> None:
        hits.append("assassin")
        mgr.cancel(doomed.query_id)

    mgr.post(["gossip"], assassin)  # dispatches first (insertion order)
    doomed = mgr.post(["gossip"], lambda doc: hits.append("doomed"))
    fired = mgr.on_new_document(Document("d", ""), _terms("gossip"))
    assert fired == 1
    assert hits == ["assassin"]
    assert len(mgr) == 1


def test_callback_posting_a_query_does_not_break_dispatch():
    mgr = PersistentQueryManager()
    hits: list[str] = []

    def recruiter(doc: Document) -> None:
        hits.append("recruiter:" + doc.doc_id)
        mgr.post(["gossip"], lambda d: hits.append("recruit:" + d.doc_id))

    mgr.post(["gossip"], recruiter)
    # The new query must not fire for the document that created it.
    assert mgr.on_new_document(Document("d1", ""), _terms("gossip")) == 1
    assert hits == ["recruiter:d1"]
    # ...but it is live for the next one (and the recruiter spawns more).
    assert mgr.on_new_document(Document("d2", ""), _terms("gossip")) == 2
    assert "recruit:d2" in hits


def test_callback_cancelling_itself_is_safe():
    mgr = PersistentQueryManager()
    hits: list[str] = []

    def one_shot(doc: Document) -> None:
        hits.append(doc.doc_id)
        mgr.cancel(query.query_id)

    query = mgr.post(["gossip"], one_shot)
    assert mgr.on_new_document(Document("d1", ""), _terms("gossip")) == 1
    assert mgr.on_new_document(Document("d2", ""), _terms("gossip")) == 0
    assert hits == ["d1"]
    assert len(mgr) == 0


def test_cancel_unknown_and_empty_terms_raise():
    mgr = PersistentQueryManager()
    with pytest.raises(KeyError):
        mgr.cancel(42)
    with pytest.raises(ValueError):
        mgr.post([], lambda doc: None)
