"""Persistent queries across a real kill -9 (the ISSUE 6 acceptance run).

A serving node runs as a ``python -m repro.net`` subprocess with a
``--data-dir``; an in-test peer joins it over real TCP and publishes, an
in-test :class:`SubscriptionClient` posts a standing query at the server
and receives the upcall.  The server is then SIGKILLed mid-flight and
restarted on the same port and data dir: the subscription (and its
delivered set) must come back from the ``PPSUB001`` checkpoint, and a
document published on the *other* peer while serving resumes must reach
the very same client — with no duplicate delivery of the pre-crash
document.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.net.node import NetworkPeer
from repro.obs import Registry
from repro.serve import SubscriptionClient
from repro.text.document import Document

import pytest

pytestmark = pytest.mark.recovery


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class _Lines:
    """Collects a process's stdout lines from a reader thread."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.lines: list[str] = []
        self._thread = threading.Thread(
            target=self._drain, args=(proc,), daemon=True
        )
        self._thread.start()

    def _drain(self, proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def await_match(self, substr: str, deadline_s: float = 30.0) -> str:
        end = time.monotonic() + deadline_s
        while time.monotonic() < end:
            for line in list(self.lines):
                if substr in line:
                    return line
            time.sleep(0.05)
        raise AssertionError(
            f"never saw {substr!r} in output; got: {self.lines}"
        )


def _spawn_server(port: int, data_dir: Path) -> tuple[subprocess.Popen, _Lines]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.net",
            "--peer-id", "0", "--port", str(port),
            "--data-dir", str(data_dir),
            "--gossip-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    return proc, _Lines(proc)


async def _publish_and_await_upcall(
    publisher: NetworkPeer,
    doc: Document,
    events: list,
    want: int,
    deadline_s: float = 30.0,
) -> None:
    """Publish on ``publisher`` and gossip until ``events`` reaches
    ``want`` entries (the server's worker notifies asynchronously)."""
    publisher.publish(doc)
    end = time.monotonic() + deadline_s
    while len(events) < want and time.monotonic() < end:
        try:
            await publisher.gossip_round()
        except ConnectionError:
            pass  # the server may still be coming up
        await asyncio.sleep(0.1)
    assert len(events) >= want, (
        f"expected {want} upcalls within {deadline_s}s, got "
        f"{[e.doc_id for e in events]}"
    )


def test_persistent_query_survives_server_sigkill(tmp_path):
    port = _free_port()
    server_addr = f"127.0.0.1:{port}"
    data_dir = tmp_path / "state"
    procs: list[subprocess.Popen] = []

    async def scenario():
        proc, lines = _spawn_server(port, data_dir)
        procs.append(proc)
        lines.await_match("serving at")

        peer = NetworkPeer(1, "127.0.0.1", 0, registry=Registry())
        client = SubscriptionClient(registry=Registry())
        events = []
        try:
            await peer.start()
            await peer.join(server_addr)
            await client.start()
            sub_id = await client.subscribe(server_addr, "gossip", events.append)

            # Publish on the OTHER peer: gossip carries it to the server,
            # whose probe pushes the upcall back to the client.
            await _publish_and_await_upcall(
                peer, Document("d1", "gossip spreads rumors epidemically"),
                events, want=1,
            )
            assert events[0].sub_id == sub_id
            assert events[0].origin == 1
            await asyncio.sleep(0.3)  # let the post-notify checkpoint land

            os.kill(proc.pid, signal.SIGKILL)  # no shutdown, no checkpoint
            proc.wait(timeout=10)

            proc2, lines2 = _spawn_server(port, data_dir)
            procs.append(proc2)
            lines2.await_match("serving at")
            # The community heals: the surviving peer re-introduces
            # itself, then publishes fresh content.
            await peer.join(server_addr)
            await _publish_and_await_upcall(
                peer, Document("d2", "gossip resumes after the crash"),
                events, want=2,
            )
            delivered = [e.doc_id for e in events]
            assert delivered.count("d1") == 1, f"d1 re-delivered: {delivered}"
            assert "d2" in delivered
            assert all(e.sub_id == sub_id for e in events)

            proc2.terminate()
            proc2.wait(timeout=10)
        finally:
            await peer.stop()
            await client.close()

    try:
        asyncio.run(scenario())
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
