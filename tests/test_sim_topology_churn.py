"""Tests for topologies, churn schedules, and measurement plumbing."""

import numpy as np
import pytest

from repro.constants import LINK_DSL, LINK_LAN, LINK_MODEM, MIX_DISTRIBUTION
from repro.sim.churn import ChurnModel, OnOffSchedule
from repro.sim.metrics import BandwidthSeries, ConvergenceTracker
from repro.sim.topology import dsl_topology, lan_topology, make_topology, mix_topology
from repro.utils.rng import make_rng


class TestTopologies:
    def test_lan_and_dsl_uniform(self):
        assert (lan_topology(10) == LINK_LAN).all()
        assert (dsl_topology(10) == LINK_DSL).all()

    def test_mix_fractions(self):
        speeds = mix_topology(1000, make_rng(0))
        for fraction, speed in MIX_DISTRIBUTION:
            count = int((speeds == speed).sum())
            assert count == pytest.approx(fraction * 1000, abs=2)

    def test_mix_sums_to_n(self):
        for n in (7, 100, 333):
            assert mix_topology(n, make_rng(1)).size == n

    def test_make_topology_dispatch(self):
        assert (make_topology("LAN", 5) == LINK_LAN).all()
        with pytest.raises(KeyError):
            make_topology("satellite", 5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            lan_topology(0)

    def test_modem(self):
        assert (make_topology("modem", 3) == LINK_MODEM).all()


class TestChurn:
    def test_always_on_peers_never_transition(self):
        model = ChurnModel(100, always_on_fraction=0.4, seed=0)
        schedules = model.generate(3600.0)
        n_always = model.always_on_count()
        assert n_always == 40
        for sched in schedules[:n_always]:
            assert sched.initially_online
            assert sched.transitions == ()

    def test_churners_transition(self):
        model = ChurnModel(
            100, always_on_fraction=0.0, mean_online_s=100, mean_offline_s=100, seed=1
        )
        schedules = model.generate(10_000.0)
        assert any(s.transitions for s in schedules)
        for sched in schedules:
            assert all(0 < t < 10_000 for t in sched.transitions)
            assert list(sched.transitions) == sorted(sched.transitions)

    def test_state_at(self):
        sched = OnOffSchedule(0, True, (10.0, 20.0))
        assert sched.state_at(5.0)
        assert not sched.state_at(15.0)
        assert sched.state_at(25.0)

    def test_stationary_online_fraction(self):
        model = ChurnModel(
            2000, always_on_fraction=0.0, mean_online_s=3600, mean_offline_s=8400, seed=2
        )
        schedules = model.generate(100.0)
        online = sum(1 for s in schedules if s.initially_online)
        assert online / 2000 == pytest.approx(3600 / 12000, abs=0.04)

    def test_new_keys_probability(self):
        model = ChurnModel(10, new_keys_prob=0.5, seed=3)
        draws = [model.rejoin_has_new_keys() for _ in range(2000)]
        assert sum(draws) / 2000 == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(0)
        with pytest.raises(ValueError):
            ChurnModel(10, always_on_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnModel(10, mean_online_s=0)
        with pytest.raises(ValueError):
            ChurnModel(10).generate(0.0)


class TestBandwidthSeries:
    def test_bucketing(self):
        series = BandwidthSeries(bucket_s=10.0)
        series.record(5.0, 100)
        series.record(9.0, 100)
        series.record(15.0, 50)
        times, rates = series.series()
        assert times.tolist() == [0.0, 10.0]
        assert rates.tolist() == [20.0, 5.0]

    def test_gaps_filled_with_zero(self):
        series = BandwidthSeries(bucket_s=1.0)
        series.record(0.5, 10)
        series.record(3.5, 10)
        _, rates = series.series()
        assert rates.tolist() == [10.0, 0.0, 0.0, 10.0]

    def test_totals_and_peak(self):
        series = BandwidthSeries(bucket_s=1.0)
        series.record(0.0, 30)
        series.record(1.0, 70)
        assert series.total_bytes() == 100
        assert series.peak_rate() == 70.0

    def test_empty(self):
        series = BandwidthSeries()
        times, rates = series.series()
        assert times.size == 0 and rates.size == 0
        assert series.peak_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthSeries(0)
        with pytest.raises(ValueError):
            BandwidthSeries(1.0).record(-1.0, 5)

    def test_negative_bytes_rejected(self):
        series = BandwidthSeries(1.0)
        with pytest.raises(ValueError, match="nbytes"):
            series.record(1.0, -5)
        assert series.total_bytes() == 0  # the bad record left no trace

    def test_registry_mirroring(self):
        from repro.obs import Registry

        registry = Registry()
        series = BandwidthSeries(1.0, registry=registry)
        series.record(0.5, 100)
        series.record(1.5, 50)
        assert registry.value("sim", "bytes_total") == 150.0
        assert registry.value("sim", "transfers_total") == 2.0
        # The in-series bucketing is unchanged by the mirroring.
        assert series.total_bytes() == 150

    def test_network_passes_registry_through(self):
        from repro.obs import Registry
        from repro.sim.engine import Simulator
        from repro.sim.network import Network

        registry = Registry()
        sim = Simulator()
        net = Network(sim, np.array([1000.0, 1000.0]), registry=registry)
        net.send(0, 1, 500)
        sim.run(until=10.0)
        assert registry.value("sim", "bytes_total") == 500.0
        assert registry.value("sim", "transfers_total") == 1.0


class TestConvergenceTracker:
    def test_simple_convergence(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10, 11})
        tracker.peer_learned(1, 10, 5.0)
        assert not tracker.all_converged()
        tracker.peer_learned(1, 11, 8.0)
        assert tracker.all_converged()
        assert tracker.convergence_times() == {1: 8.0}

    def test_offline_unblocks(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10, 11})
        tracker.peer_learned(1, 10, 2.0)
        tracker.peer_offline(11, 3.0)
        assert tracker.convergence_times() == {1: 3.0}

    def test_online_reblocks_unconverged(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10, 11})
        tracker.peer_online(12, knows=lambda rid: False)
        tracker.peer_learned(1, 10, 1.0)
        tracker.peer_learned(1, 11, 2.0)
        assert not tracker.all_converged()  # 12 still doesn't know
        tracker.peer_learned(1, 12, 4.0)
        assert tracker.convergence_times()[1] == 4.0

    def test_online_knower_does_not_block(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10})
        tracker.peer_online(12, knows=lambda rid: True)
        tracker.peer_learned(1, 10, 1.0)
        assert tracker.all_converged()

    def test_required_predicate(self):
        tracker = ConvergenceTracker(required=lambda pid: pid < 5)
        tracker.register(1, 0.0, {3, 7})
        # Peer 7 is outside the required class.
        tracker.peer_learned(1, 3, 2.0)
        assert tracker.convergence_times() == {1: 2.0}

    def test_empty_required_converges_at_creation(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 5.0, set())
        assert tracker.convergence_times() == {1: 0.0}

    def test_duplicate_registration_rejected(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {1})
        import pytest as _pytest

        with _pytest.raises(ValueError):
            tracker.register(1, 0.0, {1})

    def test_learned_many(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10})
        tracker.register(2, 0.0, {10})
        tracker.peer_learned_many(10, {1, 2, 99}, 3.0)
        assert tracker.convergence_times() == {1: 3.0, 2: 3.0}

    def test_unconverged_listing_and_labels(self):
        tracker = ConvergenceTracker()
        tracker.register(1, 0.0, {10}, label="join")
        assert tracker.unconverged() == [1]
        assert tracker.labels() == {1: "join"}
        assert len(tracker) == 1
