"""Behavioural tests for the gossip protocol (GossipPeer + simulation).

These exercise the full message exchange paths on small communities with
short intervals, asserting the paper's protocol properties: rumors reach
everyone, give-up counters retire rumors, partial anti-entropy fills
gaps, anti-entropy reconciles rejoiners, and intervals adapt.
"""

import numpy as np
import pytest

from repro.constants import GossipConfig
from repro.gossip.simulation import (
    GossipSimulation,
    run_churn,
    run_join,
    run_poisson_joins,
    run_propagation,
)
from repro.sim.metrics import ConvergenceTracker
from repro.sim.topology import lan_topology


def _world(n, config=None, seed=0):
    cfg = config or GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
    world = GossipSimulation(lan_topology(n), cfg, seed=seed)
    tracker = ConvergenceTracker()
    world.trackers.append(tracker)
    world.establish(range(n))
    return world, tracker


class TestRumorSpreading:
    def test_single_rumor_reaches_everyone(self):
        world, tracker = _world(20)
        rumor = world.peers[0].originate_update(1000)
        world.tracked_register(rumor.rid, 0)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()
        for peer in world.peers:
            assert peer.directory.knows(rumor.rid)

    def test_multiple_concurrent_rumors(self):
        world, tracker = _world(15)
        rumors = [world.peers[i].originate_update(100) for i in range(5)]
        for i, rumor in enumerate(rumors):
            world.tracked_register(rumor.rid, i)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()

    def test_rumors_eventually_retire(self):
        world, tracker = _world(10)
        rumor = world.peers[0].originate_update(100)
        world.tracked_register(rumor.rid, 0)
        world.sim.run(until=600.0)
        # Long after convergence no peer is still actively spreading it.
        assert all(rumor.rid not in p.hot for p in world.peers)

    def test_interval_resets_on_rumor_traffic(self):
        world, _ = _world(10)
        # Let the community go quiet: intervals grow.
        world.sim.run(until=120.0)
        slowed = [p.intervals.interval for p in world.peers]
        assert max(slowed) > 2.0
        rumor = world.peers[0].originate_update(100)
        tracker = ConvergenceTracker()
        world.trackers.append(tracker)
        world.tracked_register(rumor.rid, 0)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        # Peers that took part in spreading snapped back to base at some
        # point; after convergence they may have re-slowed, so check the
        # rumor actually converged quickly instead.
        times = tracker.convergence_times()
        assert times[rumor.rid] < 120.0

    def test_volume_scales_with_payload_not_community(self):
        """PlanetP's claim: message sizes track the change being spread."""
        small = run_propagation(40, "lan", GossipConfig(base_interval_s=2.0,
                                                        max_interval_s=4.0),
                                payload_keys=1000, seed=1)
        large = run_propagation(80, "lan", GossipConfig(base_interval_s=2.0,
                                                        max_interval_s=4.0),
                                payload_keys=1000, seed=1)
        # Twice the community should cost roughly twice the bytes — not
        # four times (which per-message-summary scaling would give).
        assert large.total_bytes < 3.5 * small.total_bytes


class TestAntiEntropy:
    def test_ae_only_baseline_converges_but_costs_more(self):
        fast_cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        ae_cfg = GossipConfig(
            base_interval_s=2.0, max_interval_s=4.0, anti_entropy_only=True
        )
        planetp = run_propagation(40, "lan", fast_cfg, seed=2)
        ae_only = run_propagation(40, "lan", ae_cfg, seed=2)
        assert planetp.converged and ae_only.converged
        assert ae_only.total_bytes > 3 * planetp.total_bytes

    def test_rejoiner_catches_up_via_ae(self):
        world, tracker = _world(10)
        # Take peer 9 offline, spread a rumor, bring it back.
        world.peers[9].go_offline()
        rumor = world.peers[0].originate_update(500)
        world.tracked_register(rumor.rid, 0)
        world.sim.run(until=120.0)
        assert not world.peers[9].directory.knows(rumor.rid)
        world.peers[9].rejoin()
        world.sim.run(until=400.0)
        assert world.peers[9].directory.knows(rumor.rid)

    def test_long_offline_peer_uses_full_summary(self):
        """A peer that missed more rumors than the recent window holds
        still reconciles (the full-summary fallback)."""
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0, ae_recent_window=3)
        world = GossipSimulation(lan_topology(8), cfg, seed=3)
        world.establish(range(8))
        world.peers[7].go_offline()
        rumors = []
        for i in range(10):  # far more than the window of 3
            world.sim.schedule(float(i * 5), lambda i=i: rumors.append(
                world.peers[i % 7].originate_update(50)
            ))
        world.sim.run(until=120.0)
        world.peers[7].rejoin()
        world.sim.run(until=400.0)
        for rumor in rumors:
            assert world.peers[7].directory.knows(rumor.rid)


class TestFailureHandling:
    def test_failed_contact_marks_offline(self):
        world, _ = _world(5)
        world.peers[3].go_offline()
        world.sim.run(until=120.0)
        # Someone must have tried to contact peer 3 by now.
        marked = sum(
            1 for p in world.peers if p.pid != 3 and not p.directory.believes_online[3]
        )
        assert marked > 0

    def test_rejoin_rumor_restores_online_belief(self):
        world, tracker = _world(6)
        world.peers[5].go_offline()
        world.sim.run(until=120.0)
        rumor = world.peers[5].rejoin()
        world.tracked_register(rumor.rid, 5)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()
        for peer in world.peers:
            if peer.pid != 5:
                assert peer.directory.believes_online[5]


class TestJoinScenario:
    def test_join_reaches_consistency(self):
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        result = run_join(20, 5, "lan", cfg, keys_per_peer=1000, seed=4)
        assert result.converged
        assert result.consistency_time_s > 0

    def test_joiners_know_each_other(self):
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        world = GossipSimulation(lan_topology(12), cfg, seed=5)
        tracker = ConvergenceTracker()
        world.trackers.append(tracker)
        world.establish(range(10))
        rumor_a = world.peers[10].begin_join(0)
        rumor_b = world.peers[11].begin_join(1)
        world.tracked_register(rumor_a.rid, 10)
        world.tracked_register(rumor_b.rid, 11)
        world.sim.run(until=600.0, stop_when=tracker.all_converged)
        assert tracker.all_converged()
        assert world.peers[10].directory.knows(rumor_b.rid)
        assert world.peers[11].directory.knows(rumor_a.rid)


class TestScenarioRunners:
    def test_run_propagation_deterministic(self):
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        a = run_propagation(30, "lan", cfg, seed=6)
        b = run_propagation(30, "lan", cfg, seed=6)
        assert a.propagation_time_s == b.propagation_time_s
        assert a.total_bytes == b.total_bytes

    def test_run_poisson_joins_tracks_every_event(self):
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        result = run_poisson_joins(
            n_established=20, n_events=5, mean_interarrival_s=10.0,
            topology="lan", config=cfg, seed=7,
        )
        assert len(result.events) == 5
        assert all(e.convergence_s is not None for e in result.events)

    def test_run_churn_produces_events_and_bandwidth(self):
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        result = run_churn(
            n_members=30, horizon_s=1800.0, topology="lan", config=cfg,
            mean_online_s=300.0, mean_offline_s=300.0, seed=8,
            settle_time_s=600.0,
        )
        assert len(result.events) > 0
        assert result.total_bytes > 0
        joins = result.convergence_samples(label="join")
        rejoins = result.convergence_samples(label="rejoin")
        assert len(joins) + len(rejoins) <= len(result.events)

    def test_propagation_time_grows_slowly(self):
        """Log-like scaling: 4x community, far less than 4x time."""
        cfg = GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
        small = run_propagation(25, "lan", cfg, seed=9)
        large = run_propagation(100, "lan", cfg, seed=9)
        assert large.propagation_time_s < 2.5 * small.propagation_time_s
