"""The 500-node fleet: the paper's community size, on real sockets.

Too heavy for the tier-1 lane (500 interpreter startups on shared CI
hardware), so it runs in its own CI job gated on ``PLANETP_FLEET_SCALE=1``
— see the ``fleet`` job in ``.github/workflows/ci.yml``.  Reproduce any
failure locally with::

    PLANETP_FLEET_SCALE=1 PYTHONPATH=src python -m pytest tests/test_fleet_scale.py

or, for the same scenario under manual control::

    PYTHONPATH=src python scripts/fleet.py --nodes 500 --seed 7 \
        --gossip-interval 2.5 --slack 180 [--partial-view]

The module fixture runs the scenario twice — once flat (the default,
fully replicated directory) and once in ``--partial-view`` mode (sharded
directory, sublinear per-node filter memory) — so the CI scale job gates
both modes with the same invariants.

Scale-vs-small spec differences, all about sharing one host among 500
processes: a longer gossip interval (2.5 s — still 12x compressed vs.
the paper's 30 s) so the scheduler isn't saturated by gossip wakeups,
larger launch batches, and generous ready/slack allowances because
~0.5 s of interpreter+import CPU per node serializes on small CI
machines.  The recall bar is the ISSUE's "within 2 points of the
oracle" for the flat directory; partial view trades a few points for
sublinear memory, so its bar is 0.95 ("within a few points") per the
ROADMAP's BENCH target.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import replace

import pytest

from repro.fleet import FleetReport, FleetSpec, run_scenario

pytestmark = [
    pytest.mark.fleet,
    pytest.mark.slow,
    pytest.mark.timeout(7200),
    pytest.mark.skipif(
        not os.environ.get("PLANETP_FLEET_SCALE"),
        reason="500-node fleet: set PLANETP_FLEET_SCALE=1 to run",
    ),
]

SPEC = FleetSpec(
    num_nodes=500,
    seed=7,
    gossip_interval_s=2.5,
    bloom_bits=65536,
    docs_per_node=3,
    vocab_size=400,
    num_queries=6,
    num_waves=2,
    docs_per_wave=5,
    num_crashes=3,
    replicas=3,
    analytics=True,
    launch_batch=24,
    ready_timeout_s=240.0,
    convergence_slack_s=180.0,
    scrape_concurrency=64,
)
MIN_RECALL = {False: 0.98, True: 0.95}


def recall_bar(report: FleetReport) -> float:
    return MIN_RECALL[report.partial_view]


@pytest.fixture(scope="module", params=["flat", "partialview"])
def report(request, tmp_path_factory) -> FleetReport:
    spec = replace(SPEC, partial_view=(request.param == "partialview"))
    root = tmp_path_factory.mktemp(f"fleet500-{request.param}")
    try:
        return run_scenario(spec, root=root, log_dir=root / "logs", progress=print)
    finally:
        shutil.rmtree(root / "corpus", ignore_errors=True)
        shutil.rmtree(root / "data", ignore_errors=True)


def test_scale_run_meets_every_acceptance_criterion(report):
    assert report.violations(min_recall=recall_bar(report)) == []


def test_scale_convergence_within_fig2_bound(report):
    assert report.num_nodes == 500
    assert report.convergence_s <= report.convergence_bound_s


def test_scale_recall_within_bound_of_oracle(report):
    assert report.recall >= recall_bar(report)
    assert report.recall_after_recovery >= recall_bar(report)


def test_scale_zero_stale_serves(report):
    assert report.stale_serves == 0


def test_scale_retrieval_survives_churn(report):
    # The content plane at paper scale: every wave doc fetched
    # byte-identical, crashed origins' docs served by replicas, and no
    # chunk bytes stranded once handoff settles.
    assert report.content_replicas == SPEC.replicas
    assert report.content_fetches_ok == report.content_fetches_expected
    assert report.churn_fetches_ok
    assert report.orphan_chunk_bytes_max == 0.0


def test_scale_partialview_memory_is_sublinear(report):
    if not report.partial_view:
        pytest.skip("flat mode replicates the full directory by design")
    # A flat node pins one full filter per member; the sharded view must
    # pin well under half of that (home shard + sample + summaries).
    flat_bytes = report.num_nodes * (SPEC.bloom_bits // 8)
    assert 0.0 < report.directory_filter_bytes_per_node < 0.5 * flat_bytes


def test_scale_analytics_topk_tracks_the_oracle(report):
    # 500 gossiped space-saving sketches must converge every node to the
    # oracle's exact top-k within the same Fig.-2 bound as the directory.
    assert report.analytics
    assert report.analytics_precision_min >= 0.9
    assert report.analytics_convergence_s <= report.convergence_bound_s


def test_scale_full_cleanup(report):
    assert report.leaked_processes == 0
    assert report.leaked_ports == 0
