"""Directory checkpoint serialization and damage tolerance."""

from __future__ import annotations

from repro.store import (
    CheckpointEntry,
    DirectoryCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.store.checkpoint import CHECKPOINT_MAGIC
from repro.store.snapshot import encode_container


def _checkpoint() -> DirectoryCheckpoint:
    return DirectoryCheckpoint(
        peer_id=7,
        written_at=1700000000.5,
        entries=(
            CheckpointEntry(1, "10.0.0.1:9301", True, 4, b"\x01\x02\x03"),
            CheckpointEntry(2, "10.0.0.2:9301", False, 0, b""),
        ),
        known_rids=(1 << 32, (1 << 32) | 1, 2 << 32),
        next_rid_seq=17,
    )


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "directory.ckpt"
    nbytes = save_checkpoint(path, _checkpoint())
    assert nbytes == path.stat().st_size > 0
    assert load_checkpoint(path) == _checkpoint()


def test_missing_file_is_none(tmp_path):
    assert load_checkpoint(tmp_path / "nope.ckpt") is None


def test_torn_or_corrupt_file_is_none(tmp_path):
    path = tmp_path / "directory.ckpt"
    save_checkpoint(path, _checkpoint())
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    assert load_checkpoint(path) is None
    blob = bytearray(data)
    blob[-2] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert load_checkpoint(path) is None


def test_pre_rid_seq_checkpoints_still_load(tmp_path):
    # Files written before next_seq existed must load with the default.
    payload = {
        "peer_id": 3,
        "written_at": 1.0,
        "entries": [],
        "rids": [5],
    }
    path = tmp_path / "directory.ckpt"
    path.write_bytes(encode_container(CHECKPOINT_MAGIC, payload))
    ckpt = load_checkpoint(path)
    assert ckpt is not None
    assert ckpt.known_rids == (5,)
    assert ckpt.next_rid_seq == 0


def test_atomic_rewrite_replaces_previous_generation(tmp_path):
    path = tmp_path / "directory.ckpt"
    save_checkpoint(path, _checkpoint())
    newer = DirectoryCheckpoint(7, 1700000555.0, (), (), 99)
    save_checkpoint(path, newer)
    assert load_checkpoint(path) == newer
    assert not path.with_name(path.name + ".tmp").exists()
