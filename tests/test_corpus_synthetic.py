"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.corpus.synthetic import (
    SyntheticCollection,
    generate_collection,
    make_vocabulary,
)
from repro.text.tokenizer import tokenize
from repro.utils.rng import make_rng


class TestVocabulary:
    def test_size_and_uniqueness(self):
        words = make_vocabulary(500, make_rng(0))
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_words_survive_tokenization(self):
        # The generator's contract: vocabulary words pass the tokenizer
        # unchanged, so document terms and query terms coincide.
        words = make_vocabulary(200, make_rng(1))
        for w in words:
            assert tokenize(w) == [w]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_vocabulary(0, make_rng(0))


class TestGeneration:
    @pytest.fixture(scope="class")
    def coll(self) -> SyntheticCollection:
        return generate_collection(
            "test", num_documents=300, vocabulary_size=2000, num_queries=25, seed=7
        )

    def test_counts(self, coll):
        assert coll.num_documents == 300
        assert coll.num_queries == 25
        assert len(coll.doc_topics) == 300

    def test_documents_nonempty(self, coll):
        assert all(d.text for d in coll.documents)
        assert len({d.doc_id for d in coll.documents}) == 300

    def test_relevance_judgments_consistent(self, coll):
        """A query's relevant set is exactly the documents of its topic."""
        doc_ids = {d.doc_id for d in coll.documents}
        for q in coll.queries:
            assert q.relevant  # every query has at least one relevant doc
            assert q.relevant <= doc_ids

    def test_queries_discriminative(self, coll):
        """Query terms should actually appear in relevant documents far
        more often than chance: at least half the relevant docs contain
        at least one query term."""
        by_id = {d.doc_id: d for d in coll.documents}
        for q in coll.queries[:10]:
            hits = sum(
                1
                for doc_id in q.relevant
                if any(t in by_id[doc_id].text.split() for t in q.terms)
            )
            assert hits >= len(q.relevant) / 2

    def test_deterministic(self):
        a = generate_collection("x", 50, 500, 5, seed=3)
        b = generate_collection("x", 50, 500, 5, seed=3)
        assert [d.text for d in a.documents] == [d.text for d in b.documents]
        assert [q.terms for q in a.queries] == [q.terms for q in b.queries]

    def test_seed_changes_output(self):
        a = generate_collection("x", 50, 500, 5, seed=3)
        b = generate_collection("x", 50, 500, 5, seed=4)
        assert [d.text for d in a.documents] != [d.text for d in b.documents]

    def test_size_accounting(self, coll):
        assert coll.total_text_bytes() == sum(len(d.text) for d in coll.documents)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_collection("x", 0, 100, 5)
        with pytest.raises(ValueError):
            generate_collection("x", 10, 100, 5, topic_mix=1.5)
        with pytest.raises(ValueError):
            generate_collection("x", 10, 100, 5, query_terms=(3, 2))

    def test_zipf_term_distribution(self, coll):
        """Term frequencies should be heavy-tailed (Zipf-ish): the top 1%
        of terms covers a large share of tokens."""
        from collections import Counter

        counts = Counter(t for d in coll.documents for t in d.text.split())
        freqs = np.array(sorted(counts.values(), reverse=True))
        top = freqs[: max(1, len(freqs) // 100)].sum()
        assert top / freqs.sum() > 0.10
