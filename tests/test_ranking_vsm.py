"""Tests for the vector-space weight functions (eqs. in Section 5.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking.vsm import (
    document_term_weight,
    inverse_document_frequency,
    inverse_peer_frequency,
    similarity_from_parts,
)


class TestIDF:
    def test_formula(self):
        assert inverse_document_frequency(100, 10) == pytest.approx(math.log(11))

    def test_rare_terms_weigh_more(self):
        assert inverse_document_frequency(1000, 1) > inverse_document_frequency(1000, 500)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            inverse_document_frequency(100, 0)


class TestIPF:
    def test_formula(self):
        # IPF_t = log(1 + N/N_t)
        assert inverse_peer_frequency(400, 40) == pytest.approx(math.log(11))

    def test_zero_peers_with_term_gives_zero(self):
        assert inverse_peer_frequency(400, 0) == 0.0

    def test_ubiquitous_term_weighs_least(self):
        # A term on every peer is least discriminating (but not zero:
        # log(2)).
        assert inverse_peer_frequency(100, 100) == pytest.approx(math.log(2))
        assert inverse_peer_frequency(100, 1) > inverse_peer_frequency(100, 100)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inverse_peer_frequency(-1, 0)


class TestDocWeight:
    def test_formula(self):
        assert document_term_weight(1) == pytest.approx(1.0)
        assert document_term_weight(10) == pytest.approx(1 + math.log(10))

    def test_absent_term_zero(self):
        assert document_term_weight(0) == 0.0

    def test_sublinear_in_tf(self):
        # Doubling tf should much-less-than-double the weight.
        assert document_term_weight(20) < 2 * document_term_weight(10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            document_term_weight(-1)


class TestSimilarity:
    def test_normalization(self):
        assert similarity_from_parts(10.0, 4) == pytest.approx(5.0)

    def test_empty_document(self):
        assert similarity_from_parts(0.0, 0) == 0.0

    def test_longer_documents_penalized(self):
        assert similarity_from_parts(10.0, 100) < similarity_from_parts(10.0, 10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            similarity_from_parts(1.0, -1)


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_property_ipf_monotone_in_rarity(n, nt):
    """Fewer peers holding a term => higher IPF (for fixed N)."""
    nt = min(nt, n)
    ipf = inverse_peer_frequency(n, nt)
    if nt > 1:
        assert inverse_peer_frequency(n, nt - 1) > ipf
    assert ipf > 0
