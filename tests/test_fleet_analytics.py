"""A 25-node fleet with the analytics plane on, in the tier-1 lane.

Every node runs ``--analytics``: each gossip round piggybacks one
push-pull sketch exchange, so every member converges to the same
community-wide top-k frequent-term estimate.  The module fixture runs
one scenario and the tests assert the ISSUE's analytics acceptance bar
against its report: every node's top-10 estimate reaches >= 0.9
precision vs. the central oracle within the Fig.-2 propagation bound,
at a per-round byte cost far below the gossip plane's own.
"""

from __future__ import annotations

import shutil

import pytest

from repro.fleet import FleetReport, FleetSpec, run_scenario

pytestmark = [
    pytest.mark.fleet,
    pytest.mark.analytics,
    pytest.mark.slow,
    pytest.mark.timeout(300),
]

SPEC = FleetSpec(num_nodes=25, seed=11, analytics=True, num_crashes=0)
MIN_RECALL = 0.95


@pytest.fixture(scope="module")
def report(tmp_path_factory) -> FleetReport:
    root = tmp_path_factory.mktemp("fleet25-analytics")
    try:
        return run_scenario(SPEC, root=root, log_dir=root / "logs")
    finally:
        shutil.rmtree(root / "corpus", ignore_errors=True)
        shutil.rmtree(root / "data", ignore_errors=True)


def test_no_acceptance_violations(report):
    assert report.violations(min_recall=MIN_RECALL) == []


def test_every_node_converges_to_the_oracle_topk(report):
    # The headline analytics gate: the *worst* node's top-10 estimate
    # must cover >= 90% of the exact oracle's top-10, and reach it
    # within the same Fig.-2 bound the directory converges under.
    assert report.analytics
    assert report.analytics_precision_min >= 0.9
    assert 0.0 <= report.analytics_convergence_s <= report.convergence_bound_s


def test_sketch_traffic_stays_bounded(report):
    # One sketch exchange per round: entries for 25 origins of a ~120
    # term vocabulary must cost well under the gossip plane's own
    # per-round budget, and a converged community goes digest-only.
    assert 0.0 < report.analytics_bytes_per_round < 16384


def test_analytics_does_not_degrade_search(report):
    assert report.recall >= MIN_RECALL
    assert report.stale_serves == 0


def test_every_process_and_port_was_reclaimed(report):
    assert report.leaked_processes == 0
    assert report.leaked_ports == 0
