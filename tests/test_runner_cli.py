"""Tests for the experiment CLI (argument handling + fast commands)."""

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "30 s" in out

    def test_table1_fast_runs(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "bloom_insert" in out and "no. keys" in out

    def test_table3_fast_runs(self, capsys):
        assert main(["table3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "AP89" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
