"""ContentClient behaviour: resolve hops, resume, fallback, verification.

The servers are real :class:`~repro.net.node.NetworkPeer` content planes
on the loopback fabric; the client is the same directory-less
:class:`~repro.content.ContentClient` the ``python -m repro.net get``
subcommand uses, pointed at loopback addresses.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constants import ContentConfig
from repro.content import ContentClient, ContentNotFound
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = pytest.mark.content

DOC_TEXT = "resumable chunked retrieval with replica fallback " * 30
DOC_BYTES = DOC_TEXT.encode("utf-8")


class Fixture:
    def __init__(self, n: int, config: ContentConfig, seed: int = 0) -> None:
        self.net = LoopbackNetwork(seed=seed)
        self.nodes = {
            pid: NetworkPeer(
                pid,
                "peer",
                pid,
                transport=self.net.transport(),
                seed=pid,
                registry=Registry(),
                content_config=config,
            )
            for pid in range(n)
        }
        self.registry = Registry()
        self.client = ContentClient(
            self.net.transport(), request_timeout_s=2.0, registry=self.registry
        )

    async def boot(self) -> None:
        for node in self.nodes.values():
            await node.start()
        for pid in range(1, len(self.nodes)):
            await self.nodes[pid].join(self.nodes[0].address)
        for _ in range(100):
            if all(
                node.members() == sorted(self.nodes) for node in self.nodes.values()
            ):
                break
            for node in self.nodes.values():
                await node.gossip_round()

    async def replicate(self, origin: int, doc_id: str) -> None:
        self.nodes[origin].publish(Document(doc_id, DOC_TEXT))
        for _ in range(5):
            await self.nodes[origin].content.maintenance_round()

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()


def test_fetch_resumes_when_replies_are_windowed():
    """chunk_size 4x the reply cap: every chunk needs 4 resumed slices."""

    async def scenario():
        config = ContentConfig(replicas=1, chunk_size=256, max_reply_bytes=64)
        fx = Fixture(3, config)
        await fx.boot()
        await fx.replicate(0, "doc-r")
        data = await fx.client.fetch(["peer:0"], "doc-r")
        assert data == DOC_BYTES
        resumes = fx.registry.value("content_client", "chunk_resumes_total")
        assert resumes >= 3 * (len(DOC_BYTES) // 256)
        await fx.stop()

    asyncio.run(scenario())


def test_resolve_hops_through_advertised_holders():
    """Ask a member that holds nothing: its ManifestReply names the ring
    successors, and the fetch completes through the hop."""

    async def scenario():
        config = ContentConfig(replicas=1, chunk_size=256)
        fx = Fixture(4, config)
        await fx.boot()
        await fx.replicate(0, "doc-hop")
        holders = {
            pid
            for pid, node in fx.nodes.items()
            if node.content.store.is_complete("doc-hop")
        }
        empty = next(pid for pid in fx.nodes if pid not in holders)
        data = await fx.client.fetch([f"peer:{empty}"], "doc-hop")
        assert data == DOC_BYTES
        await fx.stop()

    asyncio.run(scenario())


def test_fetch_falls_back_to_surviving_replica():
    async def scenario():
        config = ContentConfig(replicas=2, chunk_size=128)
        fx = Fixture(4, config)
        await fx.boot()
        await fx.replicate(0, "doc-f")
        await fx.nodes[0].stop()  # the origin dies post-replication
        live = [f"peer:{pid}" for pid in (1, 2, 3)]
        data = await fx.client.fetch(["peer:0", *live], "doc-f")
        assert data == DOC_BYTES
        await fx.stop()

    asyncio.run(scenario())


def test_chunk_source_rotation_spreads_load():
    async def scenario():
        config = ContentConfig(replicas=2, chunk_size=64)
        fx = Fixture(4, config)
        await fx.boot()
        await fx.replicate(0, "doc-s")
        manifest = fx.nodes[0].content.store.get_manifest("doc-s")
        holders = [
            pid
            for pid, node in fx.nodes.items()
            if node.content.store.is_complete("doc-s")
        ]
        served_before = {
            pid: fx.nodes[pid].obs.value("content", "chunk_serves_total")
            for pid in holders
        }
        data = await fx.client.fetch([f"peer:{holders[0]}"], "doc-s")
        assert data == DOC_BYTES and manifest.num_chunks > len(holders)
        served = [
            fx.nodes[pid].obs.value("content", "chunk_serves_total")
            - served_before[pid]
            for pid in holders
        ]
        # Index-rotated source order: no single replica served everything.
        assert sum(served) >= manifest.num_chunks
        assert sum(1 for s in served if s > 0) >= 2
        await fx.stop()

    asyncio.run(scenario())


def test_corrupt_replica_is_rejected_and_routed_around():
    async def scenario():
        config = ContentConfig(replicas=2, chunk_size=256)
        fx = Fixture(4, config)
        await fx.boot()
        await fx.replicate(0, "doc-c")
        # Poison one replica's cached chunk 0 behind the CRC check (as a
        # bit-flip after verification would): it now serves bad bytes.
        holders = [
            pid
            for pid, node in fx.nodes.items()
            if pid != 0 and node.content.store.is_complete("doc-c")
        ]
        bad = fx.nodes[holders[0]].content.store
        bad._chunks["doc-c"][0] = b"\x00" * 256
        data = await fx.client.fetch([f"peer:{holders[0]}"], "doc-c")
        assert data == DOC_BYTES
        assert fx.registry.value("content_client", "crc_rejects_total") >= 1
        await fx.stop()

    asyncio.run(scenario())


def test_unknown_doc_exhausts_holders_with_typed_error():
    async def scenario():
        fx = Fixture(3, ContentConfig(replicas=1))
        await fx.boot()
        with pytest.raises(ContentNotFound, match="no reachable holder"):
            await fx.client.fetch(["peer:0", "peer:1"], "ghost-doc")
        with pytest.raises(ContentNotFound, match="no addresses"):
            await fx.client.fetch([], "ghost-doc")
        await fx.stop()

    asyncio.run(scenario())


def test_all_holders_dead_raises_not_hangs():
    async def scenario():
        fx = Fixture(2, ContentConfig(replicas=1))
        await fx.boot()
        await fx.replicate(0, "doc-d")
        await fx.nodes[0].stop()
        await fx.nodes[1].stop()
        with pytest.raises(ContentNotFound):
            await fx.client.fetch(["peer:0", "peer:1"], "doc-d")
        await fx.stop()

    asyncio.run(scenario())


def test_client_parameter_validation():
    net = LoopbackNetwork()
    with pytest.raises(ValueError, match="request_timeout_s"):
        ContentClient(net.transport(), request_timeout_s=0.0)
    with pytest.raises(ValueError, match="max_parallel_chunks"):
        ContentClient(net.transport(), max_parallel_chunks=0)
    with pytest.raises(ValueError, match="max_resolve_hops"):
        ContentClient(net.transport(), max_resolve_hops=0)
