"""Meta-test: every public module, class, and function is documented.

The deliverable includes doc comments on every public item; this test
keeps that true as the library evolves.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (meth.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
