"""Shared fixtures for the PlanetP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bloom.filter import BloomFilter
from repro.constants import GossipConfig
from repro.core.community import InProcessCommunity
from repro.text.analyzer import Analyzer
from repro.text.document import Document


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_filter() -> BloomFilter:
    """A small Bloom filter with a handful of known terms."""
    bf = BloomFilter(4096, 2)
    bf.add_many(["alpha", "beta", "gamma", "delta"])
    return bf


@pytest.fixture
def fast_gossip_config() -> GossipConfig:
    """A gossip config with short intervals for quick simulations."""
    return GossipConfig(base_interval_s=5.0, max_interval_s=10.0)


@pytest.fixture
def tiny_community() -> InProcessCommunity:
    """Five peers, six documents, no stemming surprises."""
    community = InProcessCommunity(num_peers=5)
    docs = [
        (0, "d-gossip", "gossip protocols spread information epidemically"),
        (0, "d-bloom", "bloom filters give compact set membership summaries"),
        (1, "d-rank", "vector space ranking orders documents by similarity"),
        (2, "d-chord", "chord routes lookups over consistent hashing rings"),
        (3, "d-mixed", "gossip and ranking combine in planetp communities"),
        (4, "d-trec", "benchmark collections provide relevance judgments"),
    ]
    for peer_id, doc_id, text in docs:
        community.publish(peer_id, Document(doc_id, text))
    return community


@pytest.fixture
def plain_analyzer() -> Analyzer:
    """Analyzer with stemming and stop words disabled."""
    return Analyzer(remove_stopwords=False, stem=False)
