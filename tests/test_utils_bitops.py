"""Unit and property tests for the numpy bit array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitops import BitArray


class TestBasics:
    def test_starts_empty(self):
        bits = BitArray(100)
        assert bits.count() == 0
        assert not bits.get(0)
        assert not bits.get(99)

    def test_set_get_clear(self):
        bits = BitArray(100)
        bits.set(7)
        assert bits.get(7)
        bits.clear(7)
        assert not bits.get(7)

    def test_boundary_bits(self):
        bits = BitArray(130)  # spans three words
        for idx in (0, 63, 64, 127, 128, 129):
            bits.set(idx)
            assert bits.get(idx)
        assert bits.count() == 6

    def test_out_of_range_raises(self):
        bits = BitArray(10)
        with pytest.raises(IndexError):
            bits.set(10)
        with pytest.raises(IndexError):
            bits.get(-1)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            BitArray(0)

    def test_len(self):
        assert len(BitArray(77)) == 77


class TestBulk:
    def test_set_many_and_get_many(self):
        bits = BitArray(1000)
        idx = np.array([1, 500, 999, 63, 64])
        bits.set_many(idx)
        assert bits.get_many(idx).all()
        assert not bits.get_many(np.array([2, 3])).any()

    def test_set_many_duplicates(self):
        bits = BitArray(64)
        bits.set_many(np.array([5, 5, 5]))
        assert bits.count() == 1

    def test_set_many_empty(self):
        bits = BitArray(64)
        bits.set_many(np.array([], dtype=np.int64))
        assert bits.count() == 0

    def test_set_many_out_of_range(self):
        bits = BitArray(64)
        with pytest.raises(IndexError):
            bits.set_many(np.array([64]))

    def test_set_bit_positions_roundtrip(self):
        bits = BitArray(500)
        idx = np.array([0, 63, 64, 100, 499])
        bits.set_many(idx)
        assert np.array_equal(bits.set_bit_positions(), np.sort(idx))


class TestAlgebra:
    def test_union(self):
        a, b = BitArray(128), BitArray(128)
        a.set(1)
        b.set(100)
        a.union_inplace(b)
        assert a.get(1) and a.get(100)
        assert b.count() == 1  # b untouched

    def test_intersection(self):
        a, b = BitArray(128), BitArray(128)
        a.set_many(np.array([1, 2, 3]))
        b.set_many(np.array([2, 3, 4]))
        a.intersection_inplace(b)
        assert np.array_equal(a.set_bit_positions(), np.array([2, 3]))

    def test_difference_words(self):
        a, b = BitArray(64), BitArray(64)
        a.set_many(np.array([1, 2]))
        b.set(1)
        diff = a.difference_words(b)
        only_in_a = BitArray(64, diff.copy())
        assert np.array_equal(only_in_a.set_bit_positions(), np.array([2]))

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitArray(64).union_inplace(BitArray(128))

    def test_equality_and_copy(self):
        a = BitArray(100)
        a.set(42)
        b = a.copy()
        assert a == b
        b.set(43)
        assert a != b

    def test_clear_all(self):
        a = BitArray(100)
        a.set_many(np.arange(50))
        a.clear_all()
        assert a.count() == 0


class TestSerialization:
    def test_bytes_roundtrip(self):
        a = BitArray(300)
        a.set_many(np.array([0, 64, 299]))
        b = BitArray.from_bytes(300, a.to_bytes())
        assert a == b


@given(st.sets(st.integers(min_value=0, max_value=999), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_positions_roundtrip(indices):
    """Whatever set of bits we set is exactly what we read back."""
    bits = BitArray(1000)
    if indices:
        bits.set_many(np.array(sorted(indices)))
    assert set(bits.set_bit_positions().tolist()) == indices
    assert bits.count() == len(indices)


@given(
    st.sets(st.integers(min_value=0, max_value=499), max_size=100),
    st.sets(st.integers(min_value=0, max_value=499), max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_property_union_is_set_union(a_idx, b_idx):
    """Bit union equals set union."""
    a, b = BitArray(500), BitArray(500)
    if a_idx:
        a.set_many(np.array(sorted(a_idx)))
    if b_idx:
        b.set_many(np.array(sorted(b_idx)))
    a.union_inplace(b)
    assert set(a.set_bit_positions().tolist()) == a_idx | b_idx
