"""Tests for the corpus realism knobs (incomplete judgments, distractor
terms) and their effect on measured search quality."""

import pytest

from repro.corpus.synthetic import generate_collection
from repro.experiments.search_quality import build_testbed, evaluate_k


class TestJudgmentRecall:
    def test_partial_judgments_shrink_relevant_sets(self):
        full = generate_collection("x", 200, 1500, 20, seed=6)
        partial = generate_collection("x", 200, 1500, 20, judgment_recall=0.5, seed=6)
        full_sizes = sum(len(q.relevant) for q in full.queries)
        partial_sizes = sum(len(q.relevant) for q in partial.queries)
        assert partial_sizes < full_sizes
        assert all(q.relevant for q in partial.queries)  # never empty

    def test_partial_judgments_lower_measured_precision(self):
        """With incomplete judgments, even a good ranker returns 'unjudged'
        documents — measured precision drops below 1.0, as with the real
        Smart/TREC numbers."""
        partial = generate_collection(
            "x", 300, 2000, 15, judgment_recall=0.4, seed=7
        )
        testbed = build_testbed(partial, num_peers=40, seed=7)
        point = evaluate_k(testbed, 20)
        assert point.precision_idf < 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_collection("x", 10, 100, 2, judgment_recall=0.0)
        with pytest.raises(ValueError):
            generate_collection("x", 10, 100, 2, judgment_recall=1.5)


class TestDistractors:
    def test_distractor_terms_come_from_other_topics(self):
        clean = generate_collection("x", 200, 1500, 30, seed=8)
        noisy = generate_collection("x", 200, 1500, 30, distractor_prob=1.0, seed=8)
        # Same generator stream up to query construction: the noisy run
        # must differ in at least some query term sets.
        clean_terms = [q.terms for q in clean.queries]
        noisy_terms = [q.terms for q in noisy.queries]
        assert clean_terms != noisy_terms

    def test_distractors_do_not_break_evaluation(self):
        noisy = generate_collection("x", 300, 2000, 15, distractor_prob=0.5, seed=9)
        testbed = build_testbed(noisy, num_peers=40, seed=9)
        point = evaluate_k(testbed, 20)
        assert 0.0 <= point.recall_ipf <= 1.0
        # IPF should still track IDF on blurred queries.
        assert point.recall_ipf >= point.recall_idf - 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_collection("x", 10, 100, 2, distractor_prob=-0.1)

    def test_defaults_unchanged(self):
        a = generate_collection("x", 100, 800, 10, seed=3)
        b = generate_collection(
            "x", 100, 800, 10, judgment_recall=1.0, distractor_prob=0.0, seed=3
        )
        assert [q.terms for q in a.queries] == [q.terms for q in b.queries]
        assert [q.relevant for q in a.queries] == [q.relevant for q in b.queries]
