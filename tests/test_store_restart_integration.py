"""Warm restart end to end: checkpointed rejoin, and kill -9 via the CLI.

The in-process scenarios run over the deterministic loopback fabric and
cover the acceptance criteria of ISSUE 5: a node restarted from its
``--data-dir`` recovers every acknowledged document and Bloom filter,
resumes gossiping from its checkpointed directory, and spends fewer
directory bytes rejoining than a cold join costs.  The subprocess
scenario does the same through ``python -m repro.net`` with a real
SIGKILL (this is the test CI's kill-and-restart step runs on its own).
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.constants import StoreConfig
from repro.net.node import RID_RESTART_GAP, NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.text.document import Document

pytestmark = pytest.mark.recovery

FAST_STORE = StoreConfig(fsync=False)


def _node(net: LoopbackNetwork, pid: int, port: int | None = None, **kwargs) -> NetworkPeer:
    kwargs.setdefault("registry", Registry())
    return NetworkPeer(
        pid, "peer", port if port is not None else pid,
        transport=net.transport(), seed=pid, **kwargs,
    )


async def _converge_on(b2: NetworkPeer, others: list[NetworkPeer], rounds: int = 12) -> bool:
    """Gossip until every other member sees ``b2`` online at its address."""
    for _ in range(rounds):
        await b2.gossip_round()
        for other in others:
            await other.gossip_round()
        views = [other.peer.directory.get(b2.peer_id) for other in others]
        if all(e is not None and e.address == b2.address and e.online for e in views):
            return True
    return False


def test_warm_restart_recovers_store_and_rejoins_gossip(tmp_path):
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        c = _node(net, 2)
        b = _node(net, 1, data_dir=tmp_path, store_config=FAST_STORE)
        for n in (a, c, b):
            await n.start()
        a.publish(Document("d-a", "gossip spreads rumors epidemically"))
        c.publish(Document("d-c", "ranking orders documents by similarity"))
        b.publish(Document("d-b", "bloom filters summarize term membership"))
        await b.join(a.address)
        await c.join(a.address)
        assert await _converge_on(b, [a, c])
        b_filter = b.peer.store.bloom_filter.copy()
        b.write_checkpoint()
        await b.transport.close()  # SIGKILL: no node.stop(), no store close

        b2 = _node(net, 1, port=101, data_dir=tmp_path, store_config=FAST_STORE)
        # Documents and filter recovered from WAL before any gossip.
        assert sorted(b2.peer.store.document_ids()) == ["d-b"]
        assert b2.peer.store.bloom_filter == b_filter
        assert b2.restored_members == 2
        # The checkpoint restored both replicas and the rumor digest.
        assert b2.replica_of(0) == a.peer.store.bloom_filter
        assert b2.replica_of(2) == c.peer.store.bloom_filter
        await b2.start()
        assert await _converge_on(b2, [a, c])
        assert a.peer.directory[1].address == b2.address
        assert a.replica_of(1) == b2.peer.store.bloom_filter
        for n in (a, c, b2):
            await n.stop()

    asyncio.run(scenario())


def test_restart_never_reuses_rumor_ids(tmp_path):
    """Regression: a restarted node must mint rids beyond its previous
    life's, or its REJOIN rumor is "already known" everywhere and can
    never spread (the directory would keep the dead address forever)."""

    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        b = _node(net, 1, data_dir=tmp_path, store_config=FAST_STORE)
        await a.start()
        await b.start()
        b.publish(Document("d", "some rumor minting material"))
        await b.join(a.address)
        for _ in range(3):
            await b.gossip_round()
            await a.gossip_round()
        old_known = set(b.known)
        b.write_checkpoint()
        await b.transport.close()

        b2 = _node(net, 1, port=101, data_dir=tmp_path, store_config=FAST_STORE)
        assert b2._rid_seq >= RID_RESTART_GAP
        await b2.start()  # mints the REJOIN rumor
        fresh = set(b2.known) - old_known
        assert fresh, "the REJOIN rumor collided with a previous-life rid"
        assert all(rid >> 32 == 1 for rid in fresh)
        assert await _converge_on(b2, [a])
        await a.stop()
        await b2.stop()

    asyncio.run(scenario())


def test_warm_rejoin_costs_fewer_directory_bytes_than_cold_join(tmp_path):
    """Measured from the restarted node's own transport counters: the
    background gossip the *other* members exchange while the news
    spreads is steady-state traffic, not a cost of joining."""

    def node_bytes(registry: Registry) -> int:
        return int(
            registry.value("transport", "bytes_sent_total")
            + registry.value("transport", "bytes_recv_total")
        )

    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        c = _node(net, 2)
        b = _node(net, 1, data_dir=tmp_path, store_config=FAST_STORE)
        for n in (a, c, b):
            await n.start()
        a.publish(Document("d-a", "epidemic algorithms for replicated maintenance"))
        c.publish(Document("d-c", "content addressable publishing for communities"))
        b.publish(Document("d-b", "compressed bloom filters across the wire"))
        await b.join(a.address)
        await c.join(a.address)
        assert await _converge_on(b, [a, c])
        b.write_checkpoint()
        await b.transport.close()

        # Warm: checkpoint seeds the directory; one REJOIN rumor heals it.
        warm_reg = Registry()
        b2 = _node(net, 1, port=101, data_dir=tmp_path,
                   store_config=FAST_STORE, registry=warm_reg)
        await b2.start()
        assert b2.restored_members == 2
        assert await _converge_on(b2, [a, c])
        warm_bytes = node_bytes(warm_reg)
        await b2.transport.close()

        # Cold: same node, checkpoint gone — full join snapshot transfer.
        (tmp_path / "directory.ckpt").unlink()
        cold_reg = Registry()
        b3 = _node(net, 1, port=102, data_dir=tmp_path,
                   store_config=FAST_STORE, registry=cold_reg)
        await b3.start()
        assert b3.restored_members == 0
        await b3.join(a.address)
        assert await _converge_on(b3, [a, c])
        cold_bytes = node_bytes(cold_reg)

        assert warm_bytes < cold_bytes, (
            f"warm rejoin ({warm_bytes}B) should undercut a cold join "
            f"({cold_bytes}B)"
        )
        for n in (a, c, b3):
            await n.stop()

    asyncio.run(scenario())


def test_checkpoint_for_another_peer_id_is_ignored(tmp_path):
    async def scenario():
        net = LoopbackNetwork()
        b = _node(net, 1, data_dir=tmp_path, store_config=FAST_STORE)
        await b.start()
        await b.stop()  # writes peer 1's checkpoint
        # The data dir is reused by a different identity: cold start.
        other = _node(net, 5, port=105, data_dir=tmp_path, store_config=FAST_STORE)
        assert other.restored_members == 0
        await other.start()
        await other.stop()

    asyncio.run(scenario())


# -- the CLI, killed for real -------------------------------------------------


class _Lines:
    """Collects a process's stdout lines from a reader thread."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.lines: list[str] = []
        self._thread = threading.Thread(
            target=self._drain, args=(proc,), daemon=True
        )
        self._thread.start()

    def _drain(self, proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def await_match(self, substr: str, deadline_s: float = 30.0) -> str:
        end = time.monotonic() + deadline_s
        while time.monotonic() < end:
            for line in list(self.lines):
                if substr in line:
                    return line
            time.sleep(0.05)
        raise AssertionError(
            f"never saw {substr!r} in output; got: {self.lines}"
        )


def _spawn_node(data_dir: Path, corpus: Path) -> tuple[subprocess.Popen, _Lines]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.net",
            "--peer-id", "0", "--port", "0",
            "--corpus", str(corpus), "--data-dir", str(data_dir),
            "--gossip-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    return proc, _Lines(proc)


def test_cli_node_survives_sigkill(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "alpha.txt").write_text("gossip protocols spread information")
    (corpus / "beta.txt").write_text("bloom filters compress membership")
    data_dir = tmp_path / "state"

    proc, lines = _spawn_node(data_dir, corpus)
    try:
        lines.await_match("published 2 documents")
        os.kill(proc.pid, signal.SIGKILL)  # no shutdown, no snapshot
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, lines = _spawn_node(data_dir, corpus)
    try:
        lines.await_match("warm start: 2 documents recovered (2 WAL records replayed)")
        # Recovery made re-publishing unnecessary.
        lines.await_match("published 0 documents")
        proc.terminate()
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
