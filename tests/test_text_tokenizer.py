"""Tests for the tokenizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenizer import MAX_TOKEN_LEN, MIN_TOKEN_LEN, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_splits_on_punctuation(self):
        assert tokenize("peer-to-peer, gossip!") == ["peer", "to", "peer", "gossip"]

    def test_keeps_digits(self):
        assert tokenize("trec 1989 ap89") == ["trec", "1989", "ap89"]

    def test_drops_single_chars(self):
        assert tokenize("a b cd") == ["cd"]

    def test_drops_overlong_tokens(self):
        long_token = "x" * (MAX_TOKEN_LEN + 1)
        assert tokenize(f"ok {long_token}") == ["ok"]

    def test_empty_and_whitespace(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []

    def test_apostrophes_split(self):
        assert tokenize("don't") == ["don"]  # the lone "t" is dropped

    def test_order_preserved(self):
        assert tokenize("zz yy xx") == ["zz", "yy", "xx"]

    def test_unicode_stripped_to_ascii_words(self):
        # Non-ASCII letters act as separators in this deliberately simple
        # community-wide tokenizer.
        assert tokenize("café" ) == ["caf"]


@given(st.text(max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_tokens_are_well_formed(text):
    """Every token is lowercase alphanumeric within the length bounds."""
    for tok in tokenize(text):
        assert MIN_TOKEN_LEN <= len(tok) <= MAX_TOKEN_LEN
        assert tok == tok.lower()
        assert tok.isalnum()


@given(st.text(max_size=100))
@settings(max_examples=50, deadline=None)
def test_property_idempotent_through_rejoin(text):
    """Tokenizing the joined token stream returns the same stream."""
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens
