"""Tests for the in-process community: both search modes, persistent
queries, replication, and offline behaviour."""

import pytest

from repro.core.community import InProcessCommunity
from repro.ranking.stopping import NeverStop
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet


class TestPublishing:
    def test_publish_and_fetch(self, tiny_community):
        doc = tiny_community.fetch("d-gossip")
        assert "gossip" in doc.text
        assert tiny_community.owner_of("d-gossip") == 0
        assert tiny_community.num_documents() == 6

    def test_remove(self, tiny_community):
        tiny_community.remove("d-gossip")
        with pytest.raises(KeyError):
            tiny_community.fetch("d-gossip")
        assert tiny_community.num_documents() == 5

    def test_remove_unknown_raises(self, tiny_community):
        with pytest.raises(KeyError):
            tiny_community.remove("ghost")

    def test_publish_batch(self):
        community = InProcessCommunity(2)
        community.publish_batch(
            0, [Document(f"d{i}", f"text number {i}") for i in range(5)]
        )
        assert community.num_documents() == 5


class TestExhaustiveSearch:
    def test_conjunction_semantics(self, tiny_community):
        docs = tiny_community.exhaustive_search("gossip ranking")
        # Only d-mixed contains both 'gossip' and 'ranking'.
        assert [d.doc_id for d in docs] == ["d-mixed"]

    def test_single_term(self, tiny_community):
        docs = tiny_community.exhaustive_search("gossip")
        assert {d.doc_id for d in docs} == {"d-gossip", "d-mixed"}

    def test_no_match(self, tiny_community):
        assert tiny_community.exhaustive_search("nonexistent") == []

    def test_empty_query(self, tiny_community):
        assert tiny_community.exhaustive_search("the of and") == []

    def test_offline_peer_not_contacted(self, tiny_community):
        tiny_community.set_online(0, False)
        docs = tiny_community.exhaustive_search("gossip")
        assert {d.doc_id for d in docs} == {"d-mixed"}

    def test_brokered_snippets_found(self, tiny_community):
        tiny_community.brokerage.add_member(0)
        tiny_community.brokerage.publish(
            "hot-item", "<ad>fresh</ad>", ["brandnew"], publisher=0, ttl_s=600
        )
        docs = tiny_community.exhaustive_search("brandnew")
        assert [d.doc_id for d in docs] == ["hot-item"]


class TestRankedSearch:
    def test_returns_relevant_first(self, tiny_community):
        result = tiny_community.ranked_search("gossip epidemically", k=3)
        assert result.doc_ids()[0] == "d-gossip"

    def test_k_bounds_results(self, tiny_community):
        result = tiny_community.ranked_search("gossip", k=1)
        assert len(result.results) == 1

    def test_contacted_subset_of_ranked(self, tiny_community):
        result = tiny_community.ranked_search("gossip", k=5)
        ranked_ids = [pid for pid, _ in result.peer_ranking]
        assert set(result.peers_contacted) <= set(ranked_ids)

    def test_empty_query_raises(self, tiny_community):
        with pytest.raises(ValueError):
            tiny_community.ranked_search("the of", k=3)

    def test_custom_stopping(self, tiny_community):
        result = tiny_community.ranked_search("gossip", k=5, stopping=NeverStop())
        ranked_ids = [pid for pid, _ in result.peer_ranking]
        assert result.peers_contacted == ranked_ids

    def test_offline_peer_filter_still_visible(self, tiny_community):
        """Section 2, advantage 4: a query can reveal that an off-line
        peer holds relevant documents (its filter stays in the
        directory) even though it cannot be contacted."""
        tiny_community.replicate_directories()
        tiny_community.set_online(2, False)
        result = tiny_community.ranked_search("chord lookups", k=3)
        # Peer 2's document can't be retrieved...
        assert "d-chord" not in result.doc_ids()
        # ...but the local directory still shows its filter may match.
        terms = tiny_community.analyze_query("chord lookups")
        assert tiny_community.peers[0].directory[2].bloom_filter.contains_all(terms)


class TestPersistentQueries:
    def test_upcall_on_future_publish(self, tiny_community):
        seen = []
        tiny_community.post_persistent_query("fresh gossip", seen.append)
        tiny_community.publish(1, Document("d-new", "fresh gossip arrives daily"))
        assert [d.doc_id for d in seen] == ["d-new"]

    def test_non_matching_publish_ignored(self, tiny_community):
        seen = []
        tiny_community.post_persistent_query("fresh gossip", seen.append)
        tiny_community.publish(1, Document("d-other", "unrelated material"))
        assert seen == []

    def test_conjunctive_matching(self, tiny_community):
        seen = []
        tiny_community.post_persistent_query("alpha beta", seen.append)
        tiny_community.publish(0, Document("d-a", "alpha only"))
        tiny_community.publish(0, Document("d-ab", "alpha and beta both"))
        assert [d.doc_id for d in seen] == ["d-ab"]

    def test_no_duplicate_upcalls(self, tiny_community):
        seen = []
        tiny_community.post_persistent_query("gossip", seen.append)
        tiny_community.publish(1, Document("d-x", "gossip gossip"))
        # Republishing under a different id fires again, same id cannot
        # exist twice; ensure one upcall per document.
        assert len(seen) == 1

    def test_cancel(self, tiny_community):
        seen = []
        handle = tiny_community.post_persistent_query("gossip", seen.append)
        tiny_community.persistent.cancel(handle.query_id)
        tiny_community.publish(1, Document("d-y", "gossip again"))
        assert seen == []

    def test_empty_query_rejected(self, tiny_community):
        with pytest.raises(ValueError):
            tiny_community.post_persistent_query("the", lambda d: None)


class TestCommunityMisc:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            InProcessCommunity(0)

    def test_unknown_peer_raises(self, tiny_community):
        with pytest.raises(KeyError):
            tiny_community.set_online(99, True)

    def test_replication_installs_filters(self, tiny_community):
        tiny_community.replicate_directories()
        directory = tiny_community.peers[0].directory
        assert len(directory) == len(tiny_community)
        assert directory[4].bloom_filter is not None
