"""Publish → SIGKILL the origin → retrieve from surviving replicas.

A real multi-process fleet (every node a ``python -m repro.net``
process with ``--replicas``) runs the full content-plane acceptance
path: wave documents fetched byte-identical through the ring, crashed
origins' sentinel documents still retrievable while the origins are
down, and zero orphaned chunk bytes once handoff settles — the same
:meth:`~repro.fleet.invariants.FleetReport.violations` gate the
500-node scale suite applies at ``replicas=3``.
"""

from __future__ import annotations

import shutil

import pytest

from repro.fleet import FleetReport, FleetSpec, run_scenario

pytestmark = [
    pytest.mark.content,
    pytest.mark.fleet,
    pytest.mark.slow,
    pytest.mark.timeout(300),
]

SPEC = FleetSpec(
    num_nodes=8,
    seed=11,
    gossip_interval_s=0.25,
    num_waves=1,
    docs_per_wave=3,
    num_crashes=2,
    replicas=3,
    convergence_slack_s=30.0,
)
MIN_RECALL = 0.9  # 8 peers: one ranking tie costs more than in a 25-node run


@pytest.fixture(scope="module")
def report(tmp_path_factory) -> FleetReport:
    root = tmp_path_factory.mktemp("fleet-content")
    try:
        return run_scenario(SPEC, root=root, log_dir=root / "logs")
    finally:
        shutil.rmtree(root / "corpus", ignore_errors=True)
        shutil.rmtree(root / "data", ignore_errors=True)


def test_no_acceptance_violations(report):
    assert report.violations(min_recall=MIN_RECALL) == []


def test_replication_reached_the_fixed_point_before_churn(report):
    assert report.content_replicas == SPEC.replicas
    assert report.replication_s >= 0.0


def test_every_wave_document_fetched_byte_identical(report):
    assert report.content_fetches_expected == SPEC.num_waves * SPEC.docs_per_wave
    assert report.content_fetches_ok == report.content_fetches_expected


def test_documents_survive_their_origin(report):
    assert len(report.crash_pids) == SPEC.num_crashes
    assert report.churn_fetches_ok


def test_handoff_leaves_no_orphaned_chunk_bytes(report):
    assert report.orphan_chunk_bytes_max == 0.0
