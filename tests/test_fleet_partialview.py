"""A real fleet in ``--partial-view`` mode, end to end, in the tier-1 lane.

Same harness as :mod:`tests.test_fleet_small` — every node a separate
``python -m repro.net`` process on its own localhost TCP port — but the
whole fleet (observer included) runs the sharded partial-view directory:
full Bloom filters only for each node's home shard plus a small random
sample, coarse OR-summaries for every other shard, and query fan-out
through shard members.  The invariants are the flat fleet's (convergence
bound, recall vs. the full-directory oracle, zero stale serves, crash
recovery, hygiene) plus the partial-view-specific ones: per-node filter
memory strictly below the flat directory's, and nonzero maintenance
traffic that stays bounded.

12 nodes over 3 shards keeps the tier-1 cost low; at this size a node
still pins most of the community (home shard of ~4 + sample of 4 + 2
summaries), so only the 500-node scale suite can assert the *deep*
sublinearity ratio — here we assert direction, not magnitude.
"""

from __future__ import annotations

import shutil

import pytest

from repro.fleet import FleetReport, FleetSpec, build_scenario, run_scenario

pytestmark = [
    pytest.mark.fleet,
    pytest.mark.slow,
    pytest.mark.partialview,
    pytest.mark.timeout(300),
]

SPEC = FleetSpec(num_nodes=12, seed=0, partial_view=True, num_shards=3, view_sample=4)
MIN_RECALL = 0.95


@pytest.fixture(scope="module")
def report(tmp_path_factory) -> FleetReport:
    root = tmp_path_factory.mktemp("fleet-pv")
    try:
        return run_scenario(SPEC, root=root, log_dir=root / "logs")
    finally:
        shutil.rmtree(root / "corpus", ignore_errors=True)
        shutil.rmtree(root / "data", ignore_errors=True)


def test_no_acceptance_violations(report):
    assert report.partial_view
    assert report.violations(min_recall=MIN_RECALL) == []


def test_converges_within_the_fig2_bound(report):
    assert report.num_nodes == SPEC.num_nodes
    assert 0.0 <= report.convergence_s <= report.convergence_bound_s


def test_recall_tracks_the_full_directory_oracle(report):
    assert report.recall >= MIN_RECALL
    assert report.recall_min >= 0.5


def test_publish_waves_propagate_without_stale_serves(report):
    assert report.stale_serves == 0
    assert len(report.wave_propagation_s) == SPEC.num_waves
    assert all(0.0 <= s <= report.convergence_bound_s
               for s in report.wave_propagation_s)


def test_crash_recovery_under_partial_view(report):
    scenario = build_scenario(SPEC)
    assert report.crash_pids == list(scenario.crash_pids)
    assert report.crash_search_ok  # searches kept working mid-outage
    assert report.recovery_s > 0.0
    assert report.recall_after_recovery >= MIN_RECALL


def test_filter_memory_below_the_flat_directory(report):
    # A flat node pins one full filter per member (its own included).
    flat_bytes = SPEC.num_nodes * (SPEC.bloom_bits // 8)
    assert 0.0 < report.directory_filter_bytes_per_node < flat_bytes


def test_maintenance_traffic_is_nonzero_and_bounded(report):
    # Summary refreshes, view exchanges, backfills and query fan-out all
    # flow through the partial-view counters; a silent zero would mean
    # the mode never engaged.
    assert report.partialview_bytes_per_node > 0.0
    # Bounded: well under one full directory's worth of filters per node.
    assert report.partialview_bytes_per_node < SPEC.num_nodes * SPEC.bloom_bits


def test_every_process_and_port_was_reclaimed(report):
    assert report.forced_kills == 0
    assert report.leaked_processes == 0
    assert report.leaked_ports == 0
