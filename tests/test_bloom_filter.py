"""Tests for the Bloom filter: the no-false-negatives contract, sizing,
merging, and FP-rate math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.filter import BloomFilter
from repro.constants import PROTOTYPE_BF_BITS


class TestMembership:
    def test_added_terms_are_members(self, small_filter):
        for term in ("alpha", "beta", "gamma", "delta"):
            assert term in small_filter

    def test_absent_term_usually_not_member(self):
        bf = BloomFilter(2**16, 2)
        bf.add("present")
        assert "definitely-absent-term" not in bf

    def test_add_many_equals_add(self):
        a = BloomFilter(4096, 2)
        b = BloomFilter(4096, 2)
        terms = [f"t{i}" for i in range(100)]
        a.add_many(terms)
        for t in terms:
            b.add(t)
        assert a == b

    def test_contains_all(self, small_filter):
        assert small_filter.contains_all(["alpha", "beta"])
        assert not small_filter.contains_all(["alpha", "missing-term-xyz"])
        assert small_filter.contains_all([])  # vacuous truth

    def test_contains_each(self, small_filter):
        hits = small_filter.contains_each(["alpha", "nope-xyz", "gamma"])
        assert hits.tolist() == [True, False, True]

    def test_empty_add_many(self):
        bf = BloomFilter(64, 2)
        bf.add_many([])
        assert bf.bit_count() == 0


class TestSizing:
    def test_paper_prototype_dimensions(self):
        bf = BloomFilter.paper_prototype()
        assert bf.num_bits == PROTOTYPE_BF_BITS == 50 * 1024 * 8
        assert bf.num_hashes == 2

    def test_with_capacity_meets_fp_target(self):
        bf = BloomFilter.with_capacity(1000, fp_rate=0.05)
        predicted = BloomFilter.theoretical_fp_rate(bf.num_bits, bf.num_hashes, 1000)
        assert predicted <= 0.05 + 1e-9

    def test_with_capacity_fixed_hashes(self):
        bf = BloomFilter.with_capacity(1000, fp_rate=0.05, num_hashes=2)
        assert bf.num_hashes == 2
        assert BloomFilter.theoretical_fp_rate(bf.num_bits, 2, 1000) <= 0.05 + 1e-9

    def test_paper_5pct_claim(self):
        # Section 7.1: a 50 KB filter summarizes 50 000 terms at < 5% FP
        # with two hashes.
        rate = BloomFilter.theoretical_fp_rate(PROTOTYPE_BF_BITS, 2, 50_000)
        assert rate < 0.05

    def test_paper_1000_terms_size_claim(self):
        # Section 2: ~1.9 KB summarizes 1000 terms at < 5% with two hashes.
        rate = BloomFilter.theoretical_fp_rate(int(1.9 * 1024 * 8), 2, 1000)
        assert rate < 0.05

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, fp_rate=1.5)


class TestObservedFpRate:
    def test_fp_rate_near_theory(self):
        bf = BloomFilter.with_capacity(2000, fp_rate=0.05, num_hashes=2)
        bf.add_many([f"member-{i}" for i in range(2000)])
        false_hits = sum(1 for i in range(10000) if f"absent-{i}" in bf)
        observed = false_hits / 10000
        assert observed < 0.08  # 5% target with sampling slack

    def test_fill_ratio_and_estimate(self):
        bf = BloomFilter(2**14, 2)
        bf.add_many([f"x{i}" for i in range(1000)])
        assert 0.0 < bf.fill_ratio() < 0.5
        assert bf.approx_distinct_terms() == pytest.approx(1000, rel=0.15)

    def test_false_positive_rate_of_empty(self):
        assert BloomFilter(64, 2).false_positive_rate() == 0.0


class TestMerging:
    def test_union_contains_both(self):
        a = BloomFilter(4096, 2)
        b = BloomFilter(4096, 2)
        a.add("only-a")
        b.add("only-b")
        merged = a.union(b)
        assert "only-a" in merged and "only-b" in merged
        assert merged.num_inserted == 2

    def test_union_inplace(self):
        a = BloomFilter(4096, 2)
        b = BloomFilter(4096, 2)
        b.add("from-b")
        a.union_inplace(b)
        assert "from-b" in a

    def test_union_incompatible_raises(self):
        with pytest.raises(ValueError):
            BloomFilter(4096, 2).union(BloomFilter(4096, 3))

    def test_superset(self):
        a = BloomFilter(4096, 2)
        b = BloomFilter(4096, 2)
        a.add_many(["x", "y"])
        b.add("x")
        assert a.is_superset_of(b)
        assert not b.is_superset_of(a)


class TestMisc:
    def test_copy_is_independent(self, small_filter):
        dup = small_filter.copy()
        dup.add("new-term-only-in-dup")
        assert small_filter != dup

    def test_theoretical_fp_invalid(self):
        with pytest.raises(ValueError):
            BloomFilter.theoretical_fp_rate(0, 2, 10)

    def test_unhashable(self, small_filter):
        with pytest.raises(TypeError):
            hash(small_filter)


@given(st.sets(st.text(min_size=1, max_size=12), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_property_no_false_negatives(terms):
    """THE Bloom filter invariant: every inserted term is reported present."""
    bf = BloomFilter(8192, 3)
    bf.add_many(sorted(terms))
    for term in terms:
        assert term in bf


@given(
    st.sets(st.text(min_size=1, max_size=8), max_size=30),
    st.sets(st.text(min_size=1, max_size=8), max_size=30),
)
@settings(max_examples=30, deadline=None)
def test_property_union_preserves_membership(a_terms, b_terms):
    """Union never loses a member from either side."""
    a = BloomFilter(8192, 2)
    b = BloomFilter(8192, 2)
    a.add_many(sorted(a_terms))
    b.add_many(sorted(b_terms))
    merged = a.union(b)
    for term in a_terms | b_terms:
        assert term in merged
    assert merged.is_superset_of(a) and merged.is_superset_of(b)
