"""Tests for Bloom filter diffs (the gossip bandwidth saver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.diff import BloomDiff, apply_diff, diff_filters
from repro.bloom.filter import BloomFilter


def _filter_with(terms):
    bf = BloomFilter(8192, 2)
    bf.add_many(terms)
    return bf


class TestDiff:
    def test_diff_of_identical_is_empty(self):
        a = _filter_with(["x", "y"])
        diff = diff_filters(a, a.copy())
        assert len(diff) == 0

    def test_diff_captures_added_terms(self):
        old = _filter_with(["x"])
        new = old.copy()
        new.add_many(["added-1", "added-2"])
        diff = diff_filters(old, new)
        assert len(diff) > 0
        restored = apply_diff(old, diff)
        assert restored == new

    def test_diff_on_shrinking_filter_raises(self):
        old = _filter_with(["x", "y"])
        new = _filter_with(["x"])
        with pytest.raises(ValueError):
            diff_filters(old, new)

    def test_incompatible_families_raise(self):
        with pytest.raises(ValueError):
            diff_filters(BloomFilter(8192, 2), BloomFilter(8192, 3))

    def test_apply_width_mismatch_raises(self):
        diff = BloomDiff(64, np.array([1], dtype=np.int64))
        with pytest.raises(ValueError):
            apply_diff(BloomFilter(128, 2), diff)

    def test_position_out_of_range_raises(self):
        with pytest.raises(ValueError):
            BloomDiff(64, np.array([64], dtype=np.int64))


class TestWire:
    def test_bytes_roundtrip(self):
        old = _filter_with(["base"])
        new = old.copy()
        new.add_many([f"n{i}" for i in range(50)])
        diff = diff_filters(old, new)
        restored = BloomDiff.from_bytes(diff.to_bytes())
        assert np.array_equal(restored.positions, diff.positions)
        assert restored.num_bits == diff.num_bits

    def test_empty_diff_bytes(self):
        diff = BloomDiff(4096, np.zeros(0, dtype=np.int64))
        restored = BloomDiff.from_bytes(diff.to_bytes())
        assert len(restored) == 0
        assert restored.num_bits == 4096

    def test_wire_size_smaller_than_full_filter(self):
        """The point of diffs: sending 100 new terms costs far less than
        re-sending a 50 KB filter."""
        old = BloomFilter.paper_prototype()
        old.add_many([f"old-{i}" for i in range(10000)])
        new = old.copy()
        new.add_many([f"new-{i}" for i in range(100)])
        diff = diff_filters(old, new)
        assert diff.wire_size() < 2000  # ~200 positions, Golomb coded
        assert diff.wire_size() == len(diff.to_bytes())


class TestGoldenPayload:
    def test_diff_wire_bytes_unchanged(self):
        """Diff wire bytes captured before the vectorized codec landed;
        old peers must keep decoding new payloads and vice versa."""
        import hashlib

        rng = np.random.default_rng(20030612)
        positions = np.sort(rng.choice(8192, 120, replace=False))
        blob = BloomDiff(8192, tuple(int(p) for p in positions)).to_bytes()
        assert len(blob) == 126
        assert (
            hashlib.sha256(blob).hexdigest()
            == "8841f930177c446f5f09b2ef264b95bbd1c379b4a93af9396f3c15a2bab32d17"
        )
        assert BloomDiff.from_bytes(blob).positions.tolist() == positions.tolist()


@given(
    st.sets(st.text(min_size=1, max_size=8), max_size=40),
    st.sets(st.text(min_size=1, max_size=8), max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_property_diff_apply_reconstructs(base_terms, extra_terms):
    """old + diff(old, old+extra) == old+extra, for any term sets."""
    old = _filter_with(sorted(base_terms))
    new = old.copy()
    new.add_many(sorted(extra_terms))
    diff = diff_filters(old, new)
    assert apply_diff(old, diff) == new
