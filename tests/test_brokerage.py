"""Tests for the information brokerage: ring, broker store, service."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brokerage.broker import Broker, BrokeredSnippet
from repro.brokerage.ring import ConsistentHashRing
from repro.brokerage.service import BrokerageService


class TestRing:
    def test_empty_ring_lookup_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.broker_for("key")

    def test_single_broker_owns_everything(self):
        ring = ConsistentHashRing()
        ring.add_broker(7)
        for key in ("a", "b", "zzz"):
            assert ring.broker_for(key) == 7

    def test_deterministic_placement(self):
        a = ConsistentHashRing()
        b = ConsistentHashRing()
        for member in (1, 2, 3):
            a.add_broker(member)
            b.add_broker(member)
        for key in ("gossip", "bloom", "filter", "peer"):
            assert a.broker_for(key) == b.broker_for(key)

    def test_successor_wraps(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=10)
        ring.add_broker(2, ring_id=50)
        assert ring.successor_of(5) == 1
        assert ring.successor_of(10) == 1  # least successor includes self
        assert ring.successor_of(30) == 2
        assert ring.successor_of(60) == 1  # wraps past the top

    def test_remove_redistributes_only_arc(self):
        ring = ConsistentHashRing()
        for member in range(10):
            ring.add_broker(member)
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.broker_for(k) for k in keys}
        ring.remove_broker(4)
        moved = sum(1 for k in keys if ring.broker_for(k) != before[k])
        # Only keys owned by broker 4 move.
        owned = sum(1 for k in keys if before[k] == 4)
        assert moved == owned

    def test_duplicate_position_rejected(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=10)
        with pytest.raises(ValueError):
            ring.add_broker(2, ring_id=10)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ConsistentHashRing().remove_broker(99)

    def test_membership_and_len(self):
        ring = ConsistentHashRing()
        ring.add_broker(5)
        assert 5 in ring and 6 not in ring
        assert len(ring) == 1
        assert ring.brokers() == [5]

    def test_arc_of(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=20)
        ring.add_broker(2, ring_id=70)
        pred, own = ring.arc_of(2)
        assert (pred, own) == (20, 70)

    def test_invalid_max_id(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(max_id=1)


class TestBroker:
    def _snippet(self, sid="s1", keys=("k1",), discard=100.0):
        return BrokeredSnippet(sid, "<x>body</x>", tuple(keys), publisher=0,
                               discard_at=discard)

    def test_store_and_lookup(self):
        broker = Broker(0)
        broker.store("k1", self._snippet())
        assert [s.snippet_id for s in broker.lookup("k1", now=0.0)] == ["s1"]
        assert broker.lookup("other", now=0.0) == []

    def test_expiry(self):
        broker = Broker(0)
        broker.store("k1", self._snippet(discard=10.0))
        assert broker.lookup("k1", now=9.9)
        assert broker.lookup("k1", now=10.0) == []

    def test_purge(self):
        broker = Broker(0)
        broker.store("k1", self._snippet("a", discard=5.0))
        broker.store("k1", self._snippet("b", discard=50.0))
        assert broker.purge_expired(now=10.0) == 1
        assert broker.num_snippets() == 1

    def test_snippet_needs_keys(self):
        with pytest.raises(ValueError):
            BrokeredSnippet("s", "<x/>", (), 0, 10.0)


class TestService:
    @pytest.fixture
    def service(self):
        clock = [0.0]
        svc = BrokerageService(clock=lambda: clock[0])
        svc._test_clock = clock  # type: ignore[attr-defined]
        for member in (1, 2, 3, 4):
            svc.add_member(member)
        return svc

    def test_publish_and_lookup(self, service):
        service.publish("s1", "<ad>x</ad>", ["gossip", "peer"], 1, ttl_s=100)
        assert [s.snippet_id for s in service.lookup("gossip")] == ["s1"]
        assert [s.snippet_id for s in service.lookup("peer")] == ["s1"]

    def test_conjunctive_lookup(self, service):
        service.publish("s1", "<a/>", ["gossip", "peer"], 1, ttl_s=100)
        service.publish("s2", "<b/>", ["gossip"], 1, ttl_s=100)
        both = service.lookup_all(["gossip", "peer"])
        assert [s.snippet_id for s in both] == ["s1"]
        assert service.lookup_all([]) == []

    def test_ttl(self, service):
        service.publish("s1", "<a/>", ["kk"], 1, ttl_s=60)
        service._test_clock[0] = 61.0
        assert service.lookup("kk") == []

    def test_graceful_leave_keeps_data(self, service):
        service.publish("s1", "<a/>", ["kk"], 1, ttl_s=1000)
        owner = service.broker_of("kk")
        service.remove_member(owner, graceful=True)
        assert [s.snippet_id for s in service.lookup("kk")] == ["s1"]

    def test_abrupt_leave_loses_data(self, service):
        service.publish("s1", "<a/>", ["kk"], 1, ttl_s=1000)
        owner = service.broker_of("kk")
        service.remove_member(owner, graceful=False)
        assert service.lookup("kk") == []

    def test_join_takes_over_arc(self, service):
        keys = [f"key-{i}" for i in range(40)]
        for i, key in enumerate(keys):
            service.publish(f"s{i}", "<a/>", [key], 1, ttl_s=1000)
        service.add_member(99)
        # Every key still resolves, wherever it now lives.
        for i, key in enumerate(keys):
            assert [s.snippet_id for s in service.lookup(key)] == [f"s{i}"]

    def test_no_brokers(self):
        svc = BrokerageService(clock=lambda: 0.0)
        with pytest.raises(LookupError):
            svc.publish("s", "<a/>", ["k"], 0, ttl_s=10)
        assert svc.lookup("k") == []

    def test_duplicate_member_rejected(self, service):
        with pytest.raises(ValueError):
            service.add_member(1)

    def test_bad_ttl(self, service):
        with pytest.raises(ValueError):
            service.publish("s", "<a/>", ["k"], 0, ttl_s=0)

    def test_total_entries(self, service):
        service.publish("s1", "<a/>", ["k1", "k2"], 1, ttl_s=100)
        assert service.total_entries() == 2


@given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_property_every_key_has_exactly_one_owner(members):
    """Any key maps to exactly one live broker, whatever the membership."""
    ring = ConsistentHashRing()
    for m in members:
        ring.add_broker(m)
    for key in ("alpha", "beta", "gamma"):
        owner = ring.broker_for(key)
        assert owner in members


class TestSuccessorSets:
    """k-way successor walks: what the content plane's replica placement
    and the partial-view shard map both build on."""

    def test_single_member_ring_yields_that_member_once(self):
        ring = ConsistentHashRing()
        ring.add_broker(7)
        assert ring.successors_for("any-key", 3) == [7]

    def test_successors_are_distinct_members_in_ring_order(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=10)
        ring.add_broker(2, ring_id=30)
        ring.add_broker(2, ring_id=40)  # a second virtual point
        ring.add_broker(3, ring_id=60)
        assert ring.successors_of(15, 3) == [2, 3, 1]

    def test_successors_wrap_past_the_top(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=10)
        ring.add_broker(2, ring_id=50)
        assert ring.successors_of(80, 2) == [1, 2]

    def test_k_beyond_membership_returns_everyone(self):
        ring = ConsistentHashRing(max_id=100)
        ring.add_broker(1, ring_id=10)
        ring.add_broker(2, ring_id=50)
        assert sorted(ring.successors_of(0, 99)) == [1, 2]

    def test_nonpositive_k_is_empty(self):
        ring = ConsistentHashRing()
        ring.add_broker(1)
        assert ring.successors_of(0, 0) == []


class TestPlacementGoldenDigests:
    """Virtual-point placement must agree across processes: any drift in
    the hash seeds, point labels, or probe order silently strands every
    replica and shard assignment, so the exact placements are pinned."""

    def test_replica_ring_placement_digest(self):
        from repro.content import replica_ring

        ring = replica_ring([0, 1, 2, 3, 4, 5, 6, 7], points_per_member=32)
        lines = [
            ",".join(str(p) for p in ring.successors_for(f"doc-{i}", 3))
            for i in range(64)
        ]
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        assert digest == (
            "870d68367021d9dccc8d5a9205d250ffdb1b8f42b545e0a1970aeba040095968"
        )

    def test_shard_map_assignment_digest(self):
        from repro.gossip.partialview import ShardMap

        smap = ShardMap(num_shards=4)
        assign = ",".join(str(smap.shard_of(pid)) for pid in range(128))
        digest = hashlib.sha256(assign.encode()).hexdigest()
        assert digest == (
            "484ce3e9f16059aa5ade2b69dcc9704aebc3e42883104808cddc90587fbe36ba"
        )
