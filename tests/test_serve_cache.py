"""The query plane's version-keyed result cache (repro.serve.cache).

Two halves: :class:`ResultCache` as a pure LRU with generation-checked
lookups (hit/miss/stale/eviction accounting), and
:func:`directory_generation` as a live fingerprint over real loopback
nodes — it must hold still while nothing changes and move on exactly the
events that can change a search answer: a local publish, a gossip-applied
replica update, and an online flip.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import ResultCache, directory_generation
from repro.text.document import Document


def _node(net: LoopbackNetwork, pid: int) -> NetworkPeer:
    return NetworkPeer(
        pid, "peer", pid, transport=net.transport(), seed=pid, registry=Registry()
    )


async def _spread(nodes: list[NetworkPeer], rounds: int = 12) -> None:
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()


# -- ResultCache --------------------------------------------------------------


def test_cache_roundtrip_hits():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put(("ranked", ("gossip",), 10), 7, "answer")
    assert cache.get(("ranked", ("gossip",), 10), 7) == "answer"
    assert reg.value("serve", "result_cache_hits_total") == 1
    assert reg.value("serve", "result_cache_misses_total") == 0
    assert len(cache) == 1


def test_cache_misses_on_absent_key():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    assert cache.get("nope", 1) is None
    assert reg.value("serve", "result_cache_misses_total") == 1
    assert reg.value("serve", "result_cache_stale_total") == 0


def test_generation_mismatch_evicts_and_counts_stale():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put("q", 1, "old")
    assert cache.get("q", 2) is None  # the directory moved on
    assert reg.value("serve", "result_cache_stale_total") == 1
    assert reg.value("serve", "result_cache_misses_total") == 1
    # The stale entry is gone, not resurrectable at its old generation.
    assert cache.get("q", 1) is None
    assert len(cache) == 0


def test_lru_evicts_least_recently_used():
    reg = Registry()
    cache = ResultCache(2, registry=reg)
    cache.put("a", 1, "A")
    cache.put("b", 1, "B")
    assert cache.get("a", 1) == "A"  # refresh a; b is now the LRU
    cache.put("c", 1, "C")
    assert reg.value("serve", "result_cache_evictions_total") == 1
    assert cache.get("b", 1) is None
    assert cache.get("a", 1) == "A"
    assert cache.get("c", 1) == "C"
    assert reg.value("serve", "result_cache_size") == 2


def test_zero_capacity_stores_nothing():
    cache = ResultCache(0, registry=Registry())
    cache.put("q", 1, "dropped")
    assert len(cache) == 0
    assert cache.get("q", 1) is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1, registry=Registry())


def test_clear_empties_the_cache():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put("q", 1, "gone")
    cache.clear()
    assert len(cache) == 0
    assert reg.value("serve", "result_cache_size") == 0


# -- directory_generation -----------------------------------------------------


def test_generation_stable_while_nothing_changes():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        assert directory_generation(a) == g0  # pure read, no side effects
        await _spread([a, b], rounds=3)  # quiescent gossip: no new content
        assert directory_generation(a) == g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_local_publish_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        await a.start()
        g0 = directory_generation(a)
        a.publish(Document("d", "bloom filters summarize membership"))
        assert directory_generation(a) != g0
        await a.stop()

    asyncio.run(scenario())


def test_replica_update_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        b.publish(Document("d-b", "gossip spreads rumors epidemically"))
        # Until the rumor reaches a, its view (and generation) holds.
        assert directory_generation(a) == g0
        await _spread([a, b])
        assert a.replica_of(1) == b.peer.store.bloom_filter
        assert directory_generation(a) != g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_online_flip_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        a.peer.directory[1].online = False  # a failed contact's verdict
        assert directory_generation(a) != g0
        a.peer.directory[1].online = True
        assert directory_generation(a) == g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


# -- the XOR mixing itself: order-insensitive, perturbation-sensitive ---------
#
# directory_generation folds per-member (pid, filter_version, bloom
# version, online) tuples with XOR, so iteration order must never matter
# (dict order is an implementation accident of gossip arrival), while
# any single-field change in any single member must move the fingerprint.
# These run against a stub directory, so every permutation and
# perturbation is exercised without sockets.


class _StubFilter:
    def __init__(self, version: int) -> None:
        self.version = version


class _StubEntry:
    def __init__(self, version: int, bloom: int | None, online: bool) -> None:
        self.filter_version = version
        self.bloom_filter = None if bloom is None else _StubFilter(bloom)
        self.online = online


class _StubNode:
    """Just the attribute paths directory_generation reads."""

    def __init__(self, members: dict[int, _StubEntry]) -> None:
        from types import SimpleNamespace

        self.peer_id = 0
        self.peer = SimpleNamespace(
            store=SimpleNamespace(filter_version=5, bloom_filter=_StubFilter(9)),
            directory={0: _StubEntry(5, 9, True), **members},
        )


def _members(seed: int = 0) -> dict[int, _StubEntry]:
    import random

    rng = random.Random(seed)
    return {
        pid: _StubEntry(rng.randrange(100), rng.randrange(100), rng.random() < 0.8)
        for pid in range(1, 9)
    }


def test_generation_is_order_insensitive_over_member_permutations():
    import itertools
    import random

    members = _members()
    reference = directory_generation(_StubNode(members))
    pids = list(members)
    rng = random.Random(42)
    orders = [list(p) for p in itertools.islice(itertools.permutations(pids), 6)]
    orders += [rng.sample(pids, len(pids)) for _ in range(6)]
    for order in orders:
        permuted = {pid: members[pid] for pid in order}
        assert directory_generation(_StubNode(permuted)) == reference


def test_generation_changes_on_any_single_field_perturbation():
    members = _members()
    reference = directory_generation(_StubNode(members))
    seen = {reference}
    for pid in members:
        for mutate in (
            lambda e: setattr(e, "filter_version", e.filter_version + 1),
            lambda e: setattr(e, "bloom_filter", _StubFilter(e.bloom_filter.version + 1)),
            lambda e: setattr(e, "online", not e.online),
        ):
            perturbed = _members()
            mutate(perturbed[pid])
            generation = directory_generation(_StubNode(perturbed))
            assert generation != reference, (pid, mutate)
            seen.add(generation)
    # Each of the 24 perturbations lands on its own fingerprint — the
    # mixing avalanches rather than cancelling between fields.
    assert len(seen) == 3 * len(members) + 1


def test_generation_distinguishes_missing_filter_from_version_zero():
    with_none = _members()
    with_none[3].bloom_filter = None
    with_zero = _members()
    with_zero[3].bloom_filter = _StubFilter(0)
    assert directory_generation(_StubNode(with_none)) != directory_generation(
        _StubNode(with_zero)
    )


# -- sharded generations: the partial-view decomposition ----------------------
#
# Under --partial-view the serve cache keys results on
# compose_generations(shard_generations(node).values()) — per-shard XOR
# mixes, XOR-composed.  Because XOR is associative and commutative, the
# composition must be invariant under *any* pid→shard partition (a shard
# boundary can never change what the fingerprint covers), and any single
# member field change must still flip the composed value — exactly one
# shard's mix, propagated through the composition.  Hypothesis-style:
# many seeded random directories and partitions, one invariant each.


def _random_shard_of(seed: int, num_shards: int):
    import random

    rng = random.Random(seed)
    table: dict[int, int] = {}

    def shard_of(pid: int) -> int:
        if pid not in table:
            table[pid] = rng.randrange(num_shards)
        return table[pid]

    return shard_of


@pytest.mark.parametrize("seed", range(12))
def test_composed_shard_generations_equal_flat_generation(seed):
    from repro.gossip.directory import compose_generations
    from repro.serve import shard_generations

    node = _StubNode(_members(seed))
    flat = directory_generation(node)
    for num_shards in (1, 2, 3, 5, 8):
        gens = shard_generations(node, _random_shard_of(seed ^ num_shards, num_shards))
        assert compose_generations(gens.values()) == flat, (seed, num_shards)


@pytest.mark.parametrize("seed", range(8))
def test_single_member_perturbation_flips_composed_generation(seed):
    from repro.gossip.directory import compose_generations
    from repro.serve import shard_generations

    shard_of = _random_shard_of(seed, 4)
    reference = shard_generations(_StubNode(_members(seed)), shard_of)
    composed = compose_generations(reference.values())
    for pid in _members(seed):
        for mutate in (
            lambda e: setattr(e, "filter_version", e.filter_version + 1),
            lambda e: setattr(
                e, "bloom_filter", _StubFilter(e.bloom_filter.version + 1)
            ),
            lambda e: setattr(e, "online", not e.online),
        ):
            perturbed = _members(seed)
            mutate(perturbed[pid])
            gens = shard_generations(_StubNode(perturbed), shard_of)
            # Exactly the perturbed member's shard moved ...
            moved = {s for s in gens if gens[s] != reference.get(s)}
            assert moved == {shard_of(pid)}, (pid, mutate)
            # ... and the movement survives the XOR composition, so the
            # serve cache invalidates on any remote member's change.
            assert compose_generations(gens.values()) != composed, (pid, mutate)


def test_generation_changes_when_membership_changes():
    members = _members()
    reference = directory_generation(_StubNode(members))
    grown = dict(members)
    grown[99] = _StubEntry(0, 0, True)
    assert directory_generation(_StubNode(grown)) != reference
    shrunk = dict(members)
    del shrunk[4]
    assert directory_generation(_StubNode(shrunk)) != reference
