"""The query plane's version-keyed result cache (repro.serve.cache).

Two halves: :class:`ResultCache` as a pure LRU with generation-checked
lookups (hit/miss/stale/eviction accounting), and
:func:`directory_generation` as a live fingerprint over real loopback
nodes — it must hold still while nothing changes and move on exactly the
events that can change a search answer: a local publish, a gossip-applied
replica update, and an online flip.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import ResultCache, directory_generation
from repro.text.document import Document


def _node(net: LoopbackNetwork, pid: int) -> NetworkPeer:
    return NetworkPeer(
        pid, "peer", pid, transport=net.transport(), seed=pid, registry=Registry()
    )


async def _spread(nodes: list[NetworkPeer], rounds: int = 12) -> None:
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()


# -- ResultCache --------------------------------------------------------------


def test_cache_roundtrip_hits():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put(("ranked", ("gossip",), 10), 7, "answer")
    assert cache.get(("ranked", ("gossip",), 10), 7) == "answer"
    assert reg.value("serve", "result_cache_hits_total") == 1
    assert reg.value("serve", "result_cache_misses_total") == 0
    assert len(cache) == 1


def test_cache_misses_on_absent_key():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    assert cache.get("nope", 1) is None
    assert reg.value("serve", "result_cache_misses_total") == 1
    assert reg.value("serve", "result_cache_stale_total") == 0


def test_generation_mismatch_evicts_and_counts_stale():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put("q", 1, "old")
    assert cache.get("q", 2) is None  # the directory moved on
    assert reg.value("serve", "result_cache_stale_total") == 1
    assert reg.value("serve", "result_cache_misses_total") == 1
    # The stale entry is gone, not resurrectable at its old generation.
    assert cache.get("q", 1) is None
    assert len(cache) == 0


def test_lru_evicts_least_recently_used():
    reg = Registry()
    cache = ResultCache(2, registry=reg)
    cache.put("a", 1, "A")
    cache.put("b", 1, "B")
    assert cache.get("a", 1) == "A"  # refresh a; b is now the LRU
    cache.put("c", 1, "C")
    assert reg.value("serve", "result_cache_evictions_total") == 1
    assert cache.get("b", 1) is None
    assert cache.get("a", 1) == "A"
    assert cache.get("c", 1) == "C"
    assert reg.value("serve", "result_cache_size") == 2


def test_zero_capacity_stores_nothing():
    cache = ResultCache(0, registry=Registry())
    cache.put("q", 1, "dropped")
    assert len(cache) == 0
    assert cache.get("q", 1) is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1, registry=Registry())


def test_clear_empties_the_cache():
    reg = Registry()
    cache = ResultCache(4, registry=reg)
    cache.put("q", 1, "gone")
    cache.clear()
    assert len(cache) == 0
    assert reg.value("serve", "result_cache_size") == 0


# -- directory_generation -----------------------------------------------------


def test_generation_stable_while_nothing_changes():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        assert directory_generation(a) == g0  # pure read, no side effects
        await _spread([a, b], rounds=3)  # quiescent gossip: no new content
        assert directory_generation(a) == g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_local_publish_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a = _node(net, 0)
        await a.start()
        g0 = directory_generation(a)
        a.publish(Document("d", "bloom filters summarize membership"))
        assert directory_generation(a) != g0
        await a.stop()

    asyncio.run(scenario())


def test_replica_update_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        b.publish(Document("d-b", "gossip spreads rumors epidemically"))
        # Until the rumor reaches a, its view (and generation) holds.
        assert directory_generation(a) == g0
        await _spread([a, b])
        assert a.replica_of(1) == b.peer.store.bloom_filter
        assert directory_generation(a) != g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())


def test_online_flip_moves_generation():
    async def scenario():
        net = LoopbackNetwork()
        a, b = _node(net, 0), _node(net, 1)
        await a.start()
        await b.start()
        await b.join(a.address)
        await _spread([a, b])
        g0 = directory_generation(a)
        a.peer.directory[1].online = False  # a failed contact's verdict
        assert directory_generation(a) != g0
        a.peer.directory[1].online = True
        assert directory_generation(a) == g0
        await a.stop()
        await b.stop()

    asyncio.run(scenario())
