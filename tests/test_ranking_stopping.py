"""Tests for the stopping policies (eq. 4 and baselines)."""

import pytest

from repro.constants import RankingConfig
from repro.ranking.stopping import AdaptiveStopping, FirstKStopping, NeverStop


class TestEquation4:
    def test_paper_formula(self):
        cfg = RankingConfig()
        # p = floor(2 + N/300) + 2*floor(k/50)
        assert cfg.stopping_p(0, 0) == 2
        assert cfg.stopping_p(300, 0) == 3
        assert cfg.stopping_p(900, 0) == 5
        assert cfg.stopping_p(0, 50) == 4
        assert cfg.stopping_p(0, 100) == 6
        assert cfg.stopping_p(600, 150) == 10

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            RankingConfig().stopping_p(-1, 10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RankingConfig(n_divisor=0)
        with pytest.raises(ValueError):
            RankingConfig(group_size=0)


class TestAdaptiveStopping:
    def test_does_not_stop_before_k_retrieved(self):
        policy = AdaptiveStopping()
        policy.reset(community_size=300, k=10)
        # Lots of unproductive peers but still fewer than k docs: keep going.
        for _ in range(20):
            policy.observe(contributed=False, total_retrieved=5)
        assert not policy.should_stop()

    def test_stops_after_p_unproductive(self):
        policy = AdaptiveStopping()
        policy.reset(community_size=0, k=10)  # p = 2
        policy.observe(contributed=True, total_retrieved=10)
        assert not policy.should_stop()
        policy.observe(contributed=False, total_retrieved=10)
        assert not policy.should_stop()
        policy.observe(contributed=False, total_retrieved=10)
        assert policy.should_stop()

    def test_contribution_resets_streak(self):
        policy = AdaptiveStopping()
        policy.reset(community_size=0, k=1)  # p = 2
        policy.observe(contributed=False, total_retrieved=1)
        policy.observe(contributed=True, total_retrieved=1)
        policy.observe(contributed=False, total_retrieved=1)
        assert not policy.should_stop()

    def test_p_property(self):
        policy = AdaptiveStopping()
        policy.reset(community_size=600, k=100)
        assert policy.p == 2 + 2 + 4

    def test_reset_clears_state(self):
        policy = AdaptiveStopping()
        policy.reset(0, 1)
        policy.observe(False, 1)
        policy.observe(False, 1)
        assert policy.should_stop()
        policy.reset(0, 1)
        assert not policy.should_stop()


class TestBaselines:
    def test_first_k_stops_at_k(self):
        policy = FirstKStopping()
        policy.reset(community_size=100, k=5)
        policy.observe(True, 4)
        assert not policy.should_stop()
        policy.observe(True, 5)
        assert policy.should_stop()

    def test_never_stop(self):
        policy = NeverStop()
        policy.reset(100, 5)
        for _ in range(1000):
            policy.observe(False, 10_000)
        assert not policy.should_stop()
