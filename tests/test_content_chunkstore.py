"""ChunkStore durability: crash-safe ingest, CRC-verified reads, recovery.

The contract under test is the kill -9 one: a locally published
document is either fully readable after restart or invisible — never a
manifest pointing at chunks that were never written.  The push receive
path is the deliberate exception (manifest first, chunks streamed
after), and its half-written state must surface as ``missing_chunks``,
not as corrupt reads.
"""

from __future__ import annotations

import zlib

import pytest

from repro.content import ChunkStore, ContentNotFound, build_manifest
from repro.store.chunkstore import chunk_bounds

DATA = b"planetp content plane chunked transfer payload " * 40  # ~1.9 KB
CHUNK = 256


def _filled(root=None) -> ChunkStore:
    store = ChunkStore(root)
    store.ingest("doc-a", 3, DATA, CHUNK)
    return store


class TestManifest:
    def test_build_manifest_shapes(self):
        m = build_manifest("doc-a", 3, DATA, CHUNK)
        assert m.total_size == len(DATA)
        assert m.num_chunks == (len(DATA) + CHUNK - 1) // CHUNK
        assert m.chunk_crcs[0] == zlib.crc32(DATA[:CHUNK])
        assert len(m.digest) == 32

    def test_empty_document_has_zero_chunks(self):
        m = build_manifest("empty", 1, b"", CHUNK)
        assert m.num_chunks == 0 and m.total_size == 0

    def test_chunk_bounds_final_chunk_short(self):
        assert chunk_bounds(10, 4, 2) == (8, 10)
        with pytest.raises(ValueError, match="outside"):
            chunk_bounds(10, 4, 3)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            build_manifest("d", 0, b"x", 0)


class TestIngestAndRead:
    def test_roundtrip_in_memory(self):
        store = _filled()
        assert store.read_doc("doc-a") == DATA
        assert store.is_complete("doc-a")
        assert store.bytes_held("doc-a") == len(DATA)

    def test_roundtrip_rooted_and_recovered(self, tmp_path):
        _filled(tmp_path)
        reopened = ChunkStore(tmp_path)
        assert reopened.doc_ids() == ["doc-a"]
        assert reopened.read_doc("doc-a") == DATA

    def test_empty_document_roundtrip(self, tmp_path):
        store = ChunkStore(tmp_path)
        store.ingest("empty", 1, b"", CHUNK)
        assert ChunkStore(tmp_path).read_doc("empty") == b""

    def test_republish_replaces_stale_chunks(self, tmp_path):
        store = _filled(tmp_path)
        new_data = b"rewritten" * 50
        store.ingest("doc-a", 3, new_data, CHUNK)
        assert store.read_doc("doc-a") == new_data
        assert ChunkStore(tmp_path).read_doc("doc-a") == new_data

    def test_ingest_is_idempotent_for_identical_content(self):
        store = _filled()
        m1 = store.get_manifest("doc-a")
        m2 = store.ingest("doc-a", 3, DATA, CHUNK)
        assert m1 == m2 and store.is_complete("doc-a")

    def test_unknown_doc_raises_typed_lookup_error(self):
        store = ChunkStore()
        with pytest.raises(ContentNotFound) as exc:
            store.get_manifest("ghost")
        # KeyError-compatible: pre-typed-error callers still catch it.
        assert isinstance(exc.value, KeyError)
        assert isinstance(exc.value, LookupError)
        assert "ghost" in str(exc.value)


class TestKillNineSemantics:
    def test_chunks_land_before_the_manifest(self, tmp_path, monkeypatch):
        """A crash at the manifest write leaves the doc invisible (but
        every chunk already durable) — never the reverse."""
        import repro.store.chunkstore as mod

        real_write = mod.atomic_write_bytes

        def die_on_manifest(path, data):
            if path.name == "manifest.bin":
                raise OSError("simulated kill -9 at the manifest write")
            real_write(path, data)

        monkeypatch.setattr(mod, "atomic_write_bytes", die_on_manifest)
        store = ChunkStore(tmp_path)
        with pytest.raises(OSError):
            store.ingest("doc-a", 3, DATA, CHUNK)
        monkeypatch.undo()
        # All chunk files were written; the manifest never was.
        (doc_dir,) = list(tmp_path.iterdir())
        chunk_files = sorted(p.name for p in doc_dir.iterdir())
        assert len(chunk_files) == (len(DATA) + CHUNK - 1) // CHUNK
        assert "manifest.bin" not in chunk_files
        # Recovery sees no document at all.
        assert ChunkStore(tmp_path).doc_ids() == []

    def test_torn_manifest_is_skipped_on_recovery(self, tmp_path):
        _filled(tmp_path)
        (doc_dir,) = list(tmp_path.iterdir())
        manifest_path = doc_dir / "manifest.bin"
        blob = manifest_path.read_bytes()
        manifest_path.write_bytes(blob[: len(blob) // 2])
        assert ChunkStore(tmp_path).doc_ids() == []

    def test_corrupt_chunk_reads_as_missing(self, tmp_path):
        store = _filled(tmp_path)
        reopened = ChunkStore(tmp_path)  # cold cache: reads hit disk
        (doc_dir,) = list(tmp_path.iterdir())
        chunk_path = doc_dir / "c00000001.bin"
        chunk_path.write_bytes(b"\x00" * CHUNK)
        with pytest.raises(ContentNotFound, match="corrupt"):
            reopened.get_chunk("doc-a", 1)
        assert reopened.missing_chunks("doc-a") == (1,)
        assert not reopened.is_complete("doc-a")
        assert reopened.bytes_held("doc-a") == len(DATA) - CHUNK
        # The warm store still serves from its verified in-memory copy.
        assert store.read_doc("doc-a") == DATA


class TestPushReceivePath:
    """Manifest-first writes: the replication receiver's half of the store."""

    def test_incomplete_push_is_visible_and_refillable(self):
        manifest = build_manifest("doc-a", 3, DATA, CHUNK)
        store = ChunkStore()
        store.put_manifest(manifest)
        store.put_chunk("doc-a", 0, DATA[:CHUNK])
        missing = store.missing_chunks("doc-a")
        assert missing == tuple(range(1, manifest.num_chunks))
        for index in missing:
            start, end = chunk_bounds(len(DATA), CHUNK, index)
            store.put_chunk("doc-a", index, DATA[start:end])
        assert store.read_doc("doc-a") == DATA

    def test_put_chunk_rejects_bytes_failing_the_contract(self):
        store = ChunkStore()
        store.put_manifest(build_manifest("doc-a", 3, DATA, CHUNK))
        with pytest.raises(ValueError, match="CRC"):
            store.put_chunk("doc-a", 0, b"\x00" * CHUNK)
        with pytest.raises(ValueError, match="bytes"):
            store.put_chunk("doc-a", 0, DATA[: CHUNK - 1])
        with pytest.raises(ValueError, match="outside"):
            store.put_chunk("doc-a", 999, DATA[:CHUNK])
        with pytest.raises(ContentNotFound):
            store.put_chunk("ghost", 0, b"")

    def test_remove_doc_reports_freed_bytes(self, tmp_path):
        store = _filled(tmp_path)
        assert store.remove_doc("doc-a") == len(DATA)
        assert store.doc_ids() == []
        assert store.remove_doc("doc-a") == 0
        assert list(tmp_path.iterdir()) == []
