"""Tests for the centralized TF×IDF baseline."""

import math

import pytest

from repro.ranking.tfidf import CentralizedTFIDF, RankedDoc


@pytest.fixture
def engine() -> CentralizedTFIDF:
    e = CentralizedTFIDF()
    e.add_document("d-gossip", {"gossip": 3, "protocol": 1})
    e.add_document("d-bloom", {"bloom": 2, "filter": 2})
    e.add_document("d-both", {"gossip": 1, "bloom": 1, "filter": 1})
    e.add_document("d-noise", {"unrelated": 5})
    return e


class TestScoring:
    def test_idf_values(self, engine):
        # 'gossip' occurs 4 times in a 4-document collection.
        assert engine.idf("gossip") == pytest.approx(math.log(1 + 4 / 4))
        assert engine.idf("never-seen") == 0.0

    def test_matching_docs_scored(self, engine):
        scores = engine.score_documents(["gossip"])
        assert set(scores) == {"d-gossip", "d-both"}
        assert scores["d-gossip"] > scores["d-both"]

    def test_multi_term_union(self, engine):
        scores = engine.score_documents(["gossip", "bloom"])
        assert set(scores) == {"d-gossip", "d-bloom", "d-both"}

    def test_unknown_term_ignored(self, engine):
        assert engine.score_documents(["never-seen"]) == {}

    def test_duplicate_query_terms_counted_once(self, engine):
        once = engine.score_documents(["gossip"])
        twice = engine.score_documents(["gossip", "gossip"])
        assert once == twice


class TestRanking:
    def test_rank_order_and_k(self, engine):
        top = engine.rank(["gossip", "bloom", "filter"], k=2)
        assert len(top) == 2
        assert top[0].score >= top[1].score

    def test_rank_k_zero(self, engine):
        assert engine.rank(["gossip"], k=0) == []

    def test_rank_k_negative(self, engine):
        with pytest.raises(ValueError):
            engine.rank(["gossip"], k=-1)

    def test_deterministic_tiebreak(self):
        e = CentralizedTFIDF()
        e.add_document("b", {"tt": 1})
        e.add_document("a", {"tt": 1})
        top = e.rank(["tt"], k=2)
        assert [r.doc_id for r in top] == ["a", "b"]

    def test_length_normalization_prefers_focused_docs(self):
        e = CentralizedTFIDF()
        e.add_document("short", {"zz": 1})
        e.add_document("long", {"zz": 1, **{f"pad{i}": 1 for i in range(99)}})
        top = e.rank(["zz"], k=2)
        assert top[0].doc_id == "short"

    def test_peers_required(self, engine):
        ranked = [RankedDoc("d-gossip", 1.0), RankedDoc("d-both", 0.5)]
        owners = {"d-gossip": 3, "d-both": 3, "d-bloom": 1}
        assert engine.peers_required(ranked, owners) == {3}

    def test_ranked_doc_validation(self):
        with pytest.raises(ValueError):
            RankedDoc("d", -0.1)
