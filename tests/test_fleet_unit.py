"""The fleet harness's pure parts: ready parsing, scenarios, invariants.

No sockets, no subprocesses — everything here must hold before a single
node is spawned, and these are the pieces a scale-run failure message is
built from (so they need to be right when nothing else is).
"""

from __future__ import annotations

import math

import pytest

from repro.fleet import (
    FleetReport,
    FleetSpec,
    build_scenario,
    convergence_bound_s,
    gossip_bytes_per_round,
    parse_ready,
    recall_at_k,
)
from repro.text.analyzer import Analyzer

# -- the ready line -----------------------------------------------------------


def test_parse_ready_roundtrip():
    info = parse_ready(
        "PLANETP_READY peer=17 addr=127.0.0.1:45123 pid=9931 members=25\n"
    )
    assert info is not None
    assert info.peer_id == 17
    assert info.address == "127.0.0.1:45123"
    assert info.pid == 9931
    assert info.members == 25


@pytest.mark.parametrize(
    "line",
    [
        "peer 17 serving at 127.0.0.1:45123",  # the human-oriented line
        "published 3 documents from ./docs",
        "PLANETP_READY peer=17 addr=127.0.0.1:45123",  # truncated
        "warm rejoin: 24 members from the checkpoint",
        "",
    ],
)
def test_parse_ready_rejects_other_output(line):
    assert parse_ready(line) is None


# -- scenario generation ------------------------------------------------------


def test_scenario_is_reproducible_from_the_seed():
    spec = FleetSpec(num_nodes=12, seed=99)
    a, b = build_scenario(spec), build_scenario(spec)
    assert a == b
    different = build_scenario(FleetSpec(num_nodes=12, seed=100))
    assert different.corpus != a.corpus


def test_scenario_shape_matches_the_spec():
    spec = FleetSpec(
        num_nodes=10, seed=3, docs_per_node=2, num_queries=4, num_waves=2,
        docs_per_wave=3, num_crashes=2,
    )
    scenario = build_scenario(spec)
    assert len(scenario.corpus) == 10
    assert all(len(docs) == 2 for docs in scenario.corpus)
    assert len(scenario.queries) == 4
    assert len(set(scenario.queries)) == 4
    assert len(scenario.waves) == 2
    assert all(len(w.publishes) == 3 for w in scenario.waves)
    assert len(scenario.crash_pids) == 2
    assert scenario.durable_pids == scenario.crash_pids
    assert all(0 <= pid < 10 for pid in scenario.crash_pids)


def test_scenario_doc_ids_are_fleet_unique():
    scenario = build_scenario(FleetSpec(num_nodes=20, seed=5))
    ids = [doc.doc_id for docs in scenario.corpus for doc in docs]
    ids += [doc.doc_id for w in scenario.waves for _pid, doc in w.publishes]
    assert len(ids) == len(set(ids))


def test_scenario_terms_survive_the_analyzer():
    """Every generated token must pass tokenize/stopword/stem unchanged,
    or fleet queries would not match what fleet corpora indexed."""
    analyzer = Analyzer()
    scenario = build_scenario(FleetSpec(num_nodes=6, seed=11))
    for docs in scenario.corpus:
        for doc in docs:
            assert analyzer.analyze(doc.text) == doc.text.split()
    for query in scenario.queries:
        assert analyzer.analyze_query(query) == query.split()
    markers = [w.query for w in scenario.waves]
    assert len(set(markers)) == len(markers)
    for wave in scenario.waves:
        assert analyzer.analyze_query(wave.query) == [wave.query]
        # The marker leads every wave document, and nothing else uses it.
        assert all(doc.text.startswith(wave.query) for _p, doc in wave.publishes)
        for docs in scenario.corpus:
            assert all(wave.query not in doc.text for doc in docs)


def test_sentinel_doc_belongs_to_its_node():
    scenario = build_scenario(FleetSpec(num_nodes=8, seed=2, num_crashes=3))
    for pid in scenario.crash_pids:
        assert scenario.sentinel_doc(pid) == scenario.corpus[pid][0]


def test_spec_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        FleetSpec(num_nodes=1)
    with pytest.raises(ValueError):
        FleetSpec(num_nodes=5, num_crashes=5)
    with pytest.raises(ValueError):
        FleetSpec(num_nodes=5, gossip_interval_s=0.0)
    with pytest.raises(ValueError):
        FleetSpec(num_nodes=5, docs_per_node=0)


# -- invariants ---------------------------------------------------------------


def test_convergence_bound_grows_logarithmically():
    b25 = convergence_bound_s(25, 1.0, slack_s=0.0)
    b500 = convergence_bound_s(500, 1.0, slack_s=0.0)
    b1000 = convergence_bound_s(1000, 1.0, slack_s=0.0)
    assert b25 < b500 < b1000
    # O(log n): doubling the community adds a constant number of rounds.
    assert b1000 - b500 == pytest.approx(3.0 * (math.log2(1000) - math.log2(500)))
    # And the bound scales linearly with the gossip interval.
    assert convergence_bound_s(500, 2.0, slack_s=0.0) == pytest.approx(2.0 * b500)
    with pytest.raises(ValueError):
        convergence_bound_s(0, 1.0)
    with pytest.raises(ValueError):
        convergence_bound_s(10, 0.0)


def test_recall_at_k():
    assert recall_at_k(["a", "b", "c", "d"], ["a", "b", "c", "d"]) == 1.0
    assert recall_at_k(["a", "b", "c", "d"], ["a", "b", "x", "y"]) == 0.5
    assert recall_at_k([], ["anything"]) == 1.0  # nothing to miss
    assert recall_at_k(["a"], []) == 0.0


def test_gossip_bytes_per_round_from_samples():
    samples = {
        "planetp_node_gossip_real_bytes_total": 1200.0,
        "planetp_node_gossip_rounds_total": 40.0,
    }
    assert gossip_bytes_per_round(samples) == 30.0
    assert gossip_bytes_per_round({}) == 0.0  # a node scraped before round 1


def _clean_report(**overrides) -> FleetReport:
    base = dict(
        num_nodes=25, seed=0, launch_s=10.0, convergence_s=5.0,
        convergence_bound_s=20.0, recall=1.0, recall_min=1.0, stale_serves=0,
        wave_propagation_s=[1.0], crash_pids=[3], crash_search_ok=True,
        recovery_s=2.0, recall_after_recovery=1.0,
    )
    base.update(overrides)
    return FleetReport(**base)


def test_report_with_no_violations_is_clean():
    assert _clean_report().violations() == []


@pytest.mark.parametrize(
    ("overrides", "needle"),
    [
        ({"convergence_s": 30.0}, "Fig.-2 bound"),
        ({"recall": 0.5, "recall_min": 0.1}, "recall 0.500"),
        ({"stale_serves": 2}, "stale serve"),
        ({"crash_search_ok": False}, "while crashed members were down"),
        ({"recall_after_recovery": 0.5}, "post-recovery recall"),
        ({"leaked_processes": 1}, "leaked"),
        ({"leaked_ports": 3}, "still accepting"),
    ],
)
def test_report_violations_fire_per_criterion(overrides, needle):
    violations = _clean_report(**overrides).violations()
    assert len(violations) == 1
    assert needle in violations[0]


def test_report_recovery_recall_ignored_without_a_crash_schedule():
    report = _clean_report(crash_pids=[], recall_after_recovery=0.0)
    assert report.violations() == []


def test_report_roundtrips_to_plain_json():
    import json

    report = _clean_report()
    rebuilt = FleetReport(**json.loads(json.dumps(report.to_dict())))
    assert rebuilt == report
