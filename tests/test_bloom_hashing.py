"""Tests for the FNV-based Bloom filter hash family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.hashing import HashFamily, fnv1a_64


class TestFnv:
    def test_deterministic(self):
        assert fnv1a_64(b"planetp") == fnv1a_64(b"planetp")

    def test_seed_changes_hash(self):
        assert fnv1a_64(b"planetp", 0) != fnv1a_64(b"planetp", 1)

    def test_empty_input_stable(self):
        # The empty string hashes to a fixed (finalized) value.
        assert fnv1a_64(b"", 0) == fnv1a_64(b"", 0)
        assert fnv1a_64(b"", 0) != fnv1a_64(b"", 1)

    def test_sequential_strings_decorrelated(self):
        # The avalanche finalizer must break FNV's linearity: hashes of
        # sequential strings should not form an arithmetic progression.
        h = [fnv1a_64(f"x{i}".encode()) for i in range(4)]
        deltas = {h[i + 1] - h[i] for i in range(3)}
        assert len(deltas) == 3

    def test_64_bit_range(self):
        for data in (b"", b"a", b"longer input value"):
            assert 0 <= fnv1a_64(data) < 2**64


class TestHashFamily:
    def test_positions_shape_and_range(self):
        family = HashFamily(1024, 3)
        pos = family.positions("term")
        assert pos.shape == (3,)
        assert ((0 <= pos) & (pos < 1024)).all()

    def test_positions_deterministic_across_instances(self):
        a = HashFamily(4096, 2)
        b = HashFamily(4096, 2)
        assert np.array_equal(a.positions("gossip"), b.positions("gossip"))

    def test_positions_many_matches_single(self):
        family = HashFamily(4096, 4)
        terms = ["alpha", "beta", "gamma"]
        many = family.positions_many(terms)
        assert many.shape == (3, 4)
        for i, term in enumerate(terms):
            assert np.array_equal(many[i], family.positions(term))

    def test_positions_many_empty(self):
        family = HashFamily(64, 2)
        assert family.positions_many([]).shape == (0, 2)

    def test_different_terms_differ(self):
        family = HashFamily(2**20, 2)
        assert not np.array_equal(family.positions("a1"), family.positions("a2"))

    def test_equality(self):
        assert HashFamily(64, 2) == HashFamily(64, 2)
        assert HashFamily(64, 2) != HashFamily(64, 3)
        assert HashFamily(64, 2) != HashFamily(128, 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashFamily(0, 2)
        with pytest.raises(ValueError):
            HashFamily(64, 0)

    def test_spread_is_roughly_uniform(self):
        family = HashFamily(16, 1)
        counts = np.zeros(16)
        for i in range(4000):
            counts[family.positions(f"term-{i}")[0]] += 1
        # Each bucket should get ~250; allow generous slack.
        assert counts.min() > 150 and counts.max() < 400


@given(st.text(min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_positions_stable(term):
    """Any unicode term hashes deterministically and in range."""
    family = HashFamily(977, 2)  # prime-size filter
    p1 = family.positions(term)
    p2 = family.positions(term)
    assert np.array_equal(p1, p2)
    assert ((0 <= p1) & (p1 < 977)).all()
