"""Chaos suite: the gossip layer earns its keep under injected failure.

Every scenario is reproducible from the seed it prints: the FaultPlan,
every NetworkPeer RNG, and the virtual clock are all derived from it, and
latency is awaited in virtual time, so reruns are bit-for-bit identical.
"""

import asyncio

import pytest

from repro.constants import GossipConfig
from repro.net.chaos import (
    EdgeFaults,
    FaultPlan,
    FaultyTransport,
    VirtualClock,
    Window,
)
from repro.net.transport import LoopbackNetwork, TransportError
from repro.text.document import Document
from tests.chaos_harness import ChaosCommunity

pytestmark = pytest.mark.chaos

SEED = 1337


# ---------------------------------------------------------------------------
# FaultPlan / FaultyTransport mechanics
# ---------------------------------------------------------------------------


def test_edge_faults_validate():
    with pytest.raises(ValueError):
        EdgeFaults(drop_rate=1.5)
    with pytest.raises(ValueError):
        EdgeFaults(latency_min_s=0.2, latency_max_s=0.1)
    with pytest.raises(ValueError):
        Window(start=5.0, end=1.0)


def test_fault_plan_decisions_are_reproducible_per_edge():
    def outcomes(seed: int) -> list[tuple[bool, bool, float]]:
        plan = FaultPlan(seed=seed, default=EdgeFaults(drop_rate=0.4, latency_max_s=0.3))
        return [
            (d.drop, d.reset, d.delay_s)
            for _ in range(50)
            for d in [plan.decide("peer:0", "peer:1", 100)]
        ]

    assert outcomes(7) == outcomes(7)
    assert outcomes(7) != outcomes(8)


def test_fault_plan_edges_are_independent_streams():
    # Interleaving traffic on another edge must not perturb this edge.
    plan_a = FaultPlan(seed=3, default=EdgeFaults(drop_rate=0.5))
    plan_b = FaultPlan(seed=3, default=EdgeFaults(drop_rate=0.5))
    a_only = [plan_a.decide("x", "y", 10).drop for _ in range(30)]
    b_mixed = []
    for _ in range(30):
        plan_b.decide("x", "z", 10)  # extra traffic on a different edge
        b_mixed.append(plan_b.decide("x", "y", 10).drop)
    assert a_only == b_mixed


def test_partition_blocks_then_heals():
    clock = VirtualClock()
    plan = FaultPlan(seed=0, clock=clock)
    plan.partition(["peer:0"], ["peer:1"], start=10.0, end=20.0)
    assert plan.decide("peer:0", "peer:1", 1).blocked is None
    clock.advance(10.0)
    assert "partitioned" in plan.decide("peer:0", "peer:1", 1).blocked
    assert "partitioned" in plan.decide("peer:1", "peer:0", 1).blocked  # 2-way
    clock.advance(10.0)
    assert plan.decide("peer:0", "peer:1", 1).blocked is None  # healed


def test_asymmetric_partition_blocks_one_direction():
    plan = FaultPlan(seed=0)
    plan.partition(["a"], ["b"], symmetric=False)
    assert plan.decide("a", "b", 1).blocked is not None
    assert plan.decide("b", "a", 1).blocked is None


def test_crash_window_blocks_both_directions():
    clock = VirtualClock()
    plan = FaultPlan(seed=0, clock=clock)
    plan.crash("peer:3", start=5.0, end=8.0)
    clock.advance(6.0)
    assert "down" in plan.decide("peer:0", "peer:3", 1).blocked
    assert "down" in plan.decide("peer:3", "peer:0", 1).blocked
    clock.advance(3.0)
    assert plan.decide("peer:0", "peer:3", 1).blocked is None


def test_mix_bandwidth_assignment_is_deterministic_and_slows_requests():
    addresses = [f"peer:{i}" for i in range(40)]
    assigned = FaultPlan(seed=9).assign_mix_bandwidth(addresses)
    assert assigned == FaultPlan(seed=9).assign_mix_bandwidth(addresses)
    assert len(set(assigned.values())) > 1  # the MIX has several link classes
    plan = FaultPlan(seed=9)
    plan.set_bandwidth("peer:0", 1000.0)  # 1000 B/s access link
    delay = plan.decide("peer:0", "peer:1", 500).delay_s
    assert delay == pytest.approx(0.5)


def test_faulty_transport_drop_and_reset_semantics():
    async def scenario():
        calls = []

        async def handler(body: bytes) -> bytes:
            calls.append(body)
            return b"ok"

        net = LoopbackNetwork()
        server = net.transport()
        await server.serve("peer:1", handler)

        # drop: the request never reaches the handler.
        plan = FaultPlan(seed=0, default=EdgeFaults(drop_rate=1.0))
        dropper = FaultyTransport(net.transport(), plan, name="peer:0")
        with pytest.raises(TransportError, match="dropped"):
            await dropper.request("peer:1", b"lost")
        assert calls == [] and plan.dropped == 1

        # reset: delivered (handler ran, state mutated) but the reply is lost.
        plan = FaultPlan(seed=0, default=EdgeFaults(reset_rate=1.0))
        resetter = FaultyTransport(net.transport(), plan, name="peer:0")
        with pytest.raises(TransportError, match="reset"):
            await resetter.request("peer:1", b"delivered")
        assert calls == [b"delivered"] and plan.resets == 1

    asyncio.run(scenario())


def test_virtual_clock_sleep_advances_without_wall_time():
    async def scenario():
        clock = VirtualClock()
        await clock.sleep(3600.0)
        assert clock() == 3600.0

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the acceptance scenario: drops + jitter + a healing 2-way partition
# ---------------------------------------------------------------------------

CHAOS_END = 6000.0


async def _acceptance_run(seed: int) -> ChaosCommunity:
    """10 peers under 20% drops, 50-500 ms jitter, one healing partition."""
    community = ChaosCommunity(10, seed=seed)
    community.plan.set_default(
        EdgeFaults(drop_rate=0.2, latency_min_s=0.05, latency_max_s=0.5),
        start=0.0,
        end=CHAOS_END,
    )
    community.plan.partition(
        [community.address(p) for p in range(5)],
        [community.address(p) for p in range(5, 10)],
        start=600.0,
        end=1800.0,  # the partition heals here
    )
    await community.boot()
    for pid in range(10):
        community.publish(
            pid, Document(f"doc-{pid}", f"peer {pid} publishes gossip shard {pid}")
        )
    community.publish(0, Document("epidemic", "epidemic gossip protocols converge"))
    community.publish(7, Document("bloom", "bloom filters summarize gossip state"))
    # Ride out the chaos window, then allow a quiet tail to converge.
    await community.run_rounds(int(CHAOS_END / community.config.base_interval_s))
    await community.converge(max_rounds=150)
    return community


def test_chaos_acceptance_converges_and_matches_oracle():
    print(f"chaos acceptance seed: {SEED}")

    async def scenario():
        community = await _acceptance_run(SEED)
        # The plan really did hurt: losses, resets aside, and a partition.
        assert community.plan.dropped > 50
        assert community.plan.blocked > 0
        assert community.plan.delivered > 0
        assert community.plan.delay_total_s > 0.0
        community.assert_converged()
        # Ranked search from both sides of the healed partition agrees
        # exactly with the in-process oracle on the same corpus.
        await community.assert_search_parity(0, "gossip bloom filters", k=5)
        await community.assert_search_parity(7, "epidemic gossip", k=4)
        for pid in community.nodes:
            await community.nodes[pid].stop()
        return community

    asyncio.run(scenario())


def test_chaos_acceptance_is_deterministic():
    async def fingerprint() -> tuple:
        community = await _acceptance_run(SEED)
        fp = (
            community.clock(),
            community.plan.dropped,
            community.plan.blocked,
            community.plan.delivered,
            round(community.plan.delay_total_s, 9),
            sorted(node.digest for node in community.nodes.values()),
        )
        for pid in community.nodes:
            await community.nodes[pid].stop()
        return fp

    first = asyncio.run(fingerprint())
    second = asyncio.run(fingerprint())
    assert first == second, f"seed {SEED} did not reproduce"


# ---------------------------------------------------------------------------
# fault accounting: registry counters equal the plan's audit, exactly
# ---------------------------------------------------------------------------


async def _accounting_run(seed: int, faulty: bool) -> ChaosCommunity:
    """6 peers, moderate drops/resets/jitter (or a clean control run)."""
    community = ChaosCommunity(6, seed=seed)
    fault_end = 40 * community.config.base_interval_s
    if faulty:
        community.plan.set_default(
            EdgeFaults(
                drop_rate=0.15,
                reset_rate=0.05,
                latency_min_s=0.01,
                latency_max_s=0.2,
            ),
            start=0.0,
            end=fault_end,  # quiet tail afterwards so convergence can stick
        )
    await community.boot()
    for pid in range(6):
        community.publish(
            pid, Document(f"doc-{pid}", f"fault accounting shard {pid}")
        )
    await community.run_rounds(40)
    await community.converge(max_rounds=200)
    for pid in community.nodes:
        await community.nodes[pid].stop()
    return community


@pytest.mark.parametrize("seed", [1337, 20260806])
def test_chaos_registry_accounting_matches_plan_exactly(seed):
    """Per-node ``chaos.injected_*`` counters, summed over the community,
    must equal the FaultPlan's own audit — the same faults, counted at
    both ends of the injection."""

    async def scenario():
        community = await _accounting_run(seed, faulty=True)
        plan = community.plan
        assert plan.dropped > 0, f"seed {seed}: plan injected no drops"
        assert plan.resets > 0, f"seed {seed}: plan injected no resets"
        assert community.metric_sum("chaos", "injected_drops_total") == plan.dropped
        assert community.metric_sum("chaos", "injected_resets_total") == plan.resets
        assert community.metric_sum("chaos", "injected_blocked_total") == plan.blocked
        assert community.metric_sum(
            "chaos", "injected_delay_seconds_total"
        ) == pytest.approx(plan.delay_total_s)
        # The retry machinery engaged: injected failures surfaced as
        # contact failures the gossip layer had to ride out.
        assert community.metric_sum("node", "contact_failures_total") > 0
        # Every node's trace saw at least one fault_injected event.
        fault_events = [
            e
            for reg in community.registries.values()
            for e in reg.trace.events("fault_injected")
        ]
        assert fault_events, f"seed {seed}: no fault_injected trace events"
        assert {e.fields["fault"] for e in fault_events} >= {"drops", "resets"}

    asyncio.run(scenario())


def test_chaos_registry_zero_fault_control():
    """With no faults scripted, every injected-fault counter is zero and
    no retries fire — the counters measure the plan, not noise."""

    async def scenario():
        community = await _accounting_run(SEED, faulty=False)
        plan = community.plan
        assert plan.dropped == 0 and plan.resets == 0 and plan.blocked == 0
        assert community.metric_sum("chaos", "injected_drops_total") == 0.0
        assert community.metric_sum("chaos", "injected_resets_total") == 0.0
        assert community.metric_sum("chaos", "injected_blocked_total") == 0.0
        assert community.metric_sum("node", "contact_failures_total") == 0.0
        for reg in community.registries.values():
            assert reg.trace.events("fault_injected") == []

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# churn soak: scripted crash + rejoin, T_Dead expiry, rejoin healing
# ---------------------------------------------------------------------------


def test_churn_soak_crash_expiry_and_rejoin():
    print(f"churn soak seed: {SEED}")
    t_dead = 600.0

    async def scenario():
        community = ChaosCommunity(
            8, seed=SEED, gossip_config=GossipConfig(t_dead_s=t_dead)
        )
        await community.boot()
        for pid in range(8):
            community.publish(pid, Document(f"d{pid}", f"churn corpus shard {pid}"))
        await community.converge()

        # Two peers crash silently (Section 3: departures are unannounced).
        await community.crash(2)
        await community.crash(5)
        # Survivors keep publishing while the dead are down.
        community.publish(0, Document("mid-churn", "published during the outage"))
        await community.converge()

        # Peer 2 rejoins before T_Dead; its REJOIN rumor restores it.
        await community.restart(2)
        await community.converge()
        for pid in sorted(community.alive):
            if pid == 2:
                continue
            entry = community.nodes[pid].peer.directory[2]
            assert entry.online, f"peer {pid} did not re-admit the rejoiner"
        # The rejoiner caught up on what it missed while down.
        assert community.nodes[2].replica_of(0) == (
            community.nodes[0].peer.store.bloom_filter
        )

        # Peer 5 stays dead: every survivor expires it after T_Dead.
        def five_is_gone() -> bool:
            return all(
                5 not in community.nodes[pid].peer.directory
                for pid in community.alive
            )

        await community.run_rounds(200, until=five_is_gone)
        assert five_is_gone(), f"seed {SEED}: peer 5 survived T_Dead"
        community.assert_converged()
        assert sorted(community.alive) == [0, 1, 2, 3, 4, 6, 7]
        for pid in community.alive:
            await community.nodes[pid].stop()

    asyncio.run(scenario())
