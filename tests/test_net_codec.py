"""The wire codec round-trips the whole message inventory and rejects junk."""

import struct

import pytest

from repro.constants import NET_CODEC_VERSION
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    ANALYTICS_MESSAGES,
    CONTENT_MESSAGES,
    GOSSIP_MESSAGES,
    PARTIALVIEW_MESSAGES,
    SERVE_MESSAGES,
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    BrowseRequest,
    BrowseResponse,
    ChunkPush,
    ChunkReply,
    ChunkRequest,
    ContentManifest,
    JoinRequest,
    JoinSnapshot,
    ManifestAck,
    ManifestPush,
    ManifestReply,
    ManifestRequest,
    Notify,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    ShardMatchQuery,
    ShardMatchResponse,
    ShardSummaryEntry,
    ShardSummaryReply,
    ShardSummaryRequest,
    SketchEntry,
    SketchExchange,
    SketchReply,
    SnapshotEntry,
    SubscribeAck,
    SubscribeRequest,
    TopTermsReply,
    TopTermsRequest,
    Unsubscribe,
    ViewExchange,
    WireRumor,
)
from repro.net.codec import (
    CodecError,
    ErrorReply,
    ExhaustiveQuery,
    ExhaustiveResponse,
    PublishAck,
    PublishRequest,
    RankedQuery,
    RankedResponse,
    SnippetFetch,
    SnippetResponse,
    StatsRequest,
    StatsResponse,
    decode,
    decode_member_payload,
    decode_update_payload,
    encode,
    encode_member_payload,
    encode_update_payload,
)

RECORD = PeerRecord(7, "10.0.0.7:9301", True, 3)
RUMOR = WireRumor((7 << 32) | 1, RumorKind.BF_UPDATE, 7, 12.5, b"\x01\x02\x03")
MANIFEST = ContentManifest(
    "n0007-d1", 7, 150_000, 65536, b"\xab" * 32, (0xDEADBEEF, 0xCAFEF00D, 0x0BADF00D)
)
SKETCH = SketchEntry(
    7, 3, (("gossip", 42), ("bloom", 17), ("épidémie", 1)), (("n0007-d1", 9),)
)

MESSAGES = [
    RumorPush(((7 << 32) | 1, (8 << 32) | 2)),
    RumorReply(((7 << 32) | 1,), ((9 << 32) | 5, (9 << 32) | 6)),
    RumorData((RUMOR, WireRumor(42, RumorKind.JOIN, 2, 0.0, b"payload"))),
    AERequest(0xDEADBEEFCAFEF00D),
    AENothing(),
    AERecent(((7 << 32) | 1, 42), 17),
    AESummary((RECORD, PeerRecord(8, "10.0.0.8:9301", False, 0)), (42,)),
    PullRequest(((7 << 32) | 1,)),
    PullRequest(()),
    JoinRequest(RECORD, b"compressed-bloom", (7 << 32) | 9, 99.25),
    JoinSnapshot(
        (SnapshotEntry(RECORD, b"bloom-bytes"), SnapshotEntry(PeerRecord(8, "h:1", True, 0), b"")),
        ((7 << 32) | 1, 42),
    ),
    RankedQuery(("gossip", "peers"), (("gossip", 1.5), ("peers", 0.25)), 10),
    RankedResponse((("doc-a", 3.5), ("doc-b", 1.0))),
    ExhaustiveQuery(("bloom", "filter")),
    ExhaustiveResponse(("doc-a", "doc-b", "doc-c")),
    SnippetFetch("doc-a"),
    SnippetResponse(True, "doc-a", "the full text éè"),
    SnippetResponse(False, "missing", ""),
    PublishRequest("doc-a", "the injected document text éè"),
    PublishRequest("empty", ""),
    PublishAck(True, "doc-a", 4),
    PublishAck(False, "doc-a", 0),
    StatsRequest(),
    StatsResponse(
        7,
        120.5,
        (
            ("planetp_node_gossip_rounds_total", 42.0),
            ("planetp_transport_bytes_sent_total", 18231.0),
        ),
    ),
    StatsResponse(0, 0.0, ()),
    SubscribeRequest(0, ("gossip", "bloom"), "10.0.0.9:9400", 42.5),
    SubscribeRequest(12, (), "h:1", 0.0),
    SubscribeAck(12, True, ""),
    SubscribeAck(0, False, "queue full"),
    Notify(12, 7, "doc-a", "the matching document text éè"),
    Unsubscribe(12),
    ShardSummaryRequest((0, 3, 7), True),
    ShardSummaryRequest((), False),
    ShardSummaryRequest((), False, ((0, 0xDEADBEEF), (3, 0xCAFEF00D))),
    ShardSummaryReply(
        (
            ShardSummaryEntry(0, 12, 5, b"summary-bloom"),
            ShardSummaryEntry(3, 0, 0, b""),
            ShardSummaryEntry(5, 20, 9, b"encoded-bloom-diff", True),
        ),
        (SnapshotEntry(RECORD, b"bloom-bytes"),),
    ),
    ShardSummaryReply((), ()),
    ViewExchange((RECORD, PeerRecord(8, "10.0.0.8:9301", False, 0)), 16),
    ViewExchange((), 0),
    ShardMatchQuery(3, ("gossip", "peers")),
    ShardMatchResponse(3, ((7, 0b11), (8, 0b01))),
    ShardMatchResponse(0, ()),
    ManifestRequest("n0007-d1"),
    ManifestReply(True, MANIFEST, ("10.0.0.7:9301", "10.0.0.8:9301")),
    ManifestReply(False, None, ("10.0.0.9:9301",)),
    ManifestReply(False, None, ()),
    ChunkRequest("n0007-d1", 2, 4096),
    ChunkReply(True, "n0007-d1", 2, 4096, 65536, b"\x5a" * 512),
    ChunkReply(False, "n0007-d1", 2, 0, 0, b""),
    ManifestPush(MANIFEST),
    ManifestAck("n0007-d1", True, (0, 2)),
    ManifestAck("n0007-d1", True, ()),
    ManifestAck("n0007-d1", False, ()),
    ChunkPush("n0007-d1", 1, b"\xa5" * 256),
    SketchExchange(
        (SKETCH, SketchEntry(8, 1, (), ())),
        ((7, 3), (8, 1), (9, 12)),
    ),
    SketchExchange((), ((7, 3),)),
    SketchReply((SKETCH,), ((7, 3), (8, 1))),
    SketchReply((), ()),
    TopTermsRequest(10),
    TopTermsReply(25, (("gossip", 412), ("bloom", 230), ("épidémie", 8))),
    TopTermsReply(0, ()),
    BrowseRequest("/gossip/protocols", 20),
    BrowseResponse(
        True,
        "/gossip/protocols",
        42,
        (
            ("n0007-d1", "planetp://n0007-d1", 17),
            ("n0008-d2", "planetp://n0008-d2", 3),
        ),
    ),
    BrowseResponse(False, "/no/such", 0, ()),
    ErrorReply("bad frame: truncated"),
]


@pytest.mark.parametrize("msg", MESSAGES, ids=lambda m: type(m).__name__)
def test_roundtrip(msg):
    body = encode(msg)
    assert body[0] == NET_CODEC_VERSION
    assert decode(body) == msg


def test_every_gossip_type_is_covered():
    tested = {type(m) for m in MESSAGES}
    assert set(GOSSIP_MESSAGES) <= tested


def test_every_serve_type_is_covered():
    tested = {type(m) for m in MESSAGES}
    assert set(SERVE_MESSAGES) <= tested


def test_every_partialview_type_is_covered():
    tested = {type(m) for m in MESSAGES}
    assert set(PARTIALVIEW_MESSAGES) <= tested


def test_every_content_type_is_covered():
    tested = {type(m) for m in MESSAGES}
    assert set(CONTENT_MESSAGES) <= tested


def test_every_analytics_type_is_covered():
    tested = {type(m) for m in MESSAGES}
    assert set(ANALYTICS_MESSAGES) <= tested


def test_found_manifest_reply_requires_a_manifest():
    with pytest.raises(CodecError, match="carries no manifest"):
        encode(ManifestReply(True, None, ()))


def test_oversized_shard_match_query_rejected():
    # The hit bitmask is a u64, so both sides refuse >64 terms outright:
    # the encoder won't emit such a frame ...
    terms = tuple(f"term{i}" for i in range(65))
    with pytest.raises(CodecError, match="exceeds"):
        encode(ShardMatchQuery(1, terms))
    # ... and the decoder rejects a forged one before reading any term.
    frame = bytes([NET_CODEC_VERSION, 35]) + struct.pack(">IH", 1, 65)
    with pytest.raises(CodecError, match="exceeds"):
        decode(frame)


def test_notify_carries_large_documents():
    # doc text travels as a u32 blob, not a u16 string, so >64 KiB works
    msg = Notify(1, 2, "big-doc", "x" * 70_000)
    assert decode(encode(msg)) == msg


def test_unknown_version_rejected():
    body = bytes([NET_CODEC_VERSION + 1]) + encode(AENothing())[1:]
    with pytest.raises(CodecError, match="version"):
        decode(body)


def test_unknown_type_byte_rejected():
    body = bytes([NET_CODEC_VERSION, 255])
    with pytest.raises(CodecError, match="type byte"):
        decode(body)


def test_trailing_bytes_rejected():
    with pytest.raises(CodecError, match="trailing"):
        decode(encode(AENothing()) + b"\x00")


def test_truncated_frame_rejected():
    body = encode(RumorData((RUMOR,)))
    with pytest.raises(CodecError, match="truncated"):
        decode(body[:-2])


def test_non_message_rejected():
    with pytest.raises(CodecError, match="not a wire message"):
        encode({"not": "a message"})


def test_oversized_rumor_id_rejected():
    with pytest.raises(CodecError, match="6 bytes"):
        encode(RumorPush((1 << 48,)))


def test_oversized_string_rejected():
    with pytest.raises(CodecError, match="64 KiB"):
        encode(SnippetFetch("x" * 70_000))


def test_unknown_rumor_kind_rejected():
    body = bytearray(encode(RumorData((RUMOR,))))
    # kind byte sits after version, type, count (u32), and rid (6 bytes)
    kind_at = 1 + 1 + 4 + 6
    body[kind_at] = 200
    with pytest.raises(CodecError, match="kind"):
        decode(bytes(body))


def test_member_payload_roundtrip():
    payload = encode_member_payload(RECORD, b"bloom")
    assert decode_member_payload(payload) == (RECORD, b"bloom")


def test_update_payload_roundtrip():
    payload = encode_update_payload(5, b"golomb-diff")
    assert decode_update_payload(payload) == (5, b"golomb-diff")
