"""Tests for the gossip building blocks: rumors, directory views,
interval policy, message sizing, and target selection."""

import numpy as np
import pytest

from repro.constants import GossipConfig, WireSizes
from repro.gossip.bandwidth_aware import BandwidthAwareSelector, FlatSelector
from repro.gossip.directory import DirectoryView
from repro.gossip.intervals import IntervalPolicy
from repro.gossip.messages import MessageSizer
from repro.gossip.rumor import Rumor, RumorKind, RumorRegistry
from repro.utils.rng import make_rng


class TestRumorRegistry:
    def test_unique_ids(self):
        reg = RumorRegistry()
        a = reg.create(RumorKind.JOIN, 1, 100, 0.0)
        b = reg.create(RumorKind.REJOIN, 2, 50, 1.0)
        assert a.rid != b.rid
        assert reg.get(a.rid) is a
        assert len(reg) == 2
        assert a.rid in reg

    def test_payload_total(self):
        reg = RumorRegistry()
        a = reg.create(RumorKind.BF_UPDATE, 0, 3000, 0.0)
        b = reg.create(RumorKind.REJOIN, 1, 48, 0.0)
        assert reg.payload_total([a.rid, b.rid]) == 3048

    def test_validation(self):
        with pytest.raises(ValueError):
            Rumor(0, RumorKind.JOIN, -1, 10, 0.0)
        with pytest.raises(ValueError):
            Rumor(0, RumorKind.JOIN, 1, -10, 0.0)


class TestDirectoryView:
    def test_learn_and_digest(self):
        d = DirectoryView(0, 10)
        assert d.learn(5)
        assert not d.learn(5)  # duplicates ignored
        assert d.knows(5)
        other = DirectoryView(1, 10)
        assert not d.same_directory(other)
        other.learn(5)
        assert d.same_directory(other)

    def test_digest_order_independent(self):
        a = DirectoryView(0, 10)
        b = DirectoryView(1, 10)
        for rid in (3, 1, 7):
            a.learn(rid)
        for rid in (7, 3, 1):
            b.learn(rid)
        assert a.same_directory(b)

    def test_missing_from(self):
        d = DirectoryView(0, 10)
        d.learn(1)
        assert d.missing_from({1, 2, 3}) == {2, 3}

    def test_membership_tracking(self):
        d = DirectoryView(0, 10)
        d.add_member(3)
        assert d.member_count == 1
        assert d.believes_online[3]
        d.mark_offline(3, now=100.0)
        assert not d.believes_online[3]
        d.mark_online(3)
        assert d.believes_online[3]
        assert 3 not in d.offline_since

    def test_readding_member_not_double_counted(self):
        d = DirectoryView(0, 10)
        d.add_member(3)
        d.add_member(3)
        assert d.member_count == 1
        d.mark_offline(3, 0.0)
        d.add_member(3)  # rejoin rumor while believed offline
        assert d.member_count == 1

    def test_expire_dead(self):
        d = DirectoryView(0, 10)
        d.add_member(3)
        d.add_member(4)
        d.mark_offline(3, now=0.0)
        dropped = d.expire_dead(now=10.0, t_dead_s=5.0)
        assert dropped == [3]
        assert d.member_count == 1

    def test_online_candidates_exclude_owner(self):
        d = DirectoryView(2, 5)
        for pid in range(5):
            d.add_member(pid)
        assert 2 not in d.online_candidates().tolist()

    def test_copy_membership(self):
        donor = DirectoryView(0, 5)
        donor.learn(9)
        donor.add_member(1)
        dup = DirectoryView(4, 5)
        dup.copy_membership_from(donor)
        assert dup.knows(9)
        assert dup.member_count == donor.member_count
        assert dup.same_directory(donor)

    def test_learn_many_matches_sequential_learn(self):
        batch = DirectoryView(0, 10)
        scalar = DirectoryView(1, 10)
        rids = [3, 1, 7, 1, 3, 99, 2**40]
        fresh = batch.learn_many(rids)
        assert fresh == [3, 1, 7, 99, 2**40]  # dedup, input order
        for rid in rids:
            scalar.learn(rid)
        assert batch.same_directory(scalar)
        assert batch.known == scalar.known
        assert batch.learn_many([3, 7]) == []  # all already known

    def test_mix_rumor_ids_matches_scalar(self):
        from repro.gossip.directory import mix_rumor_id, mix_rumor_ids

        rids = [0, 1, 2, 41, 2**31, 2**63 - 1]
        mixed = mix_rumor_ids(rids)
        assert mixed.tolist() == [mix_rumor_id(r) for r in rids]


class TestIntervalPolicy:
    def test_slowdown_after_threshold(self):
        cfg = GossipConfig()
        policy = IntervalPolicy(cfg)
        assert policy.interval == 30.0
        assert not policy.record_no_news_contact()
        assert policy.record_no_news_contact()  # second contact: slow down
        assert policy.interval == 35.0

    def test_capped_at_max(self):
        cfg = GossipConfig(base_interval_s=30.0, max_interval_s=40.0)
        policy = IntervalPolicy(cfg)
        for _ in range(100):
            policy.record_no_news_contact()
        assert policy.interval == 40.0

    def test_reset_snaps_to_base(self):
        policy = IntervalPolicy(GossipConfig())
        for _ in range(10):
            policy.record_no_news_contact()
        assert policy.interval > 30.0
        assert policy.reset()
        assert policy.interval == 30.0
        assert not policy.reset()  # already at base


class TestMessageSizer:
    def test_table2_based_sizes(self):
        cfg = GossipConfig()
        sizer = MessageSizer(cfg)
        assert sizer.rumor_push(0) == 3
        assert sizer.rumor_push(2) == 3 + 12
        assert sizer.rumor_reply(1, 2) == 3 + 18
        assert sizer.rumor_data(3000) == 3003
        assert sizer.ae_request() == 11
        assert sizer.ae_nothing() == 3
        assert sizer.ae_recent(5) == 3 + 30
        assert sizer.ae_summary(1000) == 3 + 48_000
        assert sizer.pull_request(4) == 3 + 24

    def test_join_sizes_match_section72(self):
        """Downloading 1000 filters of 20 000 keys ≈ 16 MB (Section 7.2)."""
        cfg = GossipConfig()
        wire = WireSizes()
        sizer = MessageSizer(cfg, wire)
        snapshot = sizer.join_snapshot(1000, wire.bloom_filter_bytes(20_000))
        assert snapshot == pytest.approx(16e6, rel=0.05)

    def test_bf_interpolation(self):
        wire = WireSizes()
        assert wire.bloom_filter_bytes(1000) == 3000
        assert wire.bloom_filter_bytes(20000) == 16000
        assert 3000 < wire.bloom_filter_bytes(10000) < 16000
        assert wire.bloom_filter_bytes(0) == wire.header

    def test_bf_negative_rejected(self):
        with pytest.raises(ValueError):
            WireSizes().bloom_filter_bytes(-1)


class TestSelectors:
    def _directory(self, owner, n):
        d = DirectoryView(owner, n)
        for pid in range(n):
            d.add_member(pid)
        return d

    def test_flat_never_selects_self_or_offline(self):
        selector = FlatSelector(10)
        d = self._directory(0, 10)
        d.mark_offline(5, 0.0)
        rng = make_rng(0)
        for _ in range(200):
            t = selector.rumor_target(d, rng)
            assert t not in (0, 5)

    def test_flat_none_when_alone(self):
        selector = FlatSelector(1)
        d = self._directory(0, 1)
        assert selector.rumor_target(d, make_rng(0)) is None

    def test_bandwidth_aware_classes(self):
        from repro.constants import LINK_DSL, LINK_MODEM

        speeds = np.array([LINK_DSL] * 8 + [LINK_MODEM] * 2)
        selector = BandwidthAwareSelector(speeds, GossipConfig(bandwidth_aware=True))
        assert selector.fast_pool.tolist() == list(range(8))
        assert selector.slow_pool.tolist() == [8, 9]

    def test_fast_peer_mostly_targets_fast(self):
        from repro.constants import LINK_DSL, LINK_MODEM

        speeds = np.array([LINK_DSL] * 8 + [LINK_MODEM] * 2)
        selector = BandwidthAwareSelector(speeds, GossipConfig(bandwidth_aware=True))
        d = self._directory(0, 10)
        rng = make_rng(1)
        targets = [selector.rumor_target(d, rng) for _ in range(500)]
        slow_fraction = sum(1 for t in targets if t >= 8) / 500
        assert slow_fraction < 0.05  # 1% nominal

    def test_slow_source_pushes_to_fast_first(self):
        from repro.constants import LINK_DSL, LINK_MODEM

        speeds = np.array([LINK_DSL] * 8 + [LINK_MODEM] * 2)
        selector = BandwidthAwareSelector(speeds, GossipConfig(bandwidth_aware=True))
        d = self._directory(9, 10)
        rng = make_rng(2)
        # As rumor source, a slow peer targets the fast tier.
        targets = {selector.rumor_target(d, rng, is_rumor_source=True) for _ in range(50)}
        assert targets <= set(range(8))
        # Otherwise it stays among slow peers.
        targets = {selector.rumor_target(d, rng, is_rumor_source=False) for _ in range(50)}
        assert targets == {8}

    def test_fast_ae_targets_fast(self):
        from repro.constants import LINK_DSL, LINK_MODEM

        speeds = np.array([LINK_DSL] * 5 + [LINK_MODEM] * 5)
        selector = BandwidthAwareSelector(speeds, GossipConfig(bandwidth_aware=True))
        d = self._directory(0, 10)
        rng = make_rng(3)
        targets = {selector.ae_target(d, rng) for _ in range(100)}
        assert targets <= set(range(1, 5))
