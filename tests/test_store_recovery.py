"""The four canonical crash scenarios (ISSUE 5, satellite c).

Each damages a data directory the way a real crash would and asserts the
next PersistentDataStore construction (1) never raises and (2) recovers
exactly the last durable prefix of acknowledged operations.
"""

from __future__ import annotations

from repro.constants import StoreConfig
from repro.obs import Registry
from repro.store import PersistentDataStore
from repro.store.snapshot import snapshot_path
from repro.text.document import Document

import pytest

pytestmark = pytest.mark.recovery


def _store(tmp_path) -> PersistentDataStore:
    return PersistentDataStore(
        tmp_path, registry=Registry(), config=StoreConfig(fsync=False)
    )


def _seed(tmp_path, n=3) -> PersistentDataStore:
    store = _store(tmp_path)
    for i in range(n):
        store.publish(Document(f"d{i}", f"document {i} body text"))
    return store


def test_scenario_truncated_wal_tail(tmp_path):
    store = _seed(tmp_path)
    wal_path = store.wal.path
    # Crash mid-append: the last frame is half-written.
    wal_path.write_bytes(wal_path.read_bytes()[:-5])

    recovered = _store(tmp_path)
    assert sorted(recovered.document_ids()) == ["d0", "d1"]
    assert recovered.last_recovery.replayed_records == 2
    # The store keeps working: the torn doc can be re-published.
    recovered.publish(Document("d2", "document 2 body text"))
    assert len(recovered) == 3
    recovered.close()


def test_scenario_corrupted_crc_mid_log(tmp_path):
    store = _seed(tmp_path)
    data = bytearray(store.wal.path.read_bytes())
    # Flip a byte ~40% in: somewhere inside the second record's payload.
    data[int(len(data) * 0.4)] ^= 0xFF
    store.wal.path.write_bytes(bytes(data))

    recovered = _store(tmp_path)
    # Only the records before the damage survive; never a crash.
    assert list(recovered.document_ids()) == ["d0"]
    recovered.close()


def test_scenario_torn_snapshot_with_stray_tmp(tmp_path):
    store = _seed(tmp_path)
    store.snapshot()
    store.publish(Document("after", "post snapshot record"))
    # Crash mid-way through the *next* snapshot: tmp exists, rename never
    # happened.
    torn = snapshot_path(tmp_path, 99).with_suffix(".ppsnap.tmp")
    torn.write_bytes(b"PPSNAP01 but torn before the payload landed")

    recovered = _store(tmp_path)
    assert len(recovered) == 4
    assert recovered.last_recovery.snapshot_seq == 3
    assert recovered.last_recovery.replayed_records == 1
    assert not torn.exists() or True  # cleaned lazily by the next writer
    recovered.snapshot()
    assert not torn.exists()
    recovered.close()


def test_scenario_corrupt_newest_snapshot_falls_back(tmp_path):
    store = _seed(tmp_path, n=1)
    first = store.snapshot()
    store.publish(Document("later", "second generation content"))
    second = store.snapshot()
    assert first != second
    # Bit rot the newest generation after its rename succeeded.
    blob = bytearray(second.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    second.write_bytes(bytes(blob))

    recovered = _store(tmp_path)
    # Fell back to generation one; 'later' is gone with the rotted file
    # (its WAL record was reset after the second snapshot), but recovery
    # is a consistent earlier state, not an exception.
    assert list(recovered.document_ids()) == ["d0"]
    assert recovered.last_recovery.snapshot_path == first
    recovered.close()


def test_scenario_empty_data_dir_is_a_cold_start(tmp_path):
    recovered = _store(tmp_path / "brand-new")
    assert len(recovered) == 0
    assert recovered.last_recovery.replayed_records == 0
    assert recovered.last_recovery.snapshot_path is None
    recovered.publish(Document("first", "cold start then publish"))
    recovered.close()

    warm = _store(tmp_path / "brand-new")
    assert "first" in warm
    warm.close()
