"""A real 25-node fleet, end to end, in the tier-1 lane.

Every node is a separate ``python -m repro.net`` process on its own
localhost TCP port.  One scenario runs once (module-scoped fixture) and
every acceptance criterion is asserted against its report: convergence
within the Fig.-2 bound, ranked recall vs. the in-process oracle, zero
stale serves across publish waves, SIGKILL/warm-restart recovery, and
process/port hygiene.

The recall bar here is 0.95 rather than the scale suite's 0.98: with 25
peers and ~10 results per query, a single adaptive-stopping tie breaking
differently than the oracle's costs 10 points on one query and ~0.4 on
the mean, so the small fleet needs one tie of headroom.
"""

from __future__ import annotations

import shutil

import pytest

from repro.fleet import FleetReport, FleetSpec, build_scenario, run_scenario

pytestmark = [pytest.mark.fleet, pytest.mark.slow, pytest.mark.timeout(300)]

SPEC = FleetSpec(num_nodes=25, seed=7)
MIN_RECALL = 0.95


@pytest.fixture(scope="module")
def report(tmp_path_factory) -> FleetReport:
    root = tmp_path_factory.mktemp("fleet25")
    try:
        return run_scenario(SPEC, root=root, log_dir=root / "logs")
    finally:
        # The per-node corpora/data dirs are bulky; keep only the logs
        # (pytest prints tmp paths on failure, so they stay findable).
        shutil.rmtree(root / "corpus", ignore_errors=True)
        shutil.rmtree(root / "data", ignore_errors=True)


def test_no_acceptance_violations(report):
    assert report.violations(min_recall=MIN_RECALL) == []


def test_all_nodes_converged_within_the_bound(report):
    assert report.num_nodes == SPEC.num_nodes
    assert 0.0 <= report.convergence_s <= report.convergence_bound_s


def test_recall_tracks_the_oracle(report):
    assert report.recall >= MIN_RECALL
    # No single query may fall apart entirely even when ties cost points.
    assert report.recall_min >= 0.5


def test_publish_waves_propagate_without_stale_serves(report):
    assert report.stale_serves == 0
    assert len(report.wave_propagation_s) == SPEC.num_waves
    assert all(0.0 <= s <= report.convergence_bound_s
               for s in report.wave_propagation_s)


def test_crash_recovery(report):
    scenario = build_scenario(SPEC)
    assert report.crash_pids == list(scenario.crash_pids)
    assert report.crash_search_ok  # searches kept working mid-outage
    assert report.recovery_s > 0.0
    assert report.recall_after_recovery >= MIN_RECALL


def test_gossip_stays_bounded(report):
    # Converged nodes exchange summaries/digests, not full state: a
    # round must cost well under one uncompressed 64 Kbit Bloom filter.
    assert 0.0 < report.gossip_bytes_per_round < 8192
    assert report.gossip_rounds_per_node > 0.0


def test_every_process_and_port_was_reclaimed(report):
    assert report.leaked_processes == 0
    assert report.leaked_ports == 0
