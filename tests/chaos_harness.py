"""Deterministic chaos harness: a loopback community under a FaultPlan.

Boots N :class:`~repro.net.node.NetworkPeer` instances over the in-memory
loopback fabric, wraps every endpoint in a fault-injecting
:class:`~repro.net.chaos.FaultyTransport`, and advances time through a
shared :class:`~repro.net.chaos.VirtualClock` — so a scenario with
minutes of simulated jitter and partitions runs in real milliseconds and
is reproducible from its seed alone.

The harness drives gossip rounds explicitly (never wall-clock timers),
tracks which peers are alive across scripted crash/restart schedules, and
mirrors every publish into an :class:`~repro.core.community.
InProcessCommunity` oracle so ranked-search results can be checked for
exact agreement once the network converges.
"""

from __future__ import annotations

from typing import Callable

from repro.constants import BloomConfig, GossipConfig
from repro.core.community import InProcessCommunity
from repro.net.chaos import FaultPlan, FaultyTransport, VirtualClock
from repro.net.client import NetworkSearchClient
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork, TransportError
from repro.obs import Registry
from repro.text.document import Document


class ChaosCommunity:
    """N loopback peers gossiping under an injectable fault schedule."""

    def __init__(
        self,
        num_peers: int,
        seed: int = 0,
        gossip_config: GossipConfig | None = None,
        bloom_config: BloomConfig | None = None,
    ) -> None:
        self.seed = seed
        self.clock = VirtualClock()
        self.plan = FaultPlan(seed=seed, clock=self.clock)
        self.config = gossip_config or GossipConfig()
        self.bloom_config = bloom_config or BloomConfig()
        self.net = LoopbackNetwork()
        self.alive: set[int] = set()
        #: everything published, mirrored into the oracle on demand.
        self.published: list[tuple[int, Document]] = []
        #: per-peer metric registries, isolated from the process-global
        #: one so concurrent tests never share counters.
        self.registries: dict[int, Registry] = {
            pid: Registry(clock=self.clock) for pid in range(num_peers)
        }
        self.nodes: dict[int, NetworkPeer] = {
            pid: NetworkPeer(
                pid,
                "peer",
                pid,
                transport=FaultyTransport(
                    self.net.transport(), self.plan, sleep=self.clock.sleep
                ),
                gossip_config=self.config,
                bloom_config=self.bloom_config,
                seed=(seed << 16) | pid,
                clock=self.clock,
                registry=self.registries[pid],
            )
            for pid in range(num_peers)
        }

    def address(self, pid: int) -> str:
        """The loopback address peer ``pid`` serves at."""
        return f"peer:{pid}"

    def metric_sum(self, component: str, name: str) -> float:
        """Sum one counter/gauge across every peer's registry."""
        return sum(reg.value(component, name) for reg in self.registries.values())

    # -- lifecycle -----------------------------------------------------------

    async def boot(self, bootstrap: int = 0, join_attempts: int = 50) -> None:
        """Start every peer and join them all through ``bootstrap``,
        retrying joins that the fault plan kills."""
        for pid in sorted(self.nodes):
            await self.nodes[pid].start()
            self.alive.add(pid)
        for pid in sorted(self.nodes):
            if pid != bootstrap:
                await self.join(pid, bootstrap, attempts=join_attempts)

    async def join(self, pid: int, via: int, attempts: int = 50) -> None:
        """Join ``pid`` through ``via``, retrying under injected faults."""
        for _ in range(attempts):
            try:
                await self.nodes[pid].join(self.address(via))
                return
            except TransportError:
                self.clock.advance(1.0)
        raise AssertionError(
            f"peer {pid} failed to join via {via} in {attempts} attempts "
            f"(seed {self.seed})"
        )

    def publish(self, pid: int, doc: Document) -> None:
        """Publish through peer ``pid`` and remember it for the oracle."""
        self.nodes[pid].publish(doc)
        self.published.append((pid, doc))

    async def crash(self, pid: int) -> None:
        """Kill peer ``pid``: its server goes away mid-community, nothing
        is announced (Section 3 — departures are silent)."""
        await self.nodes[pid].stop()
        self.alive.discard(pid)

    async def restart(self, pid: int) -> None:
        """Bring a crashed peer back at the same address and announce a
        REJOIN rumor so gossip heals its membership."""
        node = self.nodes[pid]
        await node.start()
        self.alive.add(pid)
        node.announce_rejoin()

    # -- driving -------------------------------------------------------------

    async def run_rounds(
        self,
        rounds: int,
        dt: float | None = None,
        until: Callable[[], bool] | None = None,
    ) -> int:
        """Advance the clock and run one gossip round per alive peer, up
        to ``rounds`` times; stops early when ``until()`` turns true.
        Returns the number of rounds actually run."""
        dt = self.config.base_interval_s if dt is None else dt
        for done in range(1, rounds + 1):
            self.clock.advance(dt)
            for pid in sorted(self.alive):
                await self.nodes[pid].gossip_round()
            if until is not None and until():
                return done
        return rounds

    async def converge(self, max_rounds: int = 200, dt: float | None = None) -> int:
        """Run rounds until every alive peer agrees; returns rounds used."""
        used = await self.run_rounds(max_rounds, dt=dt, until=self.converged)
        self.assert_converged()
        return used

    # -- assertions ----------------------------------------------------------

    def converged(self) -> bool:
        """Alive peers share one digest, mark each other online, and hold
        bit-identical replicas of every alive member's filter."""
        nodes = [self.nodes[pid] for pid in sorted(self.alive)]
        if len({node.digest for node in nodes}) != 1:
            return False
        for owner in nodes:
            for observer in nodes:
                if observer.replica_of(owner.peer_id) != owner.peer.store.bloom_filter:
                    return False
                if observer is owner:
                    continue
                entry = observer.peer.directory.get(owner.peer_id)
                if entry is None or not entry.online:
                    return False
        return True

    def assert_converged(self) -> None:
        """Fail loudly (with the seed) if the community has not converged."""
        assert self.converged(), (
            f"community diverged (seed {self.seed}): digests "
            f"{[hex(self.nodes[p].digest) for p in sorted(self.alive)]}"
        )

    def oracle(self) -> InProcessCommunity:
        """An in-process community holding exactly what was published."""
        community = InProcessCommunity(
            num_peers=len(self.nodes), bloom_config=self.bloom_config
        )
        for pid, doc in self.published:
            community.publish(pid, doc)
        return community

    async def assert_search_parity(self, querier: int, query: str, k: int) -> None:
        """Ranked search from ``querier`` must match the oracle exactly."""
        expected = self.oracle().ranked_search(query, k=k)
        result = await NetworkSearchClient(self.nodes[querier]).ranked_search(
            query, k=k
        )
        got = [(d.doc_id, d.score) for d in result.results]
        want = [(d.doc_id, d.score) for d in expected.results]
        assert got == want, (
            f"seed {self.seed}: peer {querier} ranked {query!r} -> {got}, "
            f"oracle says {want}"
        )
