"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.schedule(3.0, log.append, "middle")
        sim.run()
        assert log == ["early", "middle", "late"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule_at(5.0, lambda: None)
        assert sim.run() == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(10.0, log.append, "b")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        assert sim.pending() == 1
        sim.run()
        assert log == ["a", "b"]

    def test_stop_when(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i + 1), log.append, i)
        sim.run(stop_when=lambda: len(log) >= 3)
        assert log == [0, 1, 2]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run(max_events=4)
        assert len(log) == 4

    def test_cancel(self):
        sim = Simulator()
        log = []
        keep = sim.schedule(1.0, log.append, "keep")
        drop = sim.schedule(2.0, log.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert log == ["keep"]

    def test_events_run_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_run == 3

    def test_empty_run_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0
