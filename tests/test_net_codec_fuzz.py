"""Fuzzing the wire codec: mutated frames must fail closed.

Every valid frame in the inventory is mutated hundreds of ways — bit
flips, truncations, extensions, splices, zeroed runs — and the decoder
must either return a message or raise :class:`CodecError`.  Nothing else:
no ``struct.error``, no ``IndexError``, no ``UnicodeDecodeError``, and no
unbounded work driven by a forged length or count.

Deterministic: the whole run derives from SEED (printed on failure).
"""

import random
import struct
import time

import pytest

from repro.constants import NET_CODEC_VERSION
from repro.net.codec import (
    CodecError,
    decode,
    decode_member_payload,
    decode_update_payload,
)
from tests.test_net_codec import MESSAGES, RECORD
from repro.net.codec import encode, encode_member_payload, encode_update_payload

pytestmark = pytest.mark.chaos

SEED = 20260806
MUTATIONS_PER_FRAME = 250


def _mutate(rng: random.Random, frame: bytes) -> bytes:
    data = bytearray(frame)
    op = rng.randrange(5)
    if op == 0 and data:  # flip a random byte
        i = rng.randrange(len(data))
        data[i] ^= rng.randrange(1, 256)
    elif op == 1:  # truncate
        data = data[: rng.randrange(len(data) + 1)]
    elif op == 2:  # extend with junk
        data += rng.randbytes(rng.randrange(1, 16))
    elif op == 3 and len(data) >= 2:  # splice a random slice over another
        i, j = sorted(rng.randrange(len(data)) for _ in range(2))
        k = rng.randrange(len(data))
        data[i:j] = data[k : k + (j - i)]
    else:  # zero a run
        if data:
            i = rng.randrange(len(data))
            data[i : i + rng.randrange(1, 8)] = b"\x00" * min(
                rng.randrange(1, 8), len(data) - i
            )
    return bytes(data)


def _decode_must_fail_closed(frame: bytes, context: str) -> None:
    try:
        decode(frame)
    except CodecError:
        pass
    except Exception as exc:  # noqa: BLE001 — the point of the fuzz
        raise AssertionError(
            f"{context}: decoder leaked {type(exc).__name__}: {exc!r} "
            f"on frame {frame.hex()}"
        ) from exc


@pytest.mark.parametrize("msg", MESSAGES, ids=lambda m: type(m).__name__)
def test_mutated_frames_raise_codec_error_only(msg):
    rng = random.Random(f"{SEED}-{type(msg).__name__}")
    frame = encode(msg)
    for i in range(MUTATIONS_PER_FRAME):
        mutated = _mutate(rng, frame)
        _decode_must_fail_closed(mutated, f"seed={SEED} {type(msg).__name__}#{i}")


def test_random_garbage_frames_fail_closed():
    rng = random.Random(f"{SEED}-garbage")
    for i in range(500):
        frame = rng.randbytes(rng.randrange(0, 64))
        _decode_must_fail_closed(frame, f"seed={SEED} garbage#{i}")
    # Garbage with a valid header is the nastier case: the body parser
    # runs.  The range deliberately overshoots the assigned type bytes
    # (the analytics inventory ends at 49) so unknown types stay
    # covered too.
    for mtype in range(0, 54):
        for i in range(50):
            body = rng.randbytes(rng.randrange(0, 48))
            frame = bytes([NET_CODEC_VERSION, mtype]) + body
            _decode_must_fail_closed(frame, f"seed={SEED} typed-garbage t={mtype}#{i}")


@pytest.mark.parametrize(
    # 46 (TopTermsRequest) is absent: its body is a lone u16, no count.
    "mtype", [1, 2, 3, 7, 10, 17, 19, 32, 33, 34, 36, 44, 45, 47, 48, 49]
)
def test_forged_count_is_rejected_before_allocation(mtype):
    """A u32 count of ~4 billion must be rejected against the frame size
    immediately, not drive a 4-billion-iteration decode loop."""
    frame = bytes([NET_CODEC_VERSION, mtype]) + struct.pack(">I", 0xFFFFFFFF)
    started = time.monotonic()
    with pytest.raises(CodecError, match="count|truncated|exceeds"):
        decode(frame)
    assert time.monotonic() - started < 1.0


def test_forged_snippet_length_is_rejected_before_allocation():
    # SnippetResponse: found flag + doc_id + u32 text length claiming 4 GiB.
    frame = (
        bytes([NET_CODEC_VERSION, 21, 1])
        + struct.pack(">H", 1)
        + b"d"
        + struct.pack(">I", 0xFFFFFFFF)
    )
    with pytest.raises(CodecError):
        decode(frame)


def test_mutated_rumor_payloads_fail_closed():
    rng = random.Random(f"{SEED}-payloads")
    member = encode_member_payload(RECORD, b"compressed-bloom-bytes")
    update = encode_update_payload(12, b"\x01\x02\x03\x04")
    for i in range(MUTATIONS_PER_FRAME):
        for name, payload, decoder in (
            ("member", member, decode_member_payload),
            ("update", update, decode_update_payload),
        ):
            mutated = _mutate(rng, payload)
            try:
                decoder(mutated)
            except CodecError:
                pass
            except Exception as exc:  # noqa: BLE001
                raise AssertionError(
                    f"seed={SEED} {name}#{i}: {type(exc).__name__}: {exc!r} "
                    f"on payload {mutated.hex()}"
                ) from exc
