#!/usr/bin/env python
"""Dynamic community walkthrough: churn, convergence, and bandwidth.

Runs the Figure 4(b) experiment at example scale: a community where 40%
of members are always on and the rest cycle online/offline, with 5% of
rejoins bringing new content.  Prints the convergence CDF and the
aggregate bandwidth profile — the paper's "normal operation requires very
little bandwidth" claim, measured.

Run:  python examples/dynamic_community.py
"""

import numpy as np

from repro.gossip import run_churn
from repro.utils.stats import cdf_points


def main() -> None:
    result = run_churn(
        n_members=200,
        horizon_s=2 * 3600.0,
        topology="lan",
        seed=42,
    )
    joins = result.convergence_samples(label="join")
    rejoins = result.convergence_samples(label="rejoin")
    print(f"community of {result.community_size} peers, 2h of churn")
    print(f"  events: {len(result.events)} "
          f"({len(joins)} joins with new keys, {len(rejoins)} plain rejoins)")

    for label, samples in (("join", joins), ("rejoin", rejoins)):
        if not samples:
            continue
        arr = np.asarray(samples)
        print(f"\n  {label} convergence: median={np.median(arr):.0f}s "
              f"p90={np.percentile(arr, 90):.0f}s max={arr.max():.0f}s")
        xs, ps = cdf_points(samples)
        for q in (0.25, 0.5, 0.75, 0.95):
            idx = min(int(q * len(xs)), len(xs) - 1)
            print(f"    {q * 100:3.0f}% of events converged within {xs[idx]:7.1f} s")

    rates = result.bandwidth_Bps
    if rates.size:
        print(f"\n  aggregate gossip bandwidth: mean={rates.mean():.0f} B/s, "
              f"peak={rates.max():.0f} B/s across the whole community")
        print(f"  total gossip volume over 2h: {result.total_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
