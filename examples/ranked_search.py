#!/usr/bin/env python
"""Ranked search quality: TF×IPF vs centralized TF×IDF.

Builds a synthetic CACM-like collection with relevance judgments,
distributes it over 100 peers with the paper's Weibull skew, and compares
PlanetP's distributed ranked search against the centralized oracle —
Figure 6 at example scale — including the naive first-k stopping rule the
paper rejects.

Run:  python examples/ranked_search.py
"""

from repro.corpus import make_collection
from repro.experiments.search_quality import build_testbed, evaluate_k


def main() -> None:
    collection = make_collection("CACM", scale=0.05, seed=11)
    print(
        f"collection: {collection.name} "
        f"({collection.num_documents} docs, {collection.num_queries} queries)"
    )
    testbed = build_testbed(collection, num_peers=100, seed=11)
    print(f"distributed over {testbed.num_peers} peers (Weibull)\n")

    print(f"{'k':>4} {'R idf':>7} {'R ipf':>7} {'P idf':>7} {'P ipf':>7} "
          f"{'peers ipf':>10} {'best':>6}")
    for k in (10, 20, 50, 100):
        p = evaluate_k(testbed, k)
        print(
            f"{k:>4} {p.recall_idf:>7.3f} {p.recall_ipf:>7.3f} "
            f"{p.precision_idf:>7.3f} {p.precision_ipf:>7.3f} "
            f"{p.avg_peers_ipf:>10.1f} {p.avg_peers_best:>6.1f}"
        )

    print("\nadaptive stopping vs the naive first-k rule (k=20):")
    adaptive = evaluate_k(testbed, 20, stopping="adaptive")
    naive = evaluate_k(testbed, 20, stopping="first-k")
    print(f"  adaptive : recall={adaptive.recall_ipf:.3f}, peers={adaptive.avg_peers_ipf:.1f}")
    print(f"  first-k  : recall={naive.recall_ipf:.3f}, peers={naive.avg_peers_ipf:.1f}")
    print("  -> stopping at the first k documents contacts fewer peers but"
          " hurts recall (the paper's 'terrible retrieval performance')")


if __name__ == "__main__":
    main()
