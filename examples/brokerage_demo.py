#!/usr/bin/env python
"""Information brokerage demo (paper §4).

Shows consistent-hashing key placement, snippet TTLs, graceful vs abrupt
broker departure (the paper's explicit no-safety-guarantee), and how the
brokerage complements gossip: a just-published document is findable via
the brokers *now*, while the Bloom filter path catches up later.

Run:  python examples/brokerage_demo.py
"""

from repro.brokerage import BrokerageService


def main() -> None:
    clock = [0.0]
    service = BrokerageService(clock=lambda: clock[0])
    for member in (10, 20, 30, 40):
        service.add_member(member)
    print("brokers on the ring:", service.members())

    # Publish snippets under their keys.
    service.publish(
        "ad-1", "<ad>fresh paper on gossip</ad>", ["gossip", "paper"], publisher=10,
        ttl_s=600,
    )
    service.publish(
        "ad-2", "<ad>bloom filter tricks</ad>", ["bloom", "filter"], publisher=20,
        ttl_s=60,
    )
    for key in ("gossip", "bloom", "filter"):
        print(f"key {key!r} lives on broker {service.broker_of(key)}; "
              f"hits: {[s.snippet_id for s in service.lookup(key)]}")

    # TTL expiry: ad-2 had a 60 s discard time.
    clock[0] = 120.0
    print("\nafter 120 s:")
    print("  bloom ->", [s.snippet_id for s in service.lookup("bloom")])
    print("  gossip ->", [s.snippet_id for s in service.lookup("gossip")])

    # Graceful leave hands entries over; abrupt leave loses them.
    owner = service.broker_of("gossip")
    print(f"\nbroker {owner} leaves gracefully:")
    service.remove_member(owner, graceful=True)
    print("  gossip ->", [s.snippet_id for s in service.lookup("gossip")])

    owner = service.broker_of("gossip")
    print(f"broker {owner} leaves ABRUPTLY:")
    service.remove_member(owner, graceful=False)
    print("  gossip ->", [s.snippet_id for s in service.lookup("gossip")],
          " (lost - the paper's explicit non-guarantee)")

    # Ring re-partitioning: adding a member moves only its arc.
    service.add_member(99)
    print("\nbrokers after 99 joins:", service.members())
    print("  gossip now lives on broker", service.broker_of("gossip"))


if __name__ == "__main__":
    main()
