#!/usr/bin/env python
"""Network demo: five PlanetP peers gossiping over real TCP sockets.

Starts five :class:`~repro.net.node.NetworkPeer` servers on ephemeral
localhost ports, bootstraps them into one community, publishes a small
corpus, lets the gossip protocol replicate the Bloom filter directory
over the wire, and finally runs a ranked TF×IPF search — every peer
contact a real socket round-trip.

Run:  python examples/network_demo.py
"""

import asyncio

from repro.net import NetworkPeer, NetworkSearchClient
from repro.text.document import Document

ARTICLES = [
    ("epidemics", "epidemic algorithms for replicated database maintenance"),
    ("gossip-survey", "gossip protocols spread rumors through random peer exchanges"),
    ("bloom", "bloom filters summarize set membership with compact bit arrays"),
    ("chord", "chord is a scalable peer to peer lookup service"),
    ("planetp", "planetp peers gossip bloom filter summaries to rank searches"),
]


async def main() -> None:
    """Run the five-peer TCP community end to end."""
    nodes = [NetworkPeer(pid, "127.0.0.1", 0, seed=pid) for pid in range(5)]
    for node in nodes:
        address = await node.start()
        print(f"peer {node.peer_id} listening on {address}")

    # Each peer publishes one article, then bootstraps off peer 0.
    for node, (doc_id, text) in zip(nodes, ARTICLES):
        node.publish(Document(doc_id, text))
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    print(f"\nall {len(nodes)} peers joined via {nodes[0].address}")

    # Drive gossip rounds explicitly (a daemon would use node.run()).
    for rnd in range(1, 31):
        for node in nodes:
            await node.gossip_round()
        if len({node.digest for node in nodes}) == 1:
            print(f"directories converged after {rnd} gossip rounds")
            break
    else:
        raise SystemExit("gossip did not converge")

    client = NetworkSearchClient(nodes[4])
    result = await client.ranked_search("gossip peer protocols", k=3)
    print("\nranked 'gossip peer protocols' over TCP:")
    for doc in result.results:
        print(f"  {doc.doc_id:15s} score={doc.score:.3f}")
    print(f"  peers contacted: {sorted(result.peers_contacted)}")

    doc = await client.fetch(0, "epidemics")
    assert doc is not None
    print(f"\nfetched from peer 0: {doc.doc_id!r}: {doc.text[:40]}...")

    for node in nodes:
        await node.stop()
    print("all peers stopped")


if __name__ == "__main__":
    asyncio.run(main())
