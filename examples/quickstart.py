#!/usr/bin/env python
"""Quickstart: build a small PlanetP community and search it.

Demonstrates the core loop: publish documents at different peers, run an
exhaustive (conjunctive) search and a TF×IPF ranked search, and peek at
the machinery (Bloom filters, IPF weights, peers contacted).

Run:  python examples/quickstart.py
"""

from repro import Document, InProcessCommunity

ARTICLES = [
    ("epidemics", "epidemic algorithms for replicated database maintenance"),
    ("gossip-survey", "gossip protocols spread rumors through random peer exchanges"),
    ("bloom", "bloom filters summarize set membership with compact bit arrays"),
    ("chord", "chord is a scalable peer to peer lookup service using consistent hashing"),
    ("vector", "the vector space model ranks documents by cosine similarity"),
    ("tfidf", "term frequency inverse document frequency weights balance rare terms"),
    ("napster", "napster popularized music sharing across peer communities"),
    ("trec", "the trec conference provides benchmark collections with relevance judgments"),
]


def main() -> None:
    # One peer per document keeps the example legible; peers usually hold
    # many documents.
    community = InProcessCommunity(num_peers=len(ARTICLES))
    for peer_id, (doc_id, text) in enumerate(ARTICLES):
        community.publish(peer_id, Document(doc_id, text))

    print(f"community: {community}")

    # Exhaustive search: conjunction of keys, every matching document.
    matches = community.exhaustive_search("peer sharing")
    print("\nexhaustive 'peer sharing':", [d.doc_id for d in matches])

    # Ranked search: TF x IPF with the adaptive stopping heuristic.
    result = community.ranked_search("gossip peer protocols", k=3)
    print("\nranked 'gossip peer protocols':")
    for doc in result.results:
        print(f"  {doc.doc_id:15s} score={doc.score:.3f}")
    print(f"  peers contacted: {result.peers_contacted}")
    print(f"  IPF weights: { {t: round(w, 3) for t, w in result.ipf.items()} }")

    # The Bloom filter directory at work: which peers *might* hold a term?
    terms = community.analyze_query("bloom")
    candidates = community.peers[0].candidate_peers(terms)
    print(f"\npeers whose filters hit {terms}: {candidates}")


if __name__ == "__main__":
    main()
