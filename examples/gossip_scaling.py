#!/usr/bin/env python
"""Gossip scaling study: how fast does news travel, and at what cost?

Sweeps community sizes and gossip intervals (the Figure 2 experiment at
example scale), showing the paper's three headline effects:

1. propagation time grows roughly with log(community size);
2. total network volume stays modest (message sizes track the *change*,
   not the community);
3. the gossip interval trades convergence speed against bandwidth.

Run:  python examples/gossip_scaling.py
"""

import math

from repro.constants import GossipConfig
from repro.gossip import run_propagation


def main() -> None:
    print("propagation of one 1000-key Bloom filter diff (DSL links)\n")
    print(f"{'peers':>6} {'time (s)':>9} {'volume (MB)':>12} {'B/s per peer':>13} {'time/log2(N)':>13}")
    for n in (50, 100, 200, 400, 800, 1600):
        r = run_propagation(n, topology="dsl", seed=7)
        print(
            f"{n:>6} {r.propagation_time_s:>9.1f} {r.total_bytes / 1e6:>12.2f} "
            f"{r.per_peer_bandwidth_Bps:>13.1f} {r.propagation_time_s / math.log2(n):>13.1f}"
        )

    print("\ngossip interval vs convergence/bandwidth trade-off (N=400, DSL)\n")
    print(f"{'interval':>9} {'time (s)':>9} {'B/s per peer':>13}")
    for interval in (10.0, 30.0, 60.0):
        config = GossipConfig(base_interval_s=interval, max_interval_s=2 * interval)
        r = run_propagation(400, topology="dsl", config=config, seed=7)
        print(f"{interval:>9.0f} {r.propagation_time_s:>9.1f} {r.per_peer_bandwidth_Bps:>13.1f}")

    print("\nPlanetP vs anti-entropy-only (N=400, LAN)\n")
    planetp = run_propagation(400, topology="lan", seed=7)
    ae_only = run_propagation(
        400, topology="lan", config=GossipConfig(anti_entropy_only=True), seed=7
    )
    print(f"  PlanetP : {planetp.propagation_time_s:7.1f} s, {planetp.total_bytes/1e6:8.2f} MB")
    print(f"  AE-only : {ae_only.propagation_time_s:7.1f} s, {ae_only.total_bytes/1e6:8.2f} MB")
    print(
        f"  -> AE-only uses {ae_only.total_bytes / max(1, planetp.total_bytes):.0f}x "
        "the bandwidth (its summaries scale with community size)"
    )


if __name__ == "__main__":
    main()
