#!/usr/bin/env python
"""Analytics demo: frequent-term mining and the popularity-ranked namespace.

Walks the :mod:`repro.analytics` subsystem end to end on a small
community with a deliberately **skewed** corpus:

1. five peers publish documents drawn from a head-heavy topic
   distribution, so the community has a true top-10 of frequent terms;
2. each gossip round piggybacks one push-pull sketch exchange, and after
   a handful of rounds *every* node's estimated top-10 matches the exact
   central oracle (computed by summing true term frequencies over every
   index — something no real peer could do);
3. once converged, further rounds adopt nothing: a quiescent community
   trades (origin, epoch) digests only;
4. the community is *browsed* — ``/gossip`` is the query "gossip", and
   the listing comes back ordered by gossiped access counts, most
   popular document first, each entry carrying a ``planetp://`` link.

Run:  python examples/analytics_demo.py
"""

import asyncio
import random
from collections import Counter

from repro.analytics import CommunityBrowser
from repro.constants import AnalyticsConfig
from repro.net import NetworkPeer
from repro.serve import QueryScheduler
from repro.text.document import Document

TOPICS = [
    "gossip", "bloom", "filter", "rumor", "epidemic", "replica",
    "directory", "snippet", "ranking", "summary", "membership", "search",
    "namespace", "popularity", "sketch", "frequency", "community", "peer",
]
TOP_K = 10


def skewed_text(rng: random.Random, pid: int, d: int) -> str:
    """Six topic words, head-heavy: topic i picked with weight 1/(i+1)."""
    weights = [1.0 / (i + 1) for i in range(len(TOPICS))]
    words = set()
    while len(words) < 6:
        words.add(rng.choices(TOPICS, weights=weights)[0])
    filler = " ".join(f"peer{pid}note{d}x{i}" for i in range(3))
    return " ".join(sorted(words)) + " " + filler


def oracle_top_terms(nodes: list[NetworkPeer], k: int) -> list[str]:
    """The exact community top-k: true frequencies over every index."""
    totals: Counter[str] = Counter()
    for node in nodes:
        index = node.peer.store.index
        for term in index.terms():
            totals[term] += index.collection_frequency(term)
    return [t for t, _ in sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))][:k]


async def main() -> None:
    """Run the analytics walkthrough end to end."""
    rng = random.Random(2003)
    nodes = [
        NetworkPeer(
            pid, "127.0.0.1", 0, seed=pid, analytics_config=AnalyticsConfig()
        )
        for pid in range(5)
    ]
    for node in nodes:
        await node.start()
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    for node in nodes:
        for d in range(4):
            node.publish(Document(f"p{node.peer_id}-d{d}",
                                  skewed_text(rng, node.peer_id, d)))
    print(f"5 peers up, 20 documents published from a skewed topic mix")

    # -- sketch gossip until every estimate matches the oracle --------------
    expected = oracle_top_terms(nodes, TOP_K)
    print(f"\ncentral oracle's top-{TOP_K}: {' '.join(expected)}")
    for round_no in range(1, 31):
        for node in nodes:
            await node.gossip_round()
        worst = min(
            len({t for t, _ in n.analytics.sketch.top_terms(TOP_K)} & set(expected))
            / TOP_K
            for n in nodes
        )
        if worst >= 1.0:
            print(f"after {round_no} round(s): every node's estimated "
                  f"top-{TOP_K} matches the oracle exactly")
            break
    else:
        raise SystemExit("sketches did not converge")
    estimate = nodes[-1].analytics.sketch.top_terms(TOP_K)
    print("peer 4's converged estimate: "
          + " ".join(f"{t}={c}" for t, c in estimate[:5]) + " ...")

    # -- a converged community goes digest-only -----------------------------
    # Estimates can agree before every straggler holds every entry; wait
    # for full digest convergence so the quiescent window is honest.
    for _ in range(30):
        if len({n.analytics.sketch.versions() for n in nodes}) == 1:
            break
        for node in nodes:
            await node.gossip_round()
    adopted_before = sum(
        int(n.obs.value("analytics", "entries_merged_total")) for n in nodes
    )
    for _ in range(3):
        for node in nodes:
            await node.gossip_round()
    adopted = sum(
        int(n.obs.value("analytics", "entries_merged_total")) for n in nodes
    ) - adopted_before
    print(f"\n3 quiescent rounds later: {adopted} entries adopted — the "
          f"community now trades ~12-byte digests only")

    # -- browsing the popularity-ranked namespace ---------------------------
    sched = QueryScheduler(nodes[0])
    sched.attach_browser(CommunityBrowser(sched))
    star = "p2-d0"
    for _ in range(7):
        nodes[2].analytics.record_access(star)  # hot on its holder ...
    for _ in range(6):  # ... and gossiped to the browsing peer
        for node in nodes:
            await node.gossip_round()
    listing = await sched.browse("/gossip", k=5)
    print(f"\nbrowsing /gossip (query {listing.query!r}), most popular first:")
    for entry in listing.entries:
        print(f"  {entry.doc_id:<8s} pop={entry.popularity:<3d} {entry.link}")
    assert listing.names()[0] == star

    for node in nodes:
        await node.stop()
    print("\nall peers stopped")


if __name__ == "__main__":
    asyncio.run(main())
