#!/usr/bin/env python
"""Serve demo: the production query plane on a three-peer community.

Walks the :mod:`repro.serve` subsystem end to end over real TCP sockets:

1. a :class:`~repro.serve.QueryScheduler` fronts one peer — a repeated
   query is answered from the version-keyed result cache;
2. a publish on *another* peer moves the directory generation, so the
   stale entry is evicted and the fresh answer includes the new document;
3. an overload burst against a one-slot scheduler is shed with
   ``retry_after`` backpressure hints instead of queueing unboundedly;
4. a :class:`~repro.serve.SubscriptionClient` posts a persistent query
   and receives a wire upcall for a document published on a peer that
   never heard of the subscription.

Run:  python examples/serve_demo.py
"""

import asyncio

from repro.constants import ServeConfig
from repro.net import NetworkPeer
from repro.serve import QueryRejected, QueryScheduler, SubscriptionClient
from repro.text.document import Document

ARTICLES = [
    ("epidemics", "epidemic algorithms for replicated database maintenance"),
    ("gossip-survey", "gossip protocols spread rumors through random peer exchanges"),
    ("bloom", "bloom filters summarize set membership with compact bit arrays"),
]


async def converge(nodes: list[NetworkPeer], rounds: int = 40) -> None:
    """Drive gossip until every directory digest agrees."""
    for _ in range(rounds):
        for node in nodes:
            await node.gossip_round()
        if len({node.digest for node in nodes}) == 1:
            return
    raise SystemExit("gossip did not converge")


async def main() -> None:
    """Run the serve-plane walkthrough end to end."""
    nodes = [NetworkPeer(pid, "127.0.0.1", 0, seed=pid) for pid in range(3)]
    for node in nodes:
        await node.start()
    for node, (doc_id, text) in zip(nodes, ARTICLES):
        node.publish(Document(doc_id, text))
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    await converge(nodes)
    print(f"3 peers converged; serving from peer 0 at {nodes[0].address}")

    # -- the result cache ---------------------------------------------------
    sched = QueryScheduler(nodes[0])
    reg = nodes[0].obs
    first = await sched.ranked("gossip protocols", k=3)
    await sched.ranked("gossip protocols", k=3)
    hits = int(reg.value("serve", "result_cache_hits_total"))
    print(f"\nranked 'gossip protocols' twice: {len(first.results)} results, "
          f"cache hit on the repeat ({hits} hit)")

    # -- invalidation on publish -------------------------------------------
    nodes[2].publish(Document("fresh", "fresh gossip protocols just published"))
    await converge(nodes)
    after = await sched.ranked("gossip protocols", k=3)
    stale = int(reg.value("serve", "result_cache_stale_total"))
    assert any(d.doc_id == "fresh" for d in after.results)
    print(f"peer 2 published 'fresh': stale entry evicted ({stale} stale), "
          f"new answer includes it")

    # -- admission control under overload ----------------------------------
    tiny = QueryScheduler(
        nodes[0], ServeConfig(max_concurrent=1, max_queue=1)
    )
    gate = asyncio.Event()
    inner = tiny.client.ranked_search

    async def slowed(query: str, k: int = 20):
        await gate.wait()
        return await inner(query, k)

    tiny.client.ranked_search = slowed
    burst = [
        asyncio.ensure_future(tiny.ranked(q, k=3))
        for q in ("epidemic algorithms", "bloom membership", "random exchanges",
                  "replicated database")
    ]
    await asyncio.sleep(0.05)
    gate.set()
    outcomes = await asyncio.gather(*burst, return_exceptions=True)
    rejected = [r for r in outcomes if isinstance(r, QueryRejected)]
    served = [r for r in outcomes if not isinstance(r, BaseException)]
    print(f"\nburst of {len(burst)} queries at a 1-slot scheduler: "
          f"{len(served)} served, {len(rejected)} rejected "
          f"(retry_after {rejected[0].retry_after_s:.2f}s)" if rejected else
          "overload burst was fully absorbed")

    # -- persistent queries over the wire ----------------------------------
    client = SubscriptionClient()
    await client.start()
    upcalls: list = []
    sub_id = await client.subscribe(nodes[0].address, "gossip", upcalls.append)
    print(f"\nsubscribed #{sub_id} at peer 0; publishing on peer 1...")
    nodes[1].publish(Document("late-news", "late gossip reaches subscribers"))
    for _ in range(40):
        for node in nodes:
            await node.gossip_round()
        await asyncio.sleep(0)
        if upcalls:
            break
    for note in upcalls:
        print(f"upcall sub={note.sub_id} origin=peer-{note.origin} "
              f"doc={note.doc_id!r}")
    assert upcalls and upcalls[0].doc_id == "late-news"

    await client.close()
    for node in nodes:
        await node.stop()
    print("all peers stopped")


if __name__ == "__main__":
    asyncio.run(main())
