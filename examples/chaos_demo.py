#!/usr/bin/env python
"""Chaos demo: a gossiping community survives drops, jitter, a partition.

Ten PlanetP peers run over the in-memory loopback fabric, but every
request passes through a seeded :class:`~repro.net.chaos.FaultPlan`:
20 % of requests vanish, the rest suffer 50–500 ms of jitter, and for a
twenty-minute window the community is split into two halves that cannot
reach each other.  A :class:`~repro.net.chaos.VirtualClock` advances
simulated time, so hours of chaos replay in well under a second — and the
same seed always produces byte-identical results.

After the fault window closes, the directories converge bit-for-bit and a
ranked TF×IPF search returns exactly what the in-process reference
community computes on the same corpus.

Run:  python examples/chaos_demo.py [seed]
"""

import asyncio
import sys

from repro.core.community import InProcessCommunity
from repro.net import NetworkPeer, NetworkSearchClient
from repro.net.chaos import EdgeFaults, FaultPlan, FaultyTransport, VirtualClock
from repro.net.transport import LoopbackNetwork, TransportError
from repro.text.document import Document

ARTICLES = [
    ("epidemics", "epidemic algorithms for replicated database maintenance"),
    ("gossip-survey", "gossip protocols spread rumors through random peer exchanges"),
    ("bloom", "bloom filters summarize set membership with compact bit arrays"),
    ("chord", "chord is a scalable peer to peer lookup service"),
    ("planetp", "planetp peers gossip bloom filter summaries to rank searches"),
    ("tapestry", "tapestry routes messages through overlay neighbor tables"),
    ("pastry", "pastry object location in a self organizing overlay"),
    ("can", "a scalable content addressable network partitions a torus"),
    ("freenet", "freenet offers anonymous peer to peer file storage"),
    ("tfipf", "tf ipf ranks documents without global corpus statistics"),
]

NUM_PEERS = 10
CHAOS_END = 6000.0  # simulated seconds of drops + jitter
GOSSIP_DT = 30.0  # the paper's base gossip interval T_g


async def main(seed: int) -> None:
    clock = VirtualClock()
    plan = FaultPlan(seed=seed, clock=clock)
    plan.set_default(
        EdgeFaults(drop_rate=0.2, latency_min_s=0.05, latency_max_s=0.5),
        start=0.0,
        end=CHAOS_END,
    )
    half_a = [f"peer:{p}" for p in range(NUM_PEERS // 2)]
    half_b = [f"peer:{p}" for p in range(NUM_PEERS // 2, NUM_PEERS)]
    plan.partition(half_a, half_b, start=600.0, end=1800.0)
    print(f"chaos seed {seed}: 20% drops, 50-500ms jitter until t={CHAOS_END:.0f}s,")
    print("  partition {0..4} x {5..9} from t=600s to t=1800s\n")

    net = LoopbackNetwork()
    nodes = [
        NetworkPeer(
            pid,
            "peer",
            pid,
            transport=FaultyTransport(net.transport(), plan, sleep=clock.sleep),
            seed=(seed << 16) | pid,
            clock=clock,
        )
        for pid in range(NUM_PEERS)
    ]
    for node in nodes:
        await node.start()
    for node in nodes[1:]:
        while True:  # the fault plan can kill the join; retry in virtual time
            try:
                await node.join(nodes[0].address)
                break
            except TransportError:
                clock.advance(1.0)
    for node, (doc_id, text) in zip(nodes, ARTICLES):
        node.publish(Document(doc_id, text))
    print(f"{NUM_PEERS} peers joined and published under fire")

    def converged() -> bool:
        # Same digest, bit-identical replicas, and everyone marked online —
        # ranked search only consults peers the querier believes are alive.
        if len({n.digest for n in nodes}) != 1:
            return False
        return all(
            a.replica_of(b.peer_id) == b.peer.store.bloom_filter
            and (a is b or a.peer.directory[b.peer_id].online)
            for a in nodes
            for b in nodes
        )

    rounds = 0
    for rounds in range(1, 400):
        clock.advance(GOSSIP_DT)
        for node in nodes:
            await node.gossip_round()
        if clock() > CHAOS_END and converged():
            break
        if rounds % 40 == 0:
            digests = len({n.digest for n in nodes})
            print(
                f"  t={clock():7.0f}s round {rounds:3d}: {digests} distinct "
                f"digests, {plan.dropped} dropped, {plan.blocked} blocked"
            )
    if not converged():
        raise SystemExit(f"did not converge (seed {seed})")
    print(f"\nconverged bit-for-bit after {rounds} rounds, t={clock():.0f}s")
    print(
        f"faults injected: {plan.dropped} dropped, {plan.blocked} blocked, "
        f"{plan.resets} resets, {plan.delivered} delivered, "
        f"{plan.delay_total_s:.1f}s total jitter"
    )

    oracle = InProcessCommunity(num_peers=NUM_PEERS)
    for pid, (doc_id, text) in enumerate(ARTICLES):
        oracle.publish(pid, Document(doc_id, text))
    query = "gossip bloom filter peers"
    got = await NetworkSearchClient(nodes[7]).ranked_search(query, k=4)
    want = oracle.ranked_search(query, k=4)
    print(f"\nranked {query!r} from peer 7 after the chaos:")
    for doc in got.results:
        print(f"  {doc.doc_id:15s} score={doc.score:.3f}")
    matches = [(d.doc_id, d.score) for d in got.results] == [
        (d.doc_id, d.score) for d in want.results
    ]
    print(f"matches the in-process oracle exactly: {matches}")
    if not matches:
        raise SystemExit(f"oracle disagreement (seed {seed})")

    for node in nodes:
        await node.stop()
    print("all peers stopped")


if __name__ == "__main__":
    asyncio.run(main(int(sys.argv[1]) if len(sys.argv) > 1 else 1337))
