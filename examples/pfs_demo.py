#!/usr/bin/env python
"""PFS demo: a personal semantic file system over PlanetP (paper §6).

Three users share files; each builds a private namespace where
directories are queries.  Shows the dual-publication trick (hot terms on
the brokerage for instant findability), persistent-query upcalls adding
links as files appear, and query refinement via subdirectories.

Run:  python examples/pfs_demo.py
"""

from repro import InProcessCommunity, PFS

FILES = {
    1: [
        ("/papers/epidemic.txt",
         "epidemic algorithms for replicated database maintenance use "
         "rumor mongering and anti entropy exchanges"),
        ("/papers/bloom.txt",
         "space time trade offs in hash coding with allowable errors "
         "introduce the bloom filter"),
    ],
    2: [
        ("/music/notes.txt",
         "gossip girl album recording session notes with vocal tracks"),
        ("/papers/chord.txt",
         "chord a scalable peer to peer lookup protocol based on "
         "consistent hashing"),
    ],
}


def main() -> None:
    community = InProcessCommunity(num_peers=4)
    # Everyone volunteers as a broker.
    for pid in range(4):
        community.brokerage.add_member(pid)

    users = {pid: PFS(community, pid) for pid in range(4)}
    for pid, files in FILES.items():
        for path, content in files:
            users[pid].publish_file(path, content)

    # User 0 builds a semantic namespace.
    alice = users[0]
    papers = alice.make_directory("/gossip")
    print("alice's /gossip directory:")
    for name, url in sorted(papers.links.items()):
        print(f"  {name:20s} -> {url}")

    # Refinement: /gossip/anti-entropy narrows the query.
    refined = alice.make_directory("/gossip/entropy")
    print("\nalice's /gossip/entropy (refined query):")
    for name, url in sorted(refined.links.items()):
        print(f"  {name:20s} -> {url}")

    # New publications appear via persistent-query upcalls.
    bob = users[3]
    bob.publish_file(
        "/drafts/planetp.txt",
        "planetp uses gossip to replicate bloom filter summaries everywhere",
    )
    print("\nafter bob publishes a new draft, /gossip gains:")
    for name, url in sorted(papers.links.items()):
        print(f"  {name:20s} -> {url}")

    # The brokerage makes the file findable under its hottest terms
    # immediately, before any gossip would have converged.
    hits = community.brokerage.lookup("gossip")
    print(f"\nbrokered snippets under 'gossip': {[s.snippet_id for s in hits]}")

    # Reading a file through its URL (the File Server's GET).
    servers = {pid: u.files for pid, u in users.items()}
    name, url = sorted(papers.links.items())[0]
    print(f"\nreading {name} via {url}:")
    print(" ", alice.read_url(url, servers)[:60], "...")


if __name__ == "__main__":
    main()
