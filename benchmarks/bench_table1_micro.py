"""Table 1: micro-benchmarks of PlanetP's basic operations.

Times the six operations the paper reports (Bloom filter insert / search
/ compress / decompress, inverted-index insert / search) with
pytest-benchmark, and regenerates the fitted fixed-plus-per-key cost
model next to the paper's after-JIT numbers.
"""

import pytest

from repro.bloom.compress import compress_filter, decompress_filter
from repro.bloom.filter import BloomFilter
from repro.experiments.common import format_table
from repro.experiments.microbench import PAPER_TABLE1, run_microbench
from repro.text.invindex import InvertedIndex

KEYS_1K = [f"key-{i}" for i in range(1000)]
KEYS_10K = [f"key-{i}" for i in range(10_000)]


def test_bloom_insert_1000_keys(benchmark):
    """Bloom filter insertion (the paper's headline: ~4 + 0.011n ms)."""
    benchmark(lambda: BloomFilter.paper_prototype().add_many(KEYS_1K))


def test_bloom_search_1000_keys(benchmark):
    bf = BloomFilter.paper_prototype()
    bf.add_many(KEYS_10K)
    benchmark(lambda: bf.contains_each(KEYS_1K))


def test_bloom_compress_10k_keys(benchmark):
    bf = BloomFilter.paper_prototype()
    bf.add_many(KEYS_10K)
    benchmark(lambda: compress_filter(bf))


def test_bloom_decompress_10k_keys(benchmark):
    bf = BloomFilter.paper_prototype()
    bf.add_many(KEYS_10K)
    blob = compress_filter(bf)
    benchmark(lambda: decompress_filter(blob, 2))


def test_index_insert_1000_keys(benchmark):
    freqs = {k: 1 for k in KEYS_1K}

    def insert():
        index = InvertedIndex()
        index.add_document("doc", freqs)

    benchmark(insert)


def test_index_search(benchmark):
    index = InvertedIndex()
    for i in range(1000):
        index.add_document(f"d{i}", {"shared": 1, f"unique-{i}": 2})
    benchmark(lambda: index.conjunctive_match(["shared"]))


def test_table1_cost_models_regenerate():
    """Fit and print the full Table 1, asserting the model's form: costs
    are linear in key count with a positive marginal cost."""
    rows = run_microbench(key_counts=(1000, 5000, 10000, 20000), repeats=2)
    body = []
    for row in rows:
        fixed, slope = PAPER_TABLE1[row.operation]
        body.append([row.operation, row.cost_string(),
                     f"{fixed} + ({slope} * n)", f"{row.fit.r_squared:.3f}"])
    print()
    print(format_table(["Operation", "Measured (ms)", "Paper (ms)", "R^2"],
                       body, title="Table 1"))
    by_op = {r.operation: r for r in rows}
    # Per-key costs dominate and fit lines well for the bulk operations.
    for op in ("bloom_insert", "bloom_search", "bloom_compress", "bloom_decompress"):
        assert by_op[op].fit.slope > 0, op
        assert by_op[op].fit.r_squared > 0.9, op
    # Searching the inverted index is orders of magnitude cheaper per key
    # than building it, as in the paper (0.0001 vs 0.024 ms/key).
    assert by_op["index_search"].times_ms[-1] < by_op["index_insert"].times_ms[-1]
