"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures to quantify the knobs its prose
discusses:

* anti-entropy frequency (Section 3: "we can increase the frequency of
  performing anti-entropy, say to every other round or every fifth round.
  Unfortunately, anti-entropy is much more expensive than rumoring");
* Bloom filter width (FP rate) vs ranked-search quality;
* Weibull vs uniform document placement (the companion report's claim
  that uniform "does equally well although it has to contact more
  peers");
* merged directory filters (Section 2's storage/accuracy trade-off).
"""

import numpy as np
import pytest

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig, GossipConfig
from repro.core.merged import MergedDirectory
from repro.corpus.collections import make_collection
from repro.experiments.common import format_table
from repro.experiments.search_quality import build_testbed, evaluate_k
from repro.gossip.simulation import run_propagation


def test_ablation_ae_frequency(benchmark):
    """More frequent anti-entropy buys little time and costs bandwidth."""
    def sweep():
        rows = []
        for period in (2, 5, 10):
            cfg = GossipConfig(anti_entropy_period=period)
            r = run_propagation(200, "dsl", cfg, seed=3)
            rows.append([f"AE every {period} rounds", r.propagation_time_s,
                         r.total_bytes / 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["policy", "time (s)", "volume (MB)"], rows,
                       title="Ablation: anti-entropy frequency (N=200, DSL)"))
    by_period = {row[0]: row for row in rows}
    # The paper's design call, quantified: anti-entropy rounds *replace*
    # rumor pushes, and rumoring is the faster transport — so doing AE
    # every other round does not speed propagation up (it slows it), which
    # is why PlanetP keeps AE rare and adds the partial-AE piggyback
    # instead.
    t2 = by_period["AE every 2 rounds"][1]
    t10 = by_period["AE every 10 rounds"][1]
    assert t2 >= t10 * 0.9
    for row in rows:
        assert row[2] < 50  # volume stays payload-dominated throughout


def test_ablation_bloom_width_vs_search_quality(benchmark):
    """Shrinking filters raises the FP rate; IPF peer ranking degrades
    gracefully: recall holds (false positives only *add* candidate
    peers) while contacts rise."""
    collection = make_collection("MED", scale=0.15, seed=9)

    def eval_width(num_bits):
        testbed = build_testbed(collection, num_peers=60, seed=9)
        # Rebuild every peer's filter at the requested width.
        for peer in testbed.community.peers:
            bf = BloomFilter(num_bits, 2)
            bf.add_many(list(peer.store.index.terms()))
            peer.store._filter = bf
            peer.store.filter_version += 1
        testbed.community.replicate_directories()
        return evaluate_k(testbed, 20)

    widths = (2048, 16384, BloomConfig().num_bits)
    points = benchmark.pedantic(
        lambda: [eval_width(w) for w in widths], rounds=1, iterations=1
    )
    rows = [
        [w, f"{p.recall_ipf:.3f}", f"{p.avg_peers_ipf:.1f}"]
        for w, p in zip(widths, points)
    ]
    print()
    print(format_table(["filter bits", "recall@20", "peers contacted"], rows,
                       title="Ablation: Bloom filter width vs search quality"))
    tiny, mid, full = points
    assert tiny.recall_ipf >= full.recall_ipf - 0.15  # graceful degradation
    assert tiny.avg_peers_ipf >= full.avg_peers_ipf - 1  # FPs add contacts


def test_ablation_weibull_vs_uniform(benchmark):
    """Uniform placement reaches similar recall but contacts more peers
    (documents are more spread out)."""
    collection = make_collection("MED", scale=0.15, seed=10)

    def both():
        out = {}
        for dist in ("weibull", "uniform"):
            testbed = build_testbed(collection, num_peers=60, distribution=dist, seed=10)
            out[dist] = evaluate_k(testbed, 20)
        return out

    points = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        [dist, f"{p.recall_ipf:.3f}", f"{p.avg_peers_ipf:.1f}"]
        for dist, p in points.items()
    ]
    print()
    print(format_table(["placement", "recall@20", "peers contacted"], rows,
                       title="Ablation: Weibull vs uniform document placement"))
    wei, uni = points["weibull"], points["uniform"]
    assert abs(wei.recall_ipf - uni.recall_ipf) < 0.15
    assert uni.avg_peers_ipf >= wei.avg_peers_ipf * 0.8


def test_ablation_merged_filters(benchmark):
    """Merging directory filters: storage drops linearly, candidate sets
    over-approximate but never miss a holder."""
    rng = np.random.default_rng(4)
    peer_filters = {}
    holders = {}
    for pid in range(64):
        bf = BloomFilter(65536, 2)
        terms = [f"term-{pid}-{i}" for i in range(200)]
        bf.add_many(terms)
        peer_filters[pid] = bf
        holders[pid] = terms[0]

    def build_all():
        return {g: MergedDirectory(peer_filters, g) for g in (1, 4, 16)}

    directories = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for g, directory in directories.items():
        avg_candidates = np.mean(
            [len(directory.candidate_peers([holders[pid]])) for pid in range(64)]
        )
        rows.append([g, directory.memory_bits() // 8 // 1024, f"{avg_candidates:.1f}"])
    print()
    print(format_table(["group size", "directory KB", "avg candidates/hit"], rows,
                       title="Ablation: merged directory filters (64 peers)"))
    for g, directory in directories.items():
        for pid in range(64):
            assert pid in directory.candidate_peers([holders[pid]])
    assert directories[16].memory_bits() < directories[1].memory_bits() / 10
