#!/usr/bin/env python
"""Restart benchmark: cold rebuild vs warm repro.store recovery.

Two costs a restarting PlanetP node pays without persistence, measured
against the ``repro.store`` warm paths that remove them:

* **restart** — time to bring the local store back: re-analyzing and
  re-indexing every document (cold, the Analyzer pipeline), vs replaying
  the WAL's persisted term frequencies (warm/wal), vs loading the newest
  snapshot wholesale (warm/snapshot).  Neither warm path runs the
  Analyzer at all.
* **rejoin** — directory bytes the restarted node itself sends and
  receives until the community sees it online again at its new address:
  a cold join (full ``JoinSnapshot`` transfer: every member's record and
  compressed Bloom filter) vs a warm rejoin seeded from the directory
  checkpoint (one REJOIN rumor and digest-level anti-entropy).

Usage::

    PYTHONPATH=src python benchmarks/bench_store_restart.py --write BENCH_store.json
    PYTHONPATH=src python benchmarks/bench_store_restart.py --quick --check BENCH_store.json

``--check`` compares *ratios* (speedups, byte fractions), not absolute
times, so a baseline committed from one machine is meaningful on CI
hardware.  Hard floors: both warm restart paths must beat a cold rebuild
(>= 2x), and a warm rejoin must gossip fewer bytes than a cold join.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.constants import StoreConfig
from repro.core.datastore import LocalDataStore
from repro.corpus.synthetic import generate_collection
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.store import PersistentDataStore
from repro.text.document import Document

#: Hard floors (ratios) from the issue's acceptance criteria.
FLOORS = {
    ("restart", "speedup_wal"): 2.0,
    ("restart", "speedup_snapshot"): 2.0,
    ("rejoin", "warm_fraction"): 1.0,  # upper bound: warm must be cheaper
}

FAST_STORE = StoreConfig(fsync=False)


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _synthetic_corpus(num_docs: int, rng: np.random.Generator) -> list[Document]:
    """The repo's Zipf/topic-model corpus, so cold Analyzer cost is
    representative of real text (stemming, stopwords, skewed repeats)."""
    collection = generate_collection(
        "bench-restart",
        num_documents=num_docs,
        vocabulary_size=max(2000, num_docs * 10),
        num_queries=0,
        seed=rng,
    )
    return collection.documents


# -- restart: cold rebuild vs WAL replay vs snapshot load ---------------------


def bench_restart(num_docs: int, repeats: int, rng: np.random.Generator) -> dict:
    docs = _synthetic_corpus(num_docs, rng)

    def cold_rebuild() -> LocalDataStore:
        store = LocalDataStore()
        for doc in docs:
            store.publish(doc)
        return store

    with tempfile.TemporaryDirectory() as tmp:
        wal_dir = Path(tmp) / "wal-only"
        seeded = PersistentDataStore(wal_dir, config=FAST_STORE, registry=Registry())
        for doc in docs:
            seeded.publish(doc)
        reference = seeded.bloom_filter.copy()
        seeded.close(snapshot=False)  # leave every record in the WAL

        snap_dir = Path(tmp) / "snapshotted"
        seeded = PersistentDataStore(snap_dir, config=FAST_STORE, registry=Registry())
        for doc in docs:
            seeded.publish(doc)
        seeded.close()  # final snapshot: recovery is a pure load

        def recover(data_dir: Path) -> None:
            store = PersistentDataStore(
                data_dir, config=FAST_STORE, registry=Registry()
            )
            assert len(store) == num_docs
            assert store.bloom_filter == reference
            store.close(snapshot=False)  # keep the dir's shape for repeats

        cold_s = _best_seconds(cold_rebuild, repeats)
        warm_wal_s = _best_seconds(lambda: recover(wal_dir), repeats)
        warm_snap_s = _best_seconds(lambda: recover(snap_dir), repeats)

    return {
        "num_docs": num_docs,
        "cold_publish_s": cold_s,
        "warm_wal_s": warm_wal_s,
        "warm_snapshot_s": warm_snap_s,
        "speedup_wal": cold_s / warm_wal_s,
        "speedup_snapshot": cold_s / warm_snap_s,
    }


# -- rejoin: directory bytes with vs without a checkpoint ---------------------


def bench_rejoin(num_peers: int, rng: np.random.Generator) -> dict:
    """Directory bytes the (re)joining node itself sends and receives
    until the community sees it online again.

    Measured from the node's own transport counters, not the whole
    fabric: while the REJOIN/JOIN news spreads, the other peers keep
    gossiping among themselves, and that steady-state background traffic
    scales with community size and convergence rounds — it is not a cost
    of joining.  What the checkpoint avoids is the node's own bill: the
    full ``JoinSnapshot`` (every member record and compressed filter).
    """

    def _node_bytes(registry: Registry) -> int:
        return int(
            registry.value("transport", "bytes_sent_total")
            + registry.value("transport", "bytes_recv_total")
        )

    async def _converge(node: NetworkPeer, others: list[NetworkPeer]) -> None:
        for _ in range(30):
            await node.gossip_round()
            for other in others:
                await other.gossip_round()
            views = [o.peer.directory.get(node.peer_id) for o in others]
            if all(
                e is not None and e.address == node.address and e.online
                for e in views
            ):
                return
        raise RuntimeError("restarted node never converged")

    async def scenario(data_dir: Path) -> dict:
        net = LoopbackNetwork()
        others = []
        bootstrap = None
        for pid in range(num_peers):
            if pid == 1:
                continue  # the node that will restart
            n = NetworkPeer(
                pid, "peer", pid, transport=net.transport(), seed=pid,
                registry=Registry(),
            )
            await n.start()
            n.publish(
                Document(f"d-{pid}", " ".join(f"peer{pid}word{i}" for i in range(60)))
            )
            if bootstrap is None:
                bootstrap = n
            else:
                await n.join(bootstrap.address)
            others.append(n)
        b = NetworkPeer(
            1, "peer", 1, transport=net.transport(), seed=1,
            registry=Registry(), data_dir=data_dir, store_config=FAST_STORE,
        )
        await b.start()
        b.publish(Document("d-1", " ".join(f"peer1word{i}" for i in range(60))))
        await b.join(bootstrap.address)
        await _converge(b, others)
        b.write_checkpoint()
        await b.transport.close()  # crash

        # Warm restart: checkpoint seeds the directory.
        warm_reg = Registry()
        b2 = NetworkPeer(
            1, "peer", 101, transport=net.transport(), seed=1,
            registry=warm_reg, data_dir=data_dir, store_config=FAST_STORE,
        )
        await b2.start()
        await _converge(b2, others)
        warm_bytes = _node_bytes(warm_reg)
        await b2.transport.close()

        # Cold restart of the same node: checkpoint gone, full join.
        (data_dir / "directory.ckpt").unlink()
        cold_reg = Registry()
        b3 = NetworkPeer(
            1, "peer", 102, transport=net.transport(), seed=1,
            registry=cold_reg, data_dir=data_dir, store_config=FAST_STORE,
        )
        await b3.start()
        await b3.join(bootstrap.address)
        await _converge(b3, others)
        cold_bytes = _node_bytes(cold_reg)

        for n in others:
            await n.stop()
        await b3.stop()
        return {
            "num_peers": num_peers,
            "warm_bytes": warm_bytes,
            "cold_bytes": cold_bytes,
            "warm_fraction": warm_bytes / cold_bytes,
        }

    with tempfile.TemporaryDirectory() as tmp:
        return asyncio.run(scenario(Path(tmp)))


# -- harness -----------------------------------------------------------------


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "restart": bench_restart(
            num_docs=150 if quick else 600, repeats=2 if quick else 4, rng=rng
        ),
        "rejoin": bench_rejoin(num_peers=4 if quick else 8, rng=rng),
    }


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs floors and the committed baseline; empty means pass."""
    failures = []
    restart, rejoin = results["restart"], results["rejoin"]
    for key in ("speedup_wal", "speedup_snapshot"):
        if restart[key] < FLOORS[("restart", key)]:
            failures.append(
                f"restart/{key}: {restart[key]:.1f}x below the "
                f"{FLOORS[('restart', key)]:.0f}x floor"
            )
    if rejoin["warm_fraction"] >= FLOORS[("rejoin", "warm_fraction")]:
        failures.append(
            f"rejoin: warm rejoin ({rejoin['warm_bytes']}B) not cheaper than "
            f"a cold join ({rejoin['cold_bytes']}B)"
        )
    base_restart = baseline.get("restart", {})
    for key in ("speedup_wal", "speedup_snapshot"):
        base = base_restart.get(key)
        if base and restart[key] < base * (1.0 - threshold):
            failures.append(
                f"restart/{key}: {restart[key]:.1f}x regressed >"
                f"{threshold:.0%} from baseline {base:.1f}x"
            )
    base_fraction = baseline.get("rejoin", {}).get("warm_fraction")
    if base_fraction and rejoin["warm_fraction"] > base_fraction * (1.0 + threshold):
        failures.append(
            f"rejoin: warm fraction {rejoin['warm_fraction']:.2f} worsened >"
            f"{threshold:.0%} from baseline {base_fraction:.2f}"
        )
    return failures


def _report(results: dict) -> str:
    r = results["restart"]
    j = results["rejoin"]
    return "\n".join(
        [
            f"restart ({r['num_docs']} documents, best-of-N):",
            f"  cold rebuild (Analyzer):  {r['cold_publish_s'] * 1e3:9.1f} ms",
            f"  warm WAL replay:          {r['warm_wal_s'] * 1e3:9.1f} ms"
            f"  ({r['speedup_wal']:.1f}x)",
            f"  warm snapshot load:       {r['warm_snapshot_s'] * 1e3:9.1f} ms"
            f"  ({r['speedup_snapshot']:.1f}x)",
            f"rejoin ({j['num_peers']} peers):",
            f"  cold join:   {j['cold_bytes']:7d} bytes gossiped",
            f"  warm rejoin: {j['warm_bytes']:7d} bytes gossiped"
            f"  ({j['warm_fraction']:.0%} of cold)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    # __doc__ is None under python -OO; the benches must still run there.
    parser = argparse.ArgumentParser(
        description=(__doc__ or "store restart benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare ratios against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.40,
        help="allowed fractional ratio regression vs baseline (default 0.40)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no restart-path regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
