#!/usr/bin/env python
"""Analytics-plane benchmark: top-k accuracy, sketch traffic, browse.

Boots a loopback community with the analytics plane on and a **skewed**
corpus (Zipf-ish topic popularity, so a true top-k exists), and measures
the three things the analytics plane promises:

* **accuracy** — gossip rounds until *every* node's estimated top-10
  frequent terms reach >= 0.9 precision against the exact central
  oracle (the oracle sums true collection frequencies over every node's
  live index);
* **traffic** — per-node-round analytics bytes during convergence, and
  again over a quiescent tail where a converged community must go
  digest-only (entries stop moving; only (origin, epoch) digests do);
* **browse** — popularity-ordered listings served through the
  :class:`~repro.serve.QueryScheduler`: a repeated listing is a cache
  hit, and a publish moves the directory generation so the stale
  listing is evicted — never served.

Usage::

    PYTHONPATH=src python benchmarks/bench_analytics.py --write BENCH_analytics.json
    PYTHONPATH=src python benchmarks/bench_analytics.py --quick --check BENCH_analytics.json

``--check`` enforces hard floors (precision >= 0.9, zero stale browse
serves, popularity-ordered listings, cache hit on repeat) and gates the
per-round sketch traffic below the committed baseline's ceiling — a
*byte* gate, not a time gate, so one machine's baseline is meaningful on
CI hardware.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
from collections import Counter

import numpy as np

from repro.analytics import CommunityBrowser
from repro.constants import AnalyticsConfig
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import QueryScheduler
from repro.text.document import Document

#: Hard floors from the issue's acceptance criteria.
FLOORS = {
    "precision_min": 0.9,  # at least, for the *worst* node
    "stale_served": 0,  # exactly equal
}

#: Topic vocabulary the skew is drawn over.  Documents sample topics
#: Zipf-ishly, so community-wide term frequencies have a clear head the
#: oracle and the sketches must agree on.
TOPICS = [
    "gossip", "bloom", "filter", "rumor", "epidemic", "replica",
    "directory", "snippet", "ranking", "summary", "membership", "search",
    "namespace", "popularity", "sketch", "frequency", "community", "peer",
    "index", "retrieval", "propagation", "convergence", "shard", "census",
]
TOP_K = 10


def _skewed_text(rng: np.random.Generator, pid: int, d: int) -> str:
    """6 topic words, head-heavy: term i drawn with weight 1/(i+1)."""
    weights = 1.0 / (np.arange(len(TOPICS)) + 1.0)
    weights /= weights.sum()
    words = rng.choice(TOPICS, size=6, replace=False, p=weights)
    filler = " ".join(f"peer{pid}noise{d}x{i}" for i in range(4))
    return " ".join(words) + " " + filler


async def build_community(
    num_peers: int, docs_per_peer: int, rng: np.random.Generator
) -> list[NetworkPeer]:
    """A converged loopback community, analytics on, skewed corpus."""
    net = LoopbackNetwork(seed=7)
    nodes = [
        NetworkPeer(
            pid, "peer", pid, transport=net.transport(), seed=pid,
            registry=Registry(), analytics_config=AnalyticsConfig(),
        )
        for pid in range(num_peers)
    ]
    for node in nodes:
        await node.start()
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    for _ in range(60):
        for node in nodes:
            await node.gossip_round()
        if len({node.digest for node in nodes}) == 1:
            break
    else:
        raise RuntimeError("community never converged")
    # Publish only *after* the directory converges, so the accuracy
    # segment measures sketch propagation, not directory warm-up.
    for node in nodes:
        for d in range(docs_per_peer):
            node.publish(
                Document(f"p{node.peer_id}-d{d}", _skewed_text(rng, node.peer_id, d))
            )
    return nodes


def oracle_top_terms(nodes: list[NetworkPeer], k: int) -> set[str]:
    """The exact community top-k: true frequencies over every index."""
    totals: Counter[str] = Counter()
    for node in nodes:
        index = node.peer.store.index
        for term in index.terms():
            totals[term] += index.collection_frequency(term)
    ordered = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return {term for term, _ in ordered[:k]}


def _precisions(nodes: list[NetworkPeer], expected: set[str]) -> list[float]:
    return [
        len(set(t for t, _ in node.analytics.sketch.top_terms(TOP_K)) & expected)
        / len(expected)
        for node in nodes
    ]


def _analytics_bytes(nodes: list[NetworkPeer]) -> float:
    return sum(
        node.obs.value("node", "analytics_real_bytes_total") for node in nodes
    )


async def segment_accuracy(nodes: list[NetworkPeer], max_rounds: int) -> dict:
    """Rounds until the worst node's top-10 covers >= 90% of the oracle's."""
    expected = oracle_top_terms(nodes, TOP_K)
    bytes_before = _analytics_bytes(nodes)
    rounds = 0
    precision_min = min(_precisions(nodes, expected))
    while precision_min < FLOORS["precision_min"] and rounds < max_rounds:
        for node in nodes:
            await node.gossip_round()
        rounds += 1
        precision_min = min(_precisions(nodes, expected))
    # Keep gossiping to full digest convergence for the traffic segment.
    extra = 0
    while extra < max_rounds and len(
        {node.analytics.sketch.versions() for node in nodes}
    ) > 1:
        for node in nodes:
            await node.gossip_round()
        extra += 1
    spent = _analytics_bytes(nodes) - bytes_before
    per_node_round = spent / (max(1, rounds + extra) * len(nodes))
    return {
        "oracle_top_k": sorted(expected),
        "precision_min": precision_min,
        "rounds_to_precision": rounds,
        "rounds_to_digest_convergence": rounds + extra,
        "converge_bytes_per_node_round": per_node_round,
    }


async def segment_traffic(nodes: list[NetworkPeer], tail_rounds: int) -> dict:
    """Quiescent tail: a converged community must trade digests only."""
    merged_before = sum(
        node.obs.value("analytics", "entries_merged_total") for node in nodes
    )
    bytes_before = _analytics_bytes(nodes)
    for _ in range(tail_rounds):
        for node in nodes:
            await node.gossip_round()
    merged = sum(
        node.obs.value("analytics", "entries_merged_total") for node in nodes
    ) - merged_before
    spent = _analytics_bytes(nodes) - bytes_before
    return {
        "tail_rounds": tail_rounds,
        "entries_adopted_in_tail": int(merged),
        "steady_bytes_per_node_round": spent / (tail_rounds * len(nodes)),
    }


async def segment_browse(nodes: list[NetworkPeer]) -> dict:
    """Scheduler-fronted browse: ordering, caching, zero stale serves."""
    server = nodes[0]
    sched = QueryScheduler(server)
    sched.attach_browser(CommunityBrowser(sched))
    reg = server.obs
    # Make one document communally popular so the re-rank has teeth.
    popular = f"p{server.peer_id}-d0"
    for _ in range(5):
        server.analytics.record_access(popular)
    path = "/gossip"
    first = await sched.browse(path, k=TOP_K)
    again = await sched.browse(path, k=TOP_K)
    pops = [e.popularity for e in first.entries]
    ordered = pops == sorted(pops, reverse=True)
    hits = reg.value("serve", "result_cache_hits_total")

    # A remote publish moves the generation once gossip delivers it; the
    # re-issued listing must include the fresh document, never the stale
    # cached page.  The marker word is unique, so "fresh missing" is
    # unambiguously a stale serve.
    publisher = nodes[-1]
    publisher.publish(Document("fresh-doc", "quagga gossip page added late"))
    for _ in range(80):
        for node in nodes:
            await node.gossip_round()
        if server.replica_of(publisher.peer_id) == publisher.peer.store.bloom_filter:
            break
    else:
        raise RuntimeError("publish never reached the serving replica")
    after = await sched.browse(path, k=4 * TOP_K)
    fresh_served = "fresh-doc" in after.names()
    return {
        "popularity_ordered": ordered,
        "top_listing_is_popular": bool(first.names() and first.names()[0] == popular),
        "cache_hits": int(hits),
        "repeat_was_cached": hits >= 1 and again.names() == first.names(),
        "fresh_after_publish": fresh_served,
        "stale_served": 0 if fresh_served else 1,
        "stale_evictions": int(reg.value("serve", "result_cache_stale_total")),
    }


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    rng = np.random.default_rng(seed)

    async def sweep() -> dict:
        nodes = await build_community(
            num_peers=8 if quick else 16,
            docs_per_peer=3 if quick else 6,
            rng=rng,
        )
        try:
            accuracy = await segment_accuracy(nodes, max_rounds=40)
            traffic = await segment_traffic(nodes, tail_rounds=5 if quick else 10)
            browse = await segment_browse(nodes)
        finally:
            for node in nodes:
                await node.stop()
        return {
            "meta": {
                "quick": quick,
                "num_peers": len(nodes),
                "top_k": TOP_K,
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "accuracy": accuracy,
            "traffic": traffic,
            "browse": browse,
        }

    return asyncio.run(sweep())


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs floors and the committed byte ceiling; empty means pass."""
    failures = []
    acc, tr, br = results["accuracy"], results["traffic"], results["browse"]
    if acc["precision_min"] < FLOORS["precision_min"]:
        failures.append(
            f"accuracy: worst node's top-{TOP_K} precision "
            f"{acc['precision_min']:.0%} is below the 90% floor"
        )
    if br["stale_served"] != FLOORS["stale_served"]:
        failures.append(
            f"browse: {br['stale_served']} stale listing(s) served after "
            f"the directory moved"
        )
    if not br["fresh_after_publish"]:
        failures.append(
            "browse: the re-issued listing missed the freshly published document"
        )
    if not br["popularity_ordered"]:
        failures.append("browse: listing was not popularity-ordered")
    if not br["repeat_was_cached"]:
        failures.append("browse: the repeated listing was not a cache hit")
    # The byte gate: per-round sketch traffic must stay below the
    # committed ceiling (baseline x (1 + threshold)), both converging
    # and quiescent — and quiescence must actually be digest-only.
    base_tr = baseline.get("traffic", {})
    base_acc = baseline.get("accuracy", {})
    for label, spent, ceiling in [
        (
            "converging",
            acc["converge_bytes_per_node_round"],
            base_acc.get("converge_bytes_per_node_round"),
        ),
        (
            "steady-state",
            tr["steady_bytes_per_node_round"],
            base_tr.get("steady_bytes_per_node_round"),
        ),
    ]:
        if ceiling and spent > ceiling * (1.0 + threshold):
            failures.append(
                f"traffic: {label} sketch traffic {spent:.0f} B/node-round "
                f"exceeds the committed ceiling {ceiling:.0f} x "
                f"(1 + {threshold:.0%})"
            )
    if tr["entries_adopted_in_tail"] != 0:
        failures.append(
            f"traffic: a quiescent community still adopted "
            f"{tr['entries_adopted_in_tail']} entries — not digest-only"
        )
    return failures


def _report(results: dict) -> str:
    acc, tr, br = results["accuracy"], results["traffic"], results["browse"]
    return "\n".join(
        [
            f"accuracy ({results['meta']['num_peers']} peers, top-{TOP_K}):",
            f"  min precision {acc['precision_min']:.0%} after "
            f"{acc['rounds_to_precision']} round(s); full digest convergence "
            f"after {acc['rounds_to_digest_convergence']}",
            f"  converging traffic {acc['converge_bytes_per_node_round']:.0f} "
            f"B/node-round",
            f"traffic (quiescent tail of {tr['tail_rounds']} rounds):",
            f"  {tr['steady_bytes_per_node_round']:.0f} B/node-round, "
            f"{tr['entries_adopted_in_tail']} entries adopted (digest-only)",
            "browse:",
            f"  popularity-ordered: {br['popularity_ordered']}; most popular "
            f"listed first: {br['top_listing_is_popular']}; repeat cached: "
            f"{br['repeat_was_cached']}",
            f"  fresh document after remote publish: {br['fresh_after_publish']} "
            f"({br['stale_evictions']} stale eviction); stale listings served: "
            f"{br['stale_served']}",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    # __doc__ is None under python -OO; the benches must still run there.
    parser = argparse.ArgumentParser(
        description=(__doc__ or "analytics-plane benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.40,
        help="allowed fractional traffic growth vs baseline (default 0.40)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no analytics-plane regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
