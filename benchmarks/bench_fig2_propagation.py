"""Figure 2: propagating one Bloom filter update everywhere.

Regenerates all three panels — (a) propagation time, (b) aggregate
network volume, (c) per-peer bandwidth — for the paper's six scenarios,
and asserts the claims the figure supports:

* propagation time grows like log(N), not linearly;
* PlanetP's volume ≪ the anti-entropy-only baseline's;
* a slower gossip interval trades convergence time for bandwidth.
"""

import math

import pytest

from repro.experiments.common import format_series
from repro.experiments.propagation import figure2_series, run_figure2


_CACHE: dict = {}


@pytest.fixture
def sweep(bench_scale):
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = run_figure2(sizes=bench_scale["fig2_sizes"])
    return _CACHE["sweep"]


def test_fig2_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the full Figure 2 sweep."""
    sweep = benchmark.pedantic(
        lambda: _CACHE.setdefault(
            "sweep", run_figure2(sizes=bench_scale["fig2_sizes"])
        ),
        rounds=1, iterations=1,
    )
    panels = figure2_series(sweep)
    print()
    print(format_series(panels["time"], "N", "s", title="Figure 2(a): propagation time (s)"))
    print()
    print(format_series(panels["volume"], "N", "MB", title="Figure 2(b): network volume (MB)"))
    print()
    print(format_series(panels["bandwidth"], "N", "B/s", title="Figure 2(c): per-peer bandwidth (B/s)"))
    for runs in sweep.results.values():
        assert all(r.converged for r in runs)


def test_fig2a_log_scaling(sweep):
    """Time grows far slower than community size (log-like)."""
    for name in ("LAN", "DSL-30"):
        runs = sweep.scenario(name)
        first, last = runs[0], runs[-1]
        size_ratio = last.community_size / first.community_size
        time_ratio = last.propagation_time_s / first.propagation_time_s
        assert time_ratio < math.sqrt(size_ratio) + 1.0, name


def test_fig2b_planetp_beats_ae_only(sweep):
    """AE-only volume explodes with community size; PlanetP's doesn't."""
    lan = sweep.scenario("LAN")
    ae = sweep.scenario("LAN-AE")
    for planetp, baseline in zip(lan, ae):
        assert baseline.total_bytes > 2 * planetp.total_bytes
    # And the gap widens with community size.
    gap_small = ae[0].total_bytes / lan[0].total_bytes
    gap_large = ae[-1].total_bytes / lan[-1].total_bytes
    assert gap_large > gap_small


def test_fig2ac_interval_tradeoff(sweep):
    """DSL-10 converges faster than DSL-60; DSL-60 uses less bandwidth."""
    largest = -1
    d10 = sweep.scenario("DSL-10")[largest]
    d60 = sweep.scenario("DSL-60")[largest]
    assert d10.propagation_time_s < d60.propagation_time_s
    assert d10.per_peer_bandwidth_Bps > d60.per_peer_bandwidth_Bps


def test_fig2b_volume_modest(sweep):
    """Propagating 1000 keys costs MBs, not GBs (paper: ~11 MB total for
    thousands of peers)."""
    for r in sweep.scenario("DSL-30"):
        assert r.total_bytes < 100e6


def test_bench_propagation_kernel(benchmark):
    """pytest-benchmark hook: one mid-size propagation run."""
    from repro.gossip.simulation import run_propagation

    result = benchmark.pedantic(
        lambda: run_propagation(100, "dsl", seed=0), rounds=1, iterations=1
    )
    assert result.converged
