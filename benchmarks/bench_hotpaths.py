#!/usr/bin/env python
"""Hot-path performance sweep: codec, filter caching, batched matching.

Measures the three fast paths this repo layers on top of the paper's
algorithms, each against its straightforward "before" implementation
(which is still in the tree as the reference/oracle path):

* **codec** — vectorized :func:`repro.bloom.golomb.encode_gaps` /
  ``decode_gaps`` vs the streaming :class:`GolombEncoder` /
  :class:`GolombDecoder` bit loops, at several gap-stream sizes.  Both
  produce byte-identical streams, so only throughput differs.
* **compress cache** — :func:`repro.bloom.compress.compress_filter` with
  the version-keyed memo warm vs ``use_cache=False`` (every call
  re-encodes), the gossip-round re-send case.
* **matching** — "which peers may hold all query terms" over a 100/500/
  2000-member directory: per-peer ``contains_each`` loop vs one
  :class:`repro.bloom.matcher.FilterMatrix` gather.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --write BENCH_hotpaths.json
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick --check BENCH_hotpaths.json

``--check`` compares **speedups** (after/before ratios measured in the
same process), not raw ops/sec, so a committed baseline from one machine
is meaningful on CI hardware with different absolute speed.  A run fails
the check when any speedup falls more than ``--threshold`` (default 30%)
below the baseline's, or when a hard floor is missed (codec >= 5x
combined, 2000-peer matching >= 10x).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.bloom.compress import compress_filter
from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import (
    GolombDecoder,
    GolombEncoder,
    decode_gaps,
    encode_gaps,
    optimal_golomb_m,
)
from repro.bloom.matcher import FilterMatrix

#: Hard floors from the sweep's acceptance criteria (speedup, not ops/sec).
FLOORS = {
    ("codec", "combined"): 5.0,
    ("matching", "2000"): 10.0,
}


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time of one call (min filters out scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _rate_pair(before_fn, after_fn, repeats: int) -> dict:
    before_s = _best_seconds(before_fn, repeats)
    after_s = _best_seconds(after_fn, repeats)
    return {
        "before_ops": 1.0 / before_s,
        "after_ops": 1.0 / after_s,
        "speedup": before_s / after_s,
    }


# -- codec -------------------------------------------------------------------


def _streaming_encode(gaps: np.ndarray, m: int) -> bytes:
    enc = GolombEncoder(m)
    enc.encode_many(gaps.tolist())
    return enc.getvalue()


def _streaming_decode(blob: bytes, count: int, m: int) -> list[int]:
    return GolombDecoder(m, blob).decode_many(count)


def bench_codec(sizes: list[int], repeats: int, rng: np.random.Generator) -> dict:
    """Golomb gap-stream encode/decode at densities a real filter produces."""
    out: dict[str, dict] = {}
    speedups = []
    for n in sizes:
        # Gaps of ~1% density in paper-geometry filters: near-geometric.
        positions = np.sort(rng.choice(n * 100, size=n, replace=False))
        gaps = np.empty(n, dtype=np.int64)
        gaps[0] = positions[0]
        gaps[1:] = np.diff(positions) - 1
        m = optimal_golomb_m(0.01)
        blob = encode_gaps(gaps, m)
        assert blob == _streaming_encode(gaps, m), "codec streams must be identical"

        enc = _rate_pair(
            lambda: _streaming_encode(gaps, m),
            lambda: encode_gaps(gaps, m),
            repeats,
        )
        dec = _rate_pair(
            lambda: _streaming_decode(blob, n, m),
            lambda: decode_gaps(blob, n, m),
            repeats,
        )
        out[f"n={n}"] = {"encode": enc, "decode": dec, "bytes": len(blob), "m": m}
        speedups.append(enc["speedup"])
        speedups.append(dec["speedup"])
    # Combined = geometric mean across sizes and directions; the >=5x floor
    # applies to this, so neither direction can hide behind the other.
    out["combined_speedup"] = float(np.exp(np.mean(np.log(speedups))))
    return out


# -- compression cache -------------------------------------------------------


def bench_compress_cache(num_keys: int, repeats: int) -> dict:
    bf = BloomFilter.paper_prototype()
    bf.add_many([f"cache-key-{i}" for i in range(num_keys)])
    compress_filter(bf)  # warm the memo
    cold_s = _best_seconds(lambda: compress_filter(bf, use_cache=False), repeats)
    # One cache hit is ~a dict lookup; time a batch so the per-op figure
    # is not dominated by perf_counter resolution.
    inner = 1000

    def warm_batch() -> None:
        for _ in range(inner):
            compress_filter(bf)

    warm_s = _best_seconds(warm_batch, repeats) / inner
    return {
        "before_ops": 1.0 / cold_s,
        "after_ops": 1.0 / warm_s,
        "speedup": cold_s / warm_s,
        "compressed_bytes": len(compress_filter(bf)),
    }


# -- batched directory matching ----------------------------------------------


def _build_directory(
    num_peers: int, rng: np.random.Generator
) -> list[tuple[int, BloomFilter]]:
    """Small-geometry filters: matching cost scales with peers, not bits."""
    shared = [f"shared-{i}" for i in range(8)]
    directory = []
    for pid in range(num_peers):
        bf = BloomFilter(8192, 2)
        bf.add_many([f"peer{pid}-term-{i}" for i in range(50)])
        if pid % 3 == 0:
            bf.add_many(shared)
        directory.append((pid, bf))
    return directory


def bench_matching(peer_counts: list[int], repeats: int, rng: np.random.Generator) -> dict:
    out = {}
    terms = ["shared-0", "shared-1", "shared-2"]
    for count in peer_counts:
        directory = _build_directory(count, rng)
        matrix = FilterMatrix()
        matrix.sync(directory)

        def loop_match() -> list[int]:
            return [
                pid
                for pid, bf in directory
                if all(bf.contains_each(terms))
            ]

        assert sorted(loop_match()) == sorted(matrix.match_all_terms(terms))
        result = _rate_pair(
            loop_match, lambda: matrix.match_all_terms(terms), repeats
        )
        result["candidates"] = len(matrix.match_all_terms(terms))
        out[str(count)] = result
    return out


# -- harness -----------------------------------------------------------------


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    rng = np.random.default_rng(seed)
    repeats = 3 if quick else 7
    codec_sizes = [5_000] if quick else [5_000, 50_000]
    return {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "codec": bench_codec(codec_sizes, repeats, rng),
        "compress_cache": bench_compress_cache(20_000, repeats),
        "matching": bench_matching([100, 500, 2000], repeats, rng),
    }


def _speedups(results: dict) -> dict[tuple[str, str], float]:
    """Flatten every comparable speedup to a (section, key) -> ratio map."""
    flat = {("codec", "combined"): results["codec"]["combined_speedup"]}
    for key, row in results["codec"].items():
        if isinstance(row, dict):
            flat[("codec", f"{key}.encode")] = row["encode"]["speedup"]
            flat[("codec", f"{key}.decode")] = row["decode"]["speedup"]
    flat[("compress_cache", "cached")] = results["compress_cache"]["speedup"]
    for count, row in results["matching"].items():
        flat[("matching", count)] = row["speedup"]
    return flat


#: Speedups above this are compared as "at least 50x": past that point the
#: ratio is dominated by timer noise and hardware detail, not the code.
SPEEDUP_CAP = 50.0


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs the committed baseline; empty list means pass."""
    failures = []
    current = _speedups(results)
    reference = _speedups(baseline)
    for key, floor in FLOORS.items():
        if key in current and current[key] < floor:
            failures.append(
                f"{key[0]}/{key[1]}: speedup {current[key]:.1f}x "
                f"below hard floor {floor:.0f}x"
            )
    for key, base in reference.items():
        got = current.get(key)
        if got is None:
            continue  # baseline has sizes this (quick) run skipped
        if min(got, SPEEDUP_CAP) < min(base, SPEEDUP_CAP) * (1.0 - threshold):
            failures.append(
                f"{key[0]}/{key[1]}: speedup {got:.1f}x regressed >"
                f"{threshold:.0%} from baseline {base:.1f}x"
            )
    return failures


def _report(results: dict) -> str:
    lines = ["hot-path sweep (ops/sec, best-of-N):"]
    for key, row in results["codec"].items():
        if not isinstance(row, dict):
            continue
        for direction in ("encode", "decode"):
            r = row[direction]
            lines.append(
                f"  codec {key} {direction}: {r['before_ops']:>8.1f} -> "
                f"{r['after_ops']:>10.1f}  ({r['speedup']:.1f}x), "
                f"{row['bytes']} bytes"
            )
    lines.append(f"  codec combined speedup: {results['codec']['combined_speedup']:.1f}x")
    cc = results["compress_cache"]
    lines.append(
        f"  compress cold {cc['before_ops']:.1f} -> cached "
        f"{cc['after_ops']:.1f} ops/s ({cc['speedup']:.0f}x)"
    )
    for count, row in results["matching"].items():
        lines.append(
            f"  matching {count:>4} peers: {row['before_ops']:>8.1f} -> "
            f"{row['after_ops']:>10.1f}  ({row['speedup']:.1f}x)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    # __doc__ is None under python -OO; the benches must still run there.
    parser = argparse.ArgumentParser(
        description=(__doc__ or "hot-path benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare speedups against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression vs baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no speedup regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
