"""Figure 6: search quality — TF×IPF vs centralized TF×IDF.

Regenerates (a) recall/precision vs k, (b) recall vs community size, and
(c) peers contacted vs k, asserting the paper's headline claims:

* TF×IPF tracks TF×IDF closely (slightly behind at small k, catching up
  at large k);
* recall is roughly flat in community size;
* peers contacted grows with k, stays far below the community size, and
  sits above the oracle "Best" lower bound;
* the adaptive stopping heuristic is what makes this work.
"""

import numpy as np
import pytest

from repro.corpus.collections import make_collection
from repro.experiments.common import format_series
from repro.experiments.search_quality import (
    build_testbed,
    evaluate_k,
    run_figure6a,
    run_figure6b,
    run_figure6c,
)


_CACHE: dict = {}


def _fig6a(bench_scale):
    if "a" not in _CACHE:
        _CACHE["a"] = run_figure6a(
            scale=bench_scale["fig6_scale"],
            num_peers=bench_scale["fig6_peers"],
            ks=bench_scale["fig6_ks"],
        )
    return _CACHE["a"]


@pytest.fixture
def fig6a(bench_scale):
    return _fig6a(bench_scale)


def test_fig6a_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the Figure 6(a) k-sweep."""
    points, series = benchmark.pedantic(
        lambda: _fig6a(bench_scale), rounds=1, iterations=1
    )
    print()
    print(format_series(list(series.values()), "k", "value",
                        title="Figure 6(a): recall/precision vs k"))
    assert len(points) > 2


def test_fig6a_ipf_tracks_idf(fig6a):
    """TF×IPF recall/precision within a whisker of the oracle at every k."""
    points, _ = fig6a
    for p in points:
        assert p.recall_ipf >= p.recall_idf - 0.12, f"k={p.k}"
        assert p.precision_ipf >= p.precision_idf - 0.12, f"k={p.k}"


def test_fig6a_ipf_catches_up_at_large_k(fig6a):
    """The gap shrinks as k grows (paper: IPF catches up past k~150)."""
    points, _ = fig6a
    gap_small = points[0].recall_idf - points[0].recall_ipf
    gap_large = points[-1].recall_idf - points[-1].recall_ipf
    assert gap_large <= gap_small + 0.02


def test_fig6a_recall_monotone_in_k(fig6a):
    points, _ = fig6a
    recalls = [p.recall_ipf for p in points]
    assert recalls[-1] > recalls[0]


def test_fig6b_recall_flat_in_community_size(benchmark, bench_scale):
    points, series = benchmark.pedantic(
        lambda: run_figure6b(
            scale=bench_scale["fig6_scale"],
            community_sizes=bench_scale["fig6_sizes"],
        ),
        rounds=1, iterations=1,
    )
    print()
    print(format_series([series], "N", "recall",
                        title="Figure 6(b): recall vs community size (k=20)"))
    recalls = [p.recall_ipf for p in points]
    # "PlanetP scales well, maintaining a constant recall": the spread
    # across community sizes stays small.
    assert max(recalls) - min(recalls) < 0.15


def test_fig6c_peers_contacted(benchmark, bench_scale):
    points, series = benchmark.pedantic(
        lambda: run_figure6c(
            scale=bench_scale["fig6_scale"],
            num_peers=bench_scale["fig6_peers"],
            ks=bench_scale["fig6_ks"],
        ),
        rounds=1, iterations=1,
    )
    print()
    print(format_series(list(series.values()), "k", "peers",
                        title="Figure 6(c): peers contacted vs k"))
    for p in points:
        assert p.avg_peers_best <= p.avg_peers_ipf + 1e-9  # Best is a lower bound
        assert p.avg_peers_ipf < bench_scale["fig6_peers"]  # never the whole community
    # Contact count grows with k.
    assert points[-1].avg_peers_ipf > points[0].avg_peers_ipf


def test_fig6_ablation_adaptive_vs_naive(benchmark, bench_scale):
    """The paper's claim that naive first-k stopping gives 'terrible
    retrieval performance': adaptive stopping buys recall."""
    collection = make_collection("CACM", scale=0.05, seed=0)
    testbed = build_testbed(collection, num_peers=bench_scale["fig6_peers"], seed=0)
    adaptive = benchmark.pedantic(
        lambda: evaluate_k(testbed, 20, stopping="adaptive"), rounds=1, iterations=1
    )
    naive = evaluate_k(testbed, 20, stopping="first-k")
    print(f"\nadaptive: R={adaptive.recall_ipf:.3f} peers={adaptive.avg_peers_ipf:.1f} | "
          f"first-k: R={naive.recall_ipf:.3f} peers={naive.avg_peers_ipf:.1f}")
    assert adaptive.recall_ipf >= naive.recall_ipf


def test_bench_ranked_search_kernel(benchmark, bench_scale):
    collection = make_collection("MED", scale=0.1, seed=1)
    testbed = build_testbed(collection, num_peers=50, seed=1)
    query = collection.queries[0]

    def search():
        return testbed.community.ranked_search(query.text, k=20)

    result = benchmark(search)
    assert result.results
