"""Figure 3: m peers simultaneously joining an established community.

Regenerates the consistency-time-vs-joiners series for LAN/DSL/MIX and
asserts the paper's findings: LAN consistency in minutes even for a 25%
membership jump, DSL roughly 2x LAN, MIX blowing up toward hours.
"""

import pytest

from repro.experiments.common import format_series
from repro.experiments.join import figure3_series, run_figure3


_CACHE: dict = {}


def _sweep(bench_scale):
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = run_figure3(
            n_initial=bench_scale["fig3_initial"],
            joiner_counts=bench_scale["fig3_joiners"],
        )
    return _CACHE["sweep"]


@pytest.fixture
def sweep(bench_scale):
    return _sweep(bench_scale)


def test_fig3_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the full Figure 3 sweep."""
    sweep = benchmark.pedantic(lambda: _sweep(bench_scale), rounds=1, iterations=1)
    print()
    print(format_series(figure3_series(sweep), "total size", "s",
                        title="Figure 3: time to consistency after mass join"))
    for runs in sweep.results.values():
        assert all(r.converged for r in runs)


def test_fig3_topology_ordering(sweep):
    """LAN <= DSL << MIX at the largest joiner count."""
    lan = sweep.results["LAN"][-1].consistency_time_s
    dsl = sweep.results["DSL"][-1].consistency_time_s
    mix = sweep.results["MIX"][-1].consistency_time_s
    assert lan <= dsl * 1.1
    assert mix > dsl


def test_fig3_mix_joins_are_painful(sweep):
    """The paper's headline: on MIX links mass joins take tens of
    minutes to hours — an order of magnitude beyond LAN."""
    lan = sweep.results["LAN"][-1].consistency_time_s
    mix = sweep.results["MIX"][-1].consistency_time_s
    assert mix > 2 * lan


def test_fig3_volume_dominated_by_snapshots(sweep):
    """Join traffic is bandwidth-intensive: total volume far exceeds
    the rumor-only traffic of Figure 2 (Section 7.2's point that
    joining is 'a much more bandwidth intensive' process)."""
    biggest = sweep.results["LAN"][-1]
    # Each joiner downloads ~members * (48 + BF) bytes; require at least
    # the joiner-count multiple of one snapshot.
    assert biggest.total_bytes > biggest.joiners * biggest.initial_size * 1000


def test_bench_join_kernel(benchmark):
    from repro.gossip.simulation import run_join

    result = benchmark.pedantic(
        lambda: run_join(60, 10, "lan", seed=0), rounds=1, iterations=1
    )
    assert result.converged
