"""Figure 4: dynamic-community convergence and bandwidth.

(a) Poisson arrivals with vs without partial anti-entropy;
(b) convergence CDFs during normal churn (LAN and MIX);
(c) aggregate gossiping bandwidth over time.
"""

import numpy as np
import pytest

from repro.experiments.common import format_table
from repro.experiments.dynamic import run_figure4a, run_figure4bc


_CACHE: dict = {}


def _results_a(bench_scale):
    if "a" not in _CACHE:
        _CACHE["a"] = run_figure4a(
            n_established=bench_scale["fig4_members"],
            n_events=bench_scale["fig4_events"],
        )
    return _CACHE["a"]


def _results_bc(bench_scale):
    if "bc" not in _CACHE:
        _CACHE["bc"] = run_figure4bc(
            n_members=bench_scale["fig4_members"],
            horizon_s=bench_scale["fig4_horizon"],
        )
    return _CACHE["bc"]


@pytest.fixture
def results_a(bench_scale):
    return _results_a(bench_scale)


@pytest.fixture
def results_bc(bench_scale):
    return _results_bc(bench_scale)


def _summary(samples):
    arr = np.asarray(samples)
    return [len(arr), float(np.median(arr)), float(np.percentile(arr, 90)),
            float(arr.max())]


def test_fig4a_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the Figure 4(a) ablation pair."""
    results_a = benchmark.pedantic(
        lambda: _results_a(bench_scale), rounds=1, iterations=1
    )
    rows = [
        [label, *_summary(res.convergence_samples())]
        for label, res in results_a.items()
    ]
    print()
    print(format_table(["scenario", "events", "median", "p90", "max"], rows,
                       title="Figure 4(a): arrival convergence, partial-AE ablation"))
    for res in results_a.values():
        assert all(e.convergence_s is not None for e in res.events)


def test_fig4a_partial_ae_tightens_tail(results_a):
    """The partial anti-entropy's raison d'etre: it cuts the convergence
    tail (the paper shows much larger variation without it)."""
    with_pae = results_a["LAN"].convergence_samples()
    without = results_a["LAN-NPA"].convergence_samples()
    assert np.percentile(with_pae, 95) <= np.percentile(without, 95) * 1.15


def test_fig4b_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the Figure 4(b,c) churn runs."""
    results_bc = benchmark.pedantic(
        lambda: _results_bc(bench_scale), rounds=1, iterations=1
    )
    rows = []
    for label, res in results_bc.items():
        for kind in ("join", "rejoin"):
            samples = res.convergence_samples(label=kind)
            if samples:
                rows.append([f"{label}/{kind}", *_summary(samples)])
    print()
    print(format_table(["scenario", "events", "median", "p90", "max"], rows,
                       title="Figure 4(b): churn convergence"))
    assert rows


def test_fig4b_most_events_converge(results_bc):
    for label, res in results_bc.items():
        converged = res.convergence_samples()
        assert len(converged) >= 0.9 * len(res.events), label


def test_fig4b_lan_convergence_order_of_paper(results_bc):
    """LAN churn convergence is minutes (paper: tight around ~400 s),
    not hours."""
    samples = results_bc["LAN"].convergence_samples()
    assert np.median(samples) < 1800


def test_fig4c_bandwidth_is_modest(results_bc):
    """Normal operation uses little bandwidth: the paper reports
    100 KB/s - 1 MB/s across an entire 1000-member community."""
    res = results_bc["LAN"]
    rates = res.bandwidth_Bps
    assert rates.size > 0
    print(f"\nFigure 4(c): mean={rates.mean():.0f} B/s, "
          f"peak={rates.max():.0f} B/s aggregate")
    # Scale-free check: per-member average must stay under a few KB/s.
    assert rates.mean() / res.community_size < 4096


def test_bench_churn_kernel(benchmark):
    from repro.gossip.simulation import run_churn

    result = benchmark.pedantic(
        lambda: run_churn(n_members=60, horizon_s=1800.0, topology="lan", seed=0),
        rounds=1, iterations=1,
    )
    assert result.total_bytes > 0
