"""Table 3: regenerating the benchmark collections.

Benchmarks synthetic-corpus generation and prints the paper-vs-generated
characteristics table.
"""

from repro.corpus.collections import COLLECTION_PRESETS, make_collection
from repro.experiments.table3 import format_table3, run_table3


def test_generate_cacm_like(benchmark, bench_scale):
    scale = bench_scale["table3_scale"]
    coll = benchmark.pedantic(
        lambda: make_collection("CACM", scale=scale, seed=0), rounds=1, iterations=1
    )
    assert coll.num_documents >= 50
    assert coll.num_queries >= 10


def test_table3_regenerates(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table3(scale=bench_scale["table3_scale"], seed=0),
        rounds=1, iterations=1,
    )
    print()
    print(format_table3(rows))
    assert {r["trace"] for r in rows} == set(COLLECTION_PRESETS)
    for row in rows:
        # Scaled documents/queries track the paper's proportions.
        assert row["gen_documents"] > 0
        assert row["gen_queries"] > 0
        assert row["gen_size_mb"] > 0
    # Relative collection sizes preserve the paper's ordering: AP89 is by
    # far the largest corpus.
    by_trace = {r["trace"]: r for r in rows}
    assert by_trace["AP89"]["gen_documents"] > by_trace["CACM"]["gen_documents"]
