"""Shared configuration for the benchmark harness.

Every paper table/figure has one bench module.  Scales default to sizes
that finish in seconds-to-a-minute each; set ``PLANETP_BENCH_FULL=1`` for
paper-scale runs (community sizes up to 5000, AP89 at 20% scale — several
minutes per figure).

Each bench *prints* the regenerated rows/series (run pytest with ``-s``
to see them) and *asserts* the paper's qualitative shape, so a passing
bench suite certifies the reproduction's claims.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """Whether paper-scale runs were requested."""
    return os.environ.get("PLANETP_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Per-figure size knobs, small by default."""
    if full_scale():
        return {
            "fig2_sizes": (100, 200, 500, 1000, 2000, 5000),
            "fig3_initial": 1000,
            "fig3_joiners": (50, 100, 150, 200, 250),
            "fig4_members": 1000,
            "fig4_events": 100,
            "fig4_horizon": 4 * 3600.0,
            "fig5_members": 2000,
            "fig6_scale": 0.2,
            "fig6_peers": 400,
            "fig6_ks": (10, 20, 50, 100, 150, 200, 300),
            "fig6_sizes": (100, 200, 400, 600, 800, 1000),
            "table3_scale": 0.2,
        }
    return {
        "fig2_sizes": (50, 100, 200, 400),
        "fig3_initial": 150,
        "fig3_joiners": (10, 20, 40),
        "fig4_members": 150,
        "fig4_events": 25,
        "fig4_horizon": 2 * 3600.0,
        "fig5_members": 300,
        "fig6_scale": 0.03,
        "fig6_peers": 100,
        "fig6_ks": (10, 20, 50, 100),
        "fig6_sizes": (50, 100, 200),
        "table3_scale": 0.02,
    }
