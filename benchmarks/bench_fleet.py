#!/usr/bin/env python
"""Fleet benchmark: real-subprocess launch, convergence, recall, recovery.

Runs the :mod:`repro.fleet` orchestrator end to end — every node a
separate ``python -m repro.net`` process on its own localhost TCP port —
once with the flat (fully replicated) directory and once in
``--partial-view`` (sharded directory) mode, and reports the numbers the
harness gates scale runs on:

* **launch** — subprocess spawn-to-ready throughput (nodes/second);
* **convergence** — directory convergence time against the Fig.-2
  bound, reported as the *fraction of the bound used* so the gate is
  meaningful across machines of different speeds;
* **recall** — converged ranked-search recall vs. the in-process
  full-directory oracle, plus publish-wave freshness (stale serves);
* **recovery** — SIGKILL/warm-restart time for the crash schedule;
* **gossip cost** — mean encoded bytes per gossip round per node;
* **partial-view cost** — per-node directory filter memory as a ratio
  of the flat run's (must stay below 1.0: sharding must save memory),
  and the mode's maintenance traffic.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --write BENCH_fleet.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick --check BENCH_fleet.json

``--check`` enforces hard floors (all fleet invariants hold in both
modes: recall, zero stale serves, zero leaked processes/ports, filter
memory ratio < 1.0) and compares the machine-stable quantities — recall,
gossip bytes per round, and the partial/flat memory ratio — against the
committed baseline.  Absolute times are reported but never gated.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace

from repro.fleet import FleetReport, FleetSpec, run_scenario

#: Hard floors from the fleet acceptance criteria.  Recall is the small-
#: fleet bar (see tests/test_fleet_small.py for why it is not 0.98); the
#: partial-view run is held to the same bar at these sizes.
FLOORS = {
    "min_recall": 0.95,
    "stale_serves": 0,  # exactly equal
    "leaked": 0,  # processes + ports, exactly equal
    "pv_filter_bytes_ratio": 1.0,  # strictly below: sharding must save memory
}

#: Gossip cost may drift in either direction: paying more bytes per
#: round than baseline is a compression/summary regression.
GOSSIP_BYTES_SLACK = 0.50

#: The partial/flat memory ratio may drift this much over baseline
#: before the gate trips (admission jitter moves the sample contents).
PV_RATIO_SLACK = 0.25


def _spec(quick: bool, seed: int) -> FleetSpec:
    if quick:
        return FleetSpec(num_nodes=10, seed=seed, num_crashes=1)
    return FleetSpec(num_nodes=25, seed=seed)


def _pv_spec(quick: bool, seed: int) -> FleetSpec:
    # The sample must stay well under the community size or the sharded
    # view degenerates into the flat one and the ratio gate means nothing.
    base = _spec(quick, seed)
    if quick:
        return replace(base, partial_view=True, num_shards=3, view_sample=2)
    return replace(base, partial_view=True, num_shards=5, view_sample=4)


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    spec = _spec(quick, seed)
    report: FleetReport = run_scenario(spec)
    pv_spec = _pv_spec(quick, seed)
    pv_report: FleetReport = run_scenario(pv_spec)
    flat_filter_bytes = report.directory_filter_bytes_per_node
    return {
        "meta": {
            "quick": quick,
            "num_nodes": spec.num_nodes,
            "seed": seed,
            "python": platform.python_version(),
            "pv_num_shards": pv_spec.resolved_num_shards,
            "pv_view_sample": pv_spec.view_sample,
        },
        "fleet": report.to_dict(),
        "partialview": pv_report.to_dict(),
        "derived": {
            "launch_nodes_per_s": (
                spec.num_nodes / report.launch_s if report.launch_s else 0.0
            ),
            "convergence_bound_used": (
                report.convergence_s / report.convergence_bound_s
                if report.convergence_bound_s
                else 0.0
            ),
            "violations": report.violations(min_recall=FLOORS["min_recall"]),
            "pv_violations": pv_report.violations(
                min_recall=FLOORS["min_recall"]
            ),
            #: the sublinearity headline: partial-view filter memory per
            #: node over the flat run's (a ratio, so machine-stable).
            "pv_filter_bytes_ratio": (
                pv_report.directory_filter_bytes_per_node / flat_filter_bytes
                if flat_filter_bytes
                else 0.0
            ),
            "pv_maintenance_bytes_per_node": pv_report.partialview_bytes_per_node,
        },
    }


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs floors and the committed baseline; empty means pass."""
    failures = []
    fleet, derived = results["fleet"], results["derived"]
    for violation in derived["violations"]:
        failures.append(f"invariant: {violation}")
    for violation in derived.get("pv_violations", ()):
        failures.append(f"partial-view invariant: {violation}")
    for key in ("fleet", "partialview"):
        mode = results.get(key, {})
        leaked = mode.get("leaked_processes", 0) + mode.get("leaked_ports", 0)
        if leaked != FLOORS["leaked"]:
            failures.append(f"{key} hygiene: {leaked} leaked process(es)/port(s)")
    ratio = derived.get("pv_filter_bytes_ratio", 0.0)
    if not 0.0 < ratio < FLOORS["pv_filter_bytes_ratio"]:
        failures.append(
            f"partial-view filter memory ratio {ratio:.2f} is not below "
            f"{FLOORS['pv_filter_bytes_ratio']:.1f}x the flat directory's"
        )
    base = baseline.get("fleet", {})
    base_recall = base.get("recall")
    if base_recall and fleet["recall"] < base_recall * (1.0 - threshold):
        failures.append(
            f"recall {fleet['recall']:.3f} regressed >{threshold:.0%} "
            f"from baseline {base_recall:.3f}"
        )
    base_bytes = base.get("gossip_bytes_per_round")
    if base_bytes and fleet["gossip_bytes_per_round"] > base_bytes * (
        1.0 + GOSSIP_BYTES_SLACK
    ):
        failures.append(
            f"gossip cost {fleet['gossip_bytes_per_round']:.0f} B/round grew "
            f">{GOSSIP_BYTES_SLACK:.0%} over baseline {base_bytes:.0f} B/round"
        )
    # The memory ratio depends on fleet size (a fixed-size sample is a
    # bigger fraction of a smaller community), so drift is only
    # comparable against a baseline of the same scale; the hard <1.0
    # floor above gates every run regardless.
    same_scale = results.get("meta", {}).get("num_nodes") == baseline.get(
        "meta", {}
    ).get("num_nodes")
    base_ratio = baseline.get("derived", {}).get("pv_filter_bytes_ratio")
    if same_scale and base_ratio and ratio > base_ratio * (1.0 + PV_RATIO_SLACK):
        failures.append(
            f"partial-view memory ratio {ratio:.2f} grew >{PV_RATIO_SLACK:.0%} "
            f"over baseline {base_ratio:.2f}"
        )
    return failures


def _report_mode(fleet: dict, title: str) -> list[str]:
    waves = ", ".join(f"{s:.1f}s" for s in fleet["wave_propagation_s"]) or "none"
    lines = [
        f"{title} fleet of {fleet['num_nodes']} subprocess nodes "
        f"(seed {fleet['seed']}):",
        f"  launch       {fleet['launch_s']:8.1f}s",
        f"  convergence  {fleet['convergence_s']:8.1f}s  "
        f"(bound {fleet['convergence_bound_s']:.0f}s)",
        f"  recall       {fleet['recall']:8.3f}   "
        f"(worst query {fleet['recall_min']:.3f}); "
        f"stale serves {fleet['stale_serves']}",
        f"  waves        {waves}",
        f"  recovery     {fleet['recovery_s']:8.1f}s  "
        f"(crash pids {fleet['crash_pids']}, recall after "
        f"{fleet['recall_after_recovery']:.3f})",
        f"  gossip       {fleet['gossip_bytes_per_round']:8.0f} B/round  "
        f"({fleet['gossip_rounds_per_node']:.0f} rounds/node)",
        f"  cleanup      {fleet['forced_kills']} forced, "
        f"{fleet['leaked_processes']} leaked proc(s), "
        f"{fleet['leaked_ports']} leaked port(s)",
    ]
    return lines


def _report(results: dict) -> str:
    derived = results["derived"]
    lines = _report_mode(results["fleet"], "flat")
    lines += _report_mode(results["partialview"], "partial-view")
    lines += [
        f"partial-view filter memory: {derived['pv_filter_bytes_ratio']:.2f}x "
        f"the flat directory's "
        f"({derived['pv_maintenance_bytes_per_node']:.0f} maintenance B/node)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(__doc__ or "fleet benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="allowed fractional recall regression vs baseline (default 0.05)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no fleet regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
