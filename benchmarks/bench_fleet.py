#!/usr/bin/env python
"""Fleet benchmark: real-subprocess launch, convergence, recall, recovery.

Runs the :mod:`repro.fleet` orchestrator end to end — every node a
separate ``python -m repro.net`` process on its own localhost TCP port —
and reports the numbers the harness gates scale runs on:

* **launch** — subprocess spawn-to-ready throughput (nodes/second);
* **convergence** — directory convergence time against the Fig.-2
  bound, reported as the *fraction of the bound used* so the gate is
  meaningful across machines of different speeds;
* **recall** — converged ranked-search recall vs. the in-process
  full-directory oracle, plus publish-wave freshness (stale serves);
* **recovery** — SIGKILL/warm-restart time for the crash schedule;
* **gossip cost** — mean encoded bytes per gossip round per node.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --write BENCH_fleet.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick --check BENCH_fleet.json

``--check`` enforces hard floors (all fleet invariants hold: recall,
zero stale serves, zero leaked processes/ports) and compares the
machine-stable quantities — recall and gossip bytes per round — against
the committed baseline.  Absolute times are reported but never gated.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.fleet import FleetReport, FleetSpec, run_scenario

#: Hard floors from the fleet acceptance criteria.  Recall is the small-
#: fleet bar (see tests/test_fleet_small.py for why it is not 0.98).
FLOORS = {
    "min_recall": 0.95,
    "stale_serves": 0,  # exactly equal
    "leaked": 0,  # processes + ports, exactly equal
}

#: Gossip cost may drift in either direction: paying more bytes per
#: round than baseline is a compression/summary regression.
GOSSIP_BYTES_SLACK = 0.50


def _spec(quick: bool, seed: int) -> FleetSpec:
    if quick:
        return FleetSpec(num_nodes=10, seed=seed, num_crashes=1)
    return FleetSpec(num_nodes=25, seed=seed)


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    spec = _spec(quick, seed)
    report: FleetReport = run_scenario(spec)
    return {
        "meta": {
            "quick": quick,
            "num_nodes": spec.num_nodes,
            "seed": seed,
            "python": platform.python_version(),
        },
        "fleet": report.to_dict(),
        "derived": {
            "launch_nodes_per_s": (
                spec.num_nodes / report.launch_s if report.launch_s else 0.0
            ),
            "convergence_bound_used": (
                report.convergence_s / report.convergence_bound_s
                if report.convergence_bound_s
                else 0.0
            ),
            "violations": report.violations(min_recall=FLOORS["min_recall"]),
        },
    }


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs floors and the committed baseline; empty means pass."""
    failures = []
    fleet, derived = results["fleet"], results["derived"]
    for violation in derived["violations"]:
        failures.append(f"invariant: {violation}")
    leaked = fleet["leaked_processes"] + fleet["leaked_ports"]
    if leaked != FLOORS["leaked"]:
        failures.append(f"hygiene: {leaked} leaked process(es)/port(s)")
    base = baseline.get("fleet", {})
    base_recall = base.get("recall")
    if base_recall and fleet["recall"] < base_recall * (1.0 - threshold):
        failures.append(
            f"recall {fleet['recall']:.3f} regressed >{threshold:.0%} "
            f"from baseline {base_recall:.3f}"
        )
    base_bytes = base.get("gossip_bytes_per_round")
    if base_bytes and fleet["gossip_bytes_per_round"] > base_bytes * (
        1.0 + GOSSIP_BYTES_SLACK
    ):
        failures.append(
            f"gossip cost {fleet['gossip_bytes_per_round']:.0f} B/round grew "
            f">{GOSSIP_BYTES_SLACK:.0%} over baseline {base_bytes:.0f} B/round"
        )
    return failures


def _report(results: dict) -> str:
    fleet, derived = results["fleet"], results["derived"]
    waves = ", ".join(f"{s:.1f}s" for s in fleet["wave_propagation_s"]) or "none"
    return "\n".join(
        [
            f"fleet of {fleet['num_nodes']} subprocess nodes (seed {fleet['seed']}):",
            f"  launch       {fleet['launch_s']:8.1f}s  "
            f"({derived['launch_nodes_per_s']:.1f} nodes/s)",
            f"  convergence  {fleet['convergence_s']:8.1f}s  "
            f"({derived['convergence_bound_used']:.0%} of the "
            f"{fleet['convergence_bound_s']:.0f}s Fig.-2 bound)",
            f"  recall       {fleet['recall']:8.3f}   "
            f"(worst query {fleet['recall_min']:.3f}); "
            f"stale serves {fleet['stale_serves']}",
            f"  waves        {waves}",
            f"  recovery     {fleet['recovery_s']:8.1f}s  "
            f"(crash pids {fleet['crash_pids']}, recall after "
            f"{fleet['recall_after_recovery']:.3f})",
            f"  gossip       {fleet['gossip_bytes_per_round']:8.0f} B/round  "
            f"({fleet['gossip_rounds_per_node']:.0f} rounds/node)",
            f"  cleanup      {fleet['forced_kills']} forced, "
            f"{fleet['leaked_processes']} leaked proc(s), "
            f"{fleet['leaked_ports']} leaked port(s)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(__doc__ or "fleet benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="allowed fractional recall regression vs baseline (default 0.05)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no fleet regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
