"""Figure 5: convergence in a large dynamic community (LAN, MIX, MIX-F,
MIX-S) under the bandwidth-aware gossiping policy."""

import numpy as np
import pytest

from repro.experiments.common import format_table
from repro.experiments.dynamic import run_figure5


_CACHE: dict = {}


def _result(bench_scale):
    if "r" not in _CACHE:
        _CACHE["r"] = run_figure5(
            n_members=bench_scale["fig5_members"],
            horizon_s=bench_scale["fig4_horizon"],
        )
    return _CACHE["r"]


@pytest.fixture
def result(bench_scale):
    return _result(bench_scale)


def _summary(samples):
    arr = np.asarray(samples)
    if arr.size == 0:
        return [0, float("nan"), float("nan")]
    return [len(arr), float(np.median(arr)), float(np.percentile(arr, 90))]


def test_fig5_regenerate_and_print(benchmark, bench_scale):
    """Benchmarked kernel: the Figure 5 LAN + MIX churn runs."""
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    rows = [
        ["LAN", *_summary(result.lan.convergence_samples())],
        ["MIX", *_summary(result.mix.convergence_samples())],
        ["MIX-F", *_summary(result.mix_fast_origin)],
        ["MIX-S", *_summary(result.mix_slow_origin)],
    ]
    print()
    print(format_table(["scenario", "events", "median", "p90"], rows,
                       title="Figure 5: dynamic community convergence"))
    assert result.lan.events and result.mix.events


def test_fig5_events_converge(result):
    assert len(result.lan.convergence_samples()) >= 0.9 * len(result.lan.events)
    assert len(result.mix.convergence_samples()) >= 0.8 * len(result.mix.events)


def test_fig5_fast_condition_not_worse(result):
    """The fast-peers-only convergence condition can only be easier than
    full convergence: MIX-F/MIX-S medians <= the all-peers MIX median
    (the paper's point that fast peers learn events efficiently)."""
    mix_all = np.median(result.mix.convergence_samples())
    fast_cond = result.mix_fast_origin + result.mix_slow_origin
    assert np.median(fast_cond) <= mix_all * 1.05


def test_fig5_lan_not_slower_than_mix(result):
    lan = np.median(result.lan.convergence_samples())
    mix = np.median(result.mix.convergence_samples())
    assert lan <= mix * 1.25
