#!/usr/bin/env python
"""Query-plane benchmark: QPS, tail latency, caching, and load shedding.

Boots a loopback community (every RPC crosses the in-memory fabric with
a small injected latency), fronts one member with a
:class:`~repro.serve.QueryScheduler`, and measures three things the
serving plane promises:

* **throughput** — a repeated-query mix at the default admission limits:
  queries per second, executed-search p50/p99 from the scheduler's
  ``serve.query_latency_seconds`` histogram, the result-cache hit rate,
  and the wall-clock speedup of an all-hits pass over the cold pass;
* **invalidation** — a document published on a *different* peer moves
  the directory generation once gossip delivers it; the re-issued query
  must return the new document (stale answers are never served);
* **overload** — a burst at a one-slot scheduler: arrivals beyond the
  bounded queue are rejected with ``retry_after`` hints, counted, and
  the plane keeps answering what it admitted.

Usage::

    PYTHONPATH=src python benchmarks/bench_qps.py --write BENCH_qps.json
    PYTHONPATH=src python benchmarks/bench_qps.py --quick --check BENCH_qps.json

``--check`` enforces hard floors (cache hit rate > 0, zero stale serves,
fresh-after-publish, rejections under overload) and compares *ratios*
(hit rate, capped cache speedup) against the committed baseline — never
absolute times, so one machine's baseline is meaningful on CI hardware.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time

import numpy as np

from repro.constants import ServeConfig
from repro.net.node import NetworkPeer
from repro.net.transport import LoopbackNetwork
from repro.obs import Registry
from repro.serve import QueryRejected, QueryScheduler
from repro.text.document import Document

#: Hard floors from the issue's acceptance criteria.
FLOORS = {
    "cache_hit_rate": 0.0,  # strictly greater than
    "stale_served": 0,  # exactly equal
    "rejected_min": 1,  # at least
}

#: An all-hits pass can be arbitrarily faster than the cold pass; cap the
#: ratio before baseline comparison so the gate is stable across machines.
SPEEDUP_CAP = 50.0

#: Shared topic vocabulary: queries drawn from it match some-but-not-all
#: peers, so ranked search exercises real fan-out.
TOPICS = [
    "gossip", "bloom", "filter", "rumor", "epidemic", "replica",
    "directory", "snippet", "ranking", "summary", "membership", "search",
]


async def build_community(
    num_peers: int, docs_per_peer: int, rng: np.random.Generator,
    latency_s: float,
) -> list[NetworkPeer]:
    """A converged loopback community with topic-word documents."""
    net = LoopbackNetwork(latency_s=latency_s)
    nodes = [
        NetworkPeer(
            pid, "peer", pid, transport=net.transport(), seed=pid,
            registry=Registry(),
        )
        for pid in range(num_peers)
    ]
    for node in nodes:
        await node.start()
    for node in nodes:
        for d in range(docs_per_peer):
            words = rng.choice(TOPICS, size=6, replace=False)
            filler = " ".join(f"peer{node.peer_id}noise{i}" for i in range(8))
            node.publish(
                Document(f"p{node.peer_id}-d{d}", " ".join(words) + " " + filler)
            )
    for node in nodes[1:]:
        await node.join(nodes[0].address)
    for _ in range(60):
        for node in nodes:
            await node.gossip_round()
        if len({node.digest for node in nodes}) == 1:
            break
    else:
        raise RuntimeError("community never converged")
    return nodes


def _query_mix(rng: np.random.Generator, distinct: int) -> list[str]:
    queries = []
    for _ in range(distinct):
        a, b = rng.choice(TOPICS, size=2, replace=False)
        queries.append(f"{a} {b}")
    return queries


async def _run_pass(
    sched: QueryScheduler, queries: list[str], concurrency: int
) -> float:
    """Issue every query (bounded concurrency); returns wall seconds."""
    started = time.perf_counter()
    for at in range(0, len(queries), concurrency):
        await asyncio.gather(
            *(sched.ranked(q, k=10) for q in queries[at : at + concurrency])
        )
    return time.perf_counter() - started


async def segment_throughput(
    sched: QueryScheduler, rng: np.random.Generator,
    distinct: int, passes: int,
) -> dict:
    queries = _query_mix(rng, distinct)
    reg = sched.obs
    cold_s = await _run_pass(sched, queries, concurrency=8)
    warm_s = cold_s
    total_s = cold_s
    for _ in range(passes - 1):
        warm_s = await _run_pass(sched, queries, concurrency=8)
        total_s += warm_s
    snap = reg.snapshot("serve", "query_latency_seconds")
    hits = reg.value("serve", "result_cache_hits_total")
    misses = reg.value("serve", "result_cache_misses_total")
    executed = int(snap.total) if snap is not None else 0
    return {
        "queries": distinct * passes,
        "distinct": distinct,
        "passes": passes,
        "qps": distinct * passes / total_s,
        "p50_ms": snap.quantile(0.5) * 1e3 if executed else 0.0,
        "p99_ms": snap.quantile(0.99) * 1e3 if executed else 0.0,
        "executed_searches": executed,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "cold_pass_s": cold_s,
        "warm_pass_s": warm_s,
        "cache_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


async def segment_invalidation(
    sched: QueryScheduler, nodes: list[NetworkPeer]
) -> dict:
    """Publish on a remote peer; the cached answer must go stale, and the
    re-issued query must include the new document."""
    # A term no seeded document carries: the pre-publish answer is a
    # cached empty set, and after the publish only the fresh document can
    # satisfy it — so "fresh missing" is unambiguously a stale serve, not
    # a ranking artifact of topic words shared across the community.
    query = "quagga gossip"
    before = await sched.ranked(query, k=10)
    await sched.ranked(query, k=10)  # ensure the entry is cached & hot
    reg = sched.obs
    stale_before = reg.value("serve", "result_cache_stale_total")

    publisher = nodes[-1]
    publisher.publish(
        Document("fresh-doc", "quagga gossip news published after caching")
    )
    server = sched.node
    for _ in range(80):
        for node in nodes:
            await node.gossip_round()
        if server.replica_of(publisher.peer_id) == publisher.peer.store.bloom_filter:
            break
    else:
        raise RuntimeError("publish never reached the serving replica")

    after = await sched.ranked(query, k=10)
    fresh_served = any(d.doc_id == "fresh-doc" for d in after.results)
    # A stale serve would be the *old* result coming back after the
    # replica update: fresh missing even though the directory moved.
    stale_served = 0 if fresh_served else 1
    return {
        "fresh_after_publish": fresh_served,
        "stale_served": stale_served,
        "stale_evictions": int(
            reg.value("serve", "result_cache_stale_total") - stale_before
        ),
        "results_before": len(before.results),
        "results_after": len(after.results),
    }


async def segment_overload(
    node: NetworkPeer, rng: np.random.Generator, burst: int
) -> dict:
    """A burst at a one-slot scheduler: bounded queue, counted rejects."""
    sched = QueryScheduler(node, ServeConfig(max_concurrent=1, max_queue=2))
    queries = _query_mix(rng, burst)
    outcomes = await asyncio.gather(
        *(sched.ranked(q, k=10) for q in queries), return_exceptions=True
    )
    rejections = [r for r in outcomes if isinstance(r, QueryRejected)]
    errors = [
        r for r in outcomes
        if isinstance(r, BaseException) and not isinstance(r, QueryRejected)
    ]
    if errors:
        raise errors[0]
    return {
        "burst": burst,
        "served": burst - len(rejections),
        "rejected": len(rejections),
        "retry_after_hint_s": (
            float(np.mean([r.retry_after_s for r in rejections]))
            if rejections
            else 0.0
        ),
        "rejected_counter": int(
            node.obs.value("serve", "queries_rejected_total")
        ),
    }


def run_sweep(quick: bool, seed: int = 20030612) -> dict:
    rng = np.random.default_rng(seed)

    async def sweep() -> dict:
        nodes = await build_community(
            num_peers=6 if quick else 12,
            docs_per_peer=3 if quick else 6,
            rng=rng,
            latency_s=0.0005,
        )
        sched = QueryScheduler(nodes[0])
        try:
            throughput = await segment_throughput(
                sched, rng,
                distinct=8 if quick else 16,
                passes=3 if quick else 5,
            )
            invalidation = await segment_invalidation(sched, nodes)
            overload = await segment_overload(
                nodes[0], rng, burst=12 if quick else 24
            )
        finally:
            for node in nodes:
                await node.stop()
        return {
            "meta": {
                "quick": quick,
                "num_peers": len(nodes),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "throughput": throughput,
            "invalidation": invalidation,
            "overload": overload,
        }

    return asyncio.run(sweep())


def check_regression(results: dict, baseline: dict, threshold: float) -> list[str]:
    """Failures vs floors and the committed baseline; empty means pass."""
    failures = []
    t, inv, ovl = results["throughput"], results["invalidation"], results["overload"]
    if t["cache_hit_rate"] <= FLOORS["cache_hit_rate"]:
        failures.append(
            f"throughput: cache hit rate {t['cache_hit_rate']:.0%} — the "
            f"repeated-query mix never hit the cache"
        )
    if inv["stale_served"] != FLOORS["stale_served"]:
        failures.append(
            f"invalidation: {inv['stale_served']} stale result(s) served "
            f"after the directory moved"
        )
    if not inv["fresh_after_publish"]:
        failures.append(
            "invalidation: the re-issued query missed the freshly "
            "published document"
        )
    if ovl["rejected"] < FLOORS["rejected_min"]:
        failures.append(
            f"overload: burst of {ovl['burst']} produced no rejections — "
            f"admission control is not shedding"
        )
    base_t = baseline.get("throughput", {})
    base_rate = base_t.get("cache_hit_rate")
    if base_rate and t["cache_hit_rate"] < base_rate * (1.0 - threshold):
        failures.append(
            f"throughput: hit rate {t['cache_hit_rate']:.0%} regressed >"
            f"{threshold:.0%} from baseline {base_rate:.0%}"
        )
    base_speedup = base_t.get("cache_speedup")
    if base_speedup:
        capped = min(t["cache_speedup"], SPEEDUP_CAP)
        base_capped = min(base_speedup, SPEEDUP_CAP)
        if capped < base_capped * (1.0 - threshold):
            failures.append(
                f"throughput: cache speedup {capped:.1f}x regressed >"
                f"{threshold:.0%} from baseline {base_capped:.1f}x"
            )
    return failures


def _report(results: dict) -> str:
    t, inv, ovl = results["throughput"], results["invalidation"], results["overload"]
    return "\n".join(
        [
            f"throughput ({t['distinct']} distinct x {t['passes']} passes, "
            f"{results['meta']['num_peers']} peers):",
            f"  {t['qps']:8.1f} queries/s   p50 {t['p50_ms']:.1f} ms   "
            f"p99 {t['p99_ms']:.1f} ms  ({t['executed_searches']} searches ran)",
            f"  cache hit rate {t['cache_hit_rate']:.0%}; all-hits pass "
            f"{min(t['cache_speedup'], SPEEDUP_CAP):.1f}x faster than cold",
            "invalidation:",
            f"  fresh document served after remote publish: "
            f"{inv['fresh_after_publish']} ({inv['stale_evictions']} stale "
            f"eviction); stale results served: {inv['stale_served']}",
            f"overload (burst {ovl['burst']} at 1 slot, queue 2):",
            f"  served {ovl['served']}, rejected {ovl['rejected']} "
            f"(retry_after hint {ovl['retry_after_hint_s']:.2f}s)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    # __doc__ is None under python -OO; the benches must still run there.
    parser = argparse.ArgumentParser(
        description=(__doc__ or "query-plane benchmark").splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--write", metavar="PATH", help="write results JSON")
    parser.add_argument(
        "--check", metavar="PATH", help="compare ratios against a baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.40,
        help="allowed fractional ratio regression vs baseline (default 0.40)",
    )
    args = parser.parse_args(argv)

    results = run_sweep(quick=args.quick)
    print(_report(results))
    if args.write:
        with open(args.write, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(results, baseline, args.threshold)
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"ok: no query-plane regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
