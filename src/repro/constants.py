"""Simulation and protocol constants.

These mirror Table 2 of the paper ("Constants used in our simulation of
PlanetP's gossiping algorithm") plus the protocol parameters quoted in the
prose of Sections 3-5.  All values are plain module-level constants so that
experiment code can reference the paper's configuration by name, and a
:class:`GossipConfig` dataclass bundles the tunable subset for simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Table 2: simulation constants
# --------------------------------------------------------------------------

#: CPU time consumed by one gossip processing step (seconds).  Table 2: 5 ms.
CPU_GOSSIP_TIME_S: float = 0.005

#: Base gossiping interval T_g (seconds).  Table 2 / Section 3: 30 s.
BASE_GOSSIP_INTERVAL_S: float = 30.0

#: Maximum gossiping interval reached by the adaptive slow-down (seconds).
#: Table 2 lists 60 s (the prose mentions growing "to a maximum of 2
#: minutes"; we follow the table, which parameterized the reported runs).
MAX_GOSSIP_INTERVAL_S: float = 60.0

#: Message header size in bytes.  Table 2: 3 bytes.
MESSAGE_HEADER_BYTES: int = 3

#: Wire size of a (compressed) Bloom filter summarizing 1000 keys.
BF_1000_KEYS_BYTES: int = 3000

#: Wire size of a (compressed) Bloom filter summarizing 20000 keys.
BF_20000_KEYS_BYTES: int = 16000

#: Size of a Bloom-filter summary entry (version digest) in bytes.
BF_SUMMARY_BYTES: int = 6

#: Size of one peer's entry in an anti-entropy directory summary, in bytes.
PEER_SUMMARY_BYTES: int = 48

# --------------------------------------------------------------------------
# Section 3 protocol parameters
# --------------------------------------------------------------------------

#: A peer stops spreading a rumor after contacting this many peers in a row
#: that already know it (Demers et al.'s "counter" variant; paper: n).
RUMOR_GIVE_UP_COUNT: int = 2

#: Every Nth gossip round is a (full) anti-entropy round instead of rumoring.
ANTI_ENTROPY_PERIOD: int = 10

#: Number of recently-retired rumor ids piggybacked on each rumor reply for
#: the partial anti-entropy exchange (paper: "a small number m").
PARTIAL_AE_RECENT_RUMORS: int = 10

#: Number of consecutive no-news contacts before the gossip interval grows
#: (the "gossip-less threshold", Section 3: 2).
GOSSIP_LESS_THRESHOLD: int = 2

#: Additive slow-down applied to the gossip interval each time the
#: gossip-less threshold is reached (Section 3: 5 s).
GOSSIP_SLOWDOWN_S: float = 5.0

#: Time a peer may stay marked off-line before it is dropped from the
#: directory (T_Dead).  The paper does not fix a value; we default to a week.
T_DEAD_S: float = 7 * 24 * 3600.0

#: Probability that a *fast* peer rumors with a *slow* peer under the
#: bandwidth-aware peer selection policy (Section 7.2: 1%).
BW_AWARE_FAST_TO_SLOW_PROB: float = 0.01

#: Link speed at or above which a peer counts as "fast" for the
#: bandwidth-aware policy (Section 7.2: 512 Kb/s or better).
FAST_LINK_THRESHOLD_BPS: float = 512_000.0 / 8.0  # bytes/second

# --------------------------------------------------------------------------
# Link speeds (bits/sec as quoted; stored in bytes/sec for the simulator)
# --------------------------------------------------------------------------


def _bps(bits_per_second: float) -> float:
    """Convert a link speed in bits/second to bytes/second."""
    return bits_per_second / 8.0


#: 56 kbps modem link, bytes/second.
LINK_MODEM: float = _bps(56_000)
#: 512 kbps DSL link, bytes/second.
LINK_DSL: float = _bps(512_000)
#: 5 Mbps cable link, bytes/second.
LINK_CABLE: float = _bps(5_000_000)
#: 10 Mbps Ethernet link, bytes/second.
LINK_ETHERNET: float = _bps(10_000_000)
#: 45 Mbps T3/LAN link, bytes/second.
LINK_LAN: float = _bps(45_000_000)

#: The MIX link-speed distribution measured by Saroiu et al. and used in the
#: paper: fractions of peers per link class.
MIX_DISTRIBUTION: tuple[tuple[float, float], ...] = (
    (0.09, LINK_MODEM),
    (0.21, LINK_DSL),
    (0.50, LINK_CABLE),
    (0.16, LINK_ETHERNET),
    (0.04, LINK_LAN),
)

# --------------------------------------------------------------------------
# Section 5 ranking parameters
# --------------------------------------------------------------------------

#: Coefficients of the adaptive stopping heuristic (eq. 4):
#: p = floor(A + N / B) + C * floor(k / D).
STOPPING_A: int = 2
STOPPING_N_DIVISOR: int = 300
STOPPING_K_COEFF: int = 2
STOPPING_K_DIVISOR: int = 50

# --------------------------------------------------------------------------
# Section 7.1 Bloom filter configuration
# --------------------------------------------------------------------------

#: The prototype's fixed Bloom filter size: 50 KB (in bits).
PROTOTYPE_BF_BITS: int = 50 * 1024 * 8

#: Terms the prototype filter can summarize at < 5% false positives.
PROTOTYPE_BF_CAPACITY: int = 50_000

#: Default number of hash functions (the paper quotes FP rates for two).
DEFAULT_BF_HASHES: int = 2

# --------------------------------------------------------------------------
# repro.net defaults (real-socket deployment; not from the paper)
# --------------------------------------------------------------------------

#: Default TCP port for `python -m repro.net` nodes (0 = ephemeral).
NET_DEFAULT_PORT: int = 9301

#: Hard upper bound on one wire frame.  The largest legitimate message is
#: a join snapshot (~16 MB for 1000 peers per Section 7.2); anything
#: bigger is treated as a protocol error and the connection is dropped.
NET_MAX_FRAME_BYTES: int = 64 * 1024 * 1024

#: How long a node waits for a TCP connection to be established (seconds).
NET_CONNECT_TIMEOUT_S: float = 5.0

#: How long a node waits for the response to one RPC (seconds).
NET_REQUEST_TIMEOUT_S: float = 30.0

#: Wire-format version byte carried in every codec frame.
NET_CODEC_VERSION: int = 1

#: Retries after the first failed attempt of one RPC (connection-level
#: failures only; framing violations are never retried).
NET_REQUEST_RETRIES: int = 2

#: Backoff before the first retry (seconds); doubles per retry.
NET_RETRY_BACKOFF_S: float = 0.1

#: Upper bound on the exponential retry backoff (seconds).
NET_RETRY_BACKOFF_MAX_S: float = 2.0

#: Fraction of random jitter added on top of each backoff delay, to
#: de-synchronize peers retrying against the same recovering node.
NET_RETRY_JITTER_FRAC: float = 0.5

#: Overall deadline for one RPC including all retries (seconds).
NET_REQUEST_DEADLINE_S: float = 60.0

#: Base backoff before re-rumoring with a member after a failed contact
#: (seconds); doubles per consecutive failure.  Anti-entropy rounds ignore
#: this so that recovered peers are always rediscovered.
NET_CONTACT_BACKOFF_BASE_S: float = 30.0

#: Upper bound on the per-member contact backoff (seconds).
NET_CONTACT_BACKOFF_MAX_S: float = 480.0

# --------------------------------------------------------------------------
# repro.store defaults (durable persistence; not from the paper)
# --------------------------------------------------------------------------

#: WAL records appended between automatic snapshots of the data store.
STORE_SNAPSHOT_EVERY: int = 256

#: Snapshot generations retained on disk (newest first; older pruned).
STORE_SNAPSHOT_KEEP: int = 2

#: Gossip rounds between directory checkpoint writes on a live node.
STORE_CHECKPOINT_EVERY_ROUNDS: int = 10

# --------------------------------------------------------------------------
# repro.serve defaults (query plane; not from the paper)
# --------------------------------------------------------------------------

#: Searches the scheduler runs concurrently (the global in-flight budget).
SERVE_MAX_CONCURRENT: int = 8

#: Searches allowed to wait for a slot before new arrivals are rejected.
SERVE_MAX_QUEUE: int = 64

#: Default per-query deadline: a query still queued after this long is
#: shed instead of run (its answer would arrive too late to matter).
SERVE_DEFAULT_DEADLINE_S: float = 10.0

#: Result-cache capacity (distinct (kind, query, k) entries).
SERVE_CACHE_SIZE: int = 512

#: Concurrent in-flight RPCs allowed per target peer across all queries.
SERVE_PER_PEER_INFLIGHT: int = 4

#: Concurrent in-flight RPCs allowed per search wave (fan-out bound).
SERVE_FANOUT_LIMIT: int = 16

#: How long one peer may sit on a search RPC before the wave gives up on
#: it (shorter than the transport's own retry deadline — a search wave
#: must not stall on one unresponsive peer).
SERVE_PEER_DEADLINE_S: float = 5.0

# --------------------------------------------------------------------------
# Section 6 PFS parameters
# --------------------------------------------------------------------------

#: Fraction of a file's most frequent terms published to the brokerage.
PFS_BROKER_TERM_FRACTION: float = 0.10

#: Discard time for brokered snippets (Section 6: 10 minutes), seconds.
PFS_BROKER_DISCARD_S: float = 600.0

#: A PFS directory older than this is fully re-run on open (seconds).
PFS_DIR_REFRESH_S: float = 600.0


@dataclass
class GossipConfig:
    """Tunable gossip-protocol parameters for one simulation or community.

    Defaults reproduce the paper's configuration (Table 2 and Section 3).
    """

    base_interval_s: float = BASE_GOSSIP_INTERVAL_S
    max_interval_s: float = MAX_GOSSIP_INTERVAL_S
    cpu_gossip_time_s: float = CPU_GOSSIP_TIME_S
    rumor_give_up_count: int = RUMOR_GIVE_UP_COUNT
    anti_entropy_period: int = ANTI_ENTROPY_PERIOD
    partial_ae_recent: int = PARTIAL_AE_RECENT_RUMORS
    gossip_less_threshold: int = GOSSIP_LESS_THRESHOLD
    slowdown_s: float = GOSSIP_SLOWDOWN_S
    #: how many recently-learned rumor ids an anti-entropy target offers as
    #: the cheap first reconciliation level before falling back to the full
    #: directory summary.
    ae_recent_window: int = 50
    t_dead_s: float = T_DEAD_S
    #: exponential backoff applied to rumor contacts with a member after
    #: failed contacts (anti-entropy ignores it; see NetworkPeer).
    contact_backoff_base_s: float = NET_CONTACT_BACKOFF_BASE_S
    contact_backoff_max_s: float = NET_CONTACT_BACKOFF_MAX_S
    use_partial_ae: bool = True
    anti_entropy_only: bool = False
    bandwidth_aware: bool = False
    fast_to_slow_prob: float = BW_AWARE_FAST_TO_SLOW_PROB
    fast_threshold_Bps: float = FAST_LINK_THRESHOLD_BPS
    header_bytes: int = MESSAGE_HEADER_BYTES
    peer_summary_bytes: int = PEER_SUMMARY_BYTES
    bf_summary_bytes: int = BF_SUMMARY_BYTES

    def __post_init__(self) -> None:
        if self.base_interval_s <= 0:
            raise ValueError("base_interval_s must be positive")
        if self.max_interval_s < self.base_interval_s:
            raise ValueError("max_interval_s must be >= base_interval_s")
        if self.anti_entropy_period < 1:
            raise ValueError("anti_entropy_period must be >= 1")
        if not 0.0 <= self.fast_to_slow_prob <= 1.0:
            raise ValueError("fast_to_slow_prob must be a probability")
        if self.contact_backoff_base_s < 0 or (
            self.contact_backoff_max_s < self.contact_backoff_base_s
        ):
            raise ValueError("contact backoff must satisfy 0 <= base <= max")


@dataclass
class RankingConfig:
    """Parameters of the adaptive stopping heuristic (eq. 4)."""

    a: int = STOPPING_A
    n_divisor: int = STOPPING_N_DIVISOR
    k_coeff: int = STOPPING_K_COEFF
    k_divisor: int = STOPPING_K_DIVISOR
    #: contact peers in parallel groups of this size (Section 5.2 mentions
    #: groups of m peers; 1 reproduces the sequential algorithm).
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.n_divisor <= 0 or self.k_divisor <= 0:
            raise ValueError("divisors must be positive")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")

    def stopping_p(self, community_size: int, k: int) -> int:
        """Evaluate eq. 4: the number of consecutive unproductive peers
        tolerated before the search stops."""
        if community_size < 0 or k < 0:
            raise ValueError("community_size and k must be non-negative")
        return int(self.a + community_size // self.n_divisor) + self.k_coeff * (
            k // self.k_divisor
        )


@dataclass
class NetConfig:
    """Tunables of the real network layer (:mod:`repro.net`)."""

    max_frame_bytes: int = NET_MAX_FRAME_BYTES
    connect_timeout_s: float = NET_CONNECT_TIMEOUT_S
    request_timeout_s: float = NET_REQUEST_TIMEOUT_S
    codec_version: int = NET_CODEC_VERSION
    request_retries: int = NET_REQUEST_RETRIES
    retry_backoff_s: float = NET_RETRY_BACKOFF_S
    retry_backoff_max_s: float = NET_RETRY_BACKOFF_MAX_S
    retry_jitter_frac: float = NET_RETRY_JITTER_FRAC
    request_deadline_s: float = NET_REQUEST_DEADLINE_S

    def __post_init__(self) -> None:
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes is too small for any message")
        if self.connect_timeout_s <= 0 or self.request_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if self.retry_backoff_s <= 0 or (
            self.retry_backoff_max_s < self.retry_backoff_s
        ):
            raise ValueError("retry backoff must satisfy 0 < base <= max")
        if not 0.0 <= self.retry_jitter_frac <= 1.0:
            raise ValueError("retry_jitter_frac must be in [0, 1]")
        if self.request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive")


@dataclass
class StoreConfig:
    """Tunables of the persistence subsystem (:mod:`repro.store`)."""

    snapshot_every: int = STORE_SNAPSHOT_EVERY
    snapshot_keep: int = STORE_SNAPSHOT_KEEP
    checkpoint_every_rounds: int = STORE_CHECKPOINT_EVERY_ROUNDS
    #: fsync the WAL on every append.  Turning this off trades crash
    #: durability of the most recent records for publish throughput.
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.snapshot_keep < 1:
            raise ValueError("snapshot_keep must be >= 1")
        if self.checkpoint_every_rounds < 1:
            raise ValueError("checkpoint_every_rounds must be >= 1")


@dataclass
class ServeConfig:
    """Tunables of the query plane (:mod:`repro.serve`)."""

    max_concurrent: int = SERVE_MAX_CONCURRENT
    max_queue: int = SERVE_MAX_QUEUE
    default_deadline_s: float = SERVE_DEFAULT_DEADLINE_S
    cache_size: int = SERVE_CACHE_SIZE
    per_peer_inflight: int = SERVE_PER_PEER_INFLIGHT
    fanout_limit: int = SERVE_FANOUT_LIMIT
    peer_deadline_s: float = SERVE_PEER_DEADLINE_S

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.per_peer_inflight < 1:
            raise ValueError("per_peer_inflight must be >= 1")
        if self.fanout_limit < 1:
            raise ValueError("fanout_limit must be >= 1")
        if self.peer_deadline_s <= 0:
            raise ValueError("peer_deadline_s must be positive")


@dataclass
class PartialViewConfig:
    """Tunables of the partial-view membership mode (:mod:`repro.gossip.partialview`).

    Under partial views a node keeps full Bloom filters only for the
    members of its own directory shard (consistent-hash over pids) plus
    a bounded random sample of out-of-shard peers; everything else is
    folded into one coarse OR-summary filter per shard.
    """

    #: directory shards; each node's "home" shard is shard_of(peer_id).
    num_shards: int = 8
    #: out-of-shard peers whose full filters a node keeps anyway, so
    #: ranked search has warm candidates beyond its home shard.
    sample_size: int = 32
    #: membership records traded per ViewExchange message.
    exchange_records: int = 16
    #: virtual ring positions per shard — evens out arc sizes so churn
    #: moves ~N/num_shards assignments, not an arbitrary arc's worth.
    points_per_shard: int = 64

    def __post_init__(self) -> None:
        if self.num_shards < 2:
            raise ValueError("num_shards must be >= 2")
        if self.sample_size < 0:
            raise ValueError("sample_size must be >= 0")
        if self.exchange_records < 1:
            raise ValueError("exchange_records must be >= 1")
        if self.points_per_shard < 1:
            raise ValueError("points_per_shard must be >= 1")


@dataclass
class ContentConfig:
    """Tunables of the content plane (:mod:`repro.content`).

    ``replicas`` is k in the k-way replication scheme: every published
    document's chunks are pushed to its first k consistent-hash ring
    successors (origin excluded).  Zero keeps the plane passive — local
    chunks are stored and served, but nothing is pushed, which is the
    default so single-node and loopback deployments pay nothing.
    """

    #: ring successors (excluding the origin) that must hold a copy.
    replicas: int = 0
    #: bytes per chunk; the last chunk of a document may be shorter.
    chunk_size: int = 65536
    #: a responder caps each ChunkReply at this many bytes — replies for
    #: big chunks arrive as resumable slices (offset + prefix).
    max_reply_bytes: int = 65536
    #: virtual ring positions per member, so replica arcs stay even and
    #: churn only remaps the failed member's share.
    points_per_member: int = 32
    #: documents (re)pushed per maintenance round — bounds the per-round
    #: replication burst after a churn event.
    push_docs_per_round: int = 8
    #: replica addresses advertised in a ManifestReply.
    max_advertised_holders: int = 8

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.max_reply_bytes < 1:
            raise ValueError("max_reply_bytes must be >= 1")
        if self.points_per_member < 1:
            raise ValueError("points_per_member must be >= 1")
        if self.push_docs_per_round < 1:
            raise ValueError("push_docs_per_round must be >= 1")
        if self.max_advertised_holders < 1:
            raise ValueError("max_advertised_holders must be >= 1")


@dataclass
class AnalyticsConfig:
    """Tunables of the analytics plane (:mod:`repro.analytics`).

    Each node maintains a bounded space-saving summary of its own term
    frequencies plus per-document access counters, and gossips the
    per-origin entries via push-pull sketch exchanges piggybacked on the
    gossip round.  Merging is a per-origin latest-wins join, so every
    node converges to the same community-wide top-k estimate without
    central collection.
    """

    #: space-saving counter capacity — the per-origin term summary never
    #: tracks more than this many terms (error bounded by N/capacity).
    sketch_capacity: int = 128
    #: per-document access counters carried per origin entry.
    top_docs: int = 32
    #: sketch entries pushed per exchange message — bounds the per-round
    #: analytics bytes regardless of community size.
    exchange_entries: int = 64
    #: local summary rebuild cadence, in gossip rounds.
    refresh_every_rounds: int = 1

    def __post_init__(self) -> None:
        if self.sketch_capacity < 1:
            raise ValueError("sketch_capacity must be >= 1")
        if self.top_docs < 0:
            raise ValueError("top_docs must be >= 0")
        if self.exchange_entries < 1:
            raise ValueError("exchange_entries must be >= 1")
        if self.refresh_every_rounds < 1:
            raise ValueError("refresh_every_rounds must be >= 1")


@dataclass
class BloomConfig:
    """Bloom filter sizing configuration."""

    num_bits: int = PROTOTYPE_BF_BITS
    num_hashes: int = DEFAULT_BF_HASHES

    def __post_init__(self) -> None:
        if self.num_bits < 8:
            raise ValueError("num_bits must be at least 8")
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")


@dataclass
class WireSizes:
    """Wire-size model used by the gossip simulator (Table 2)."""

    header: int = MESSAGE_HEADER_BYTES
    bf_1000: int = BF_1000_KEYS_BYTES
    bf_20000: int = BF_20000_KEYS_BYTES
    bf_summary: int = BF_SUMMARY_BYTES
    peer_summary: int = PEER_SUMMARY_BYTES

    def bloom_filter_bytes(self, num_keys: int) -> int:
        """Interpolated wire size of a compressed Bloom filter for
        ``num_keys`` keys, anchored on the two sizes given in Table 2."""
        if num_keys < 0:
            raise ValueError("num_keys must be non-negative")
        if num_keys == 0:
            return self.header
        # Linear model through (1000, 3000) and (20000, 16000).
        slope = (self.bf_20000 - self.bf_1000) / (20000 - 1000)
        size = self.bf_1000 + slope * (num_keys - 1000)
        return max(self.header, int(round(size)))
