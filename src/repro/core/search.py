"""Local-search primitives used when a peer is contacted with a query.

Two entry points, one per search mode of Section 5:

* :func:`exhaustive_local_match` — all local documents containing every
  query term (conjunction of keys).
* :func:`score_local_documents` — the peer's local top-k under eq. 2 with
  the caller-supplied IPF weights substituted for IDF (the ranked-search
  path: a contacted peer ranks its own documents and returns candidates).
"""

from __future__ import annotations

from typing import Sequence

from repro.ranking.tfidf import RankedDoc
from repro.ranking.vsm import document_term_weight, similarity_from_parts
from repro.text.invindex import InvertedIndex

__all__ = ["exhaustive_local_match", "score_local_documents"]


def exhaustive_local_match(index: InvertedIndex, terms: Sequence[str]) -> list[str]:
    """Sorted ids of local documents containing *every* term."""
    return sorted(index.conjunctive_match(terms))


def score_local_documents(
    index: InvertedIndex,
    terms: Sequence[str],
    ipf: dict[str, float],
    k: int,
) -> list[RankedDoc]:
    """The peer's local top-``k`` documents under TF×IPF (eq. 2).

    Documents matching at least one query term are scored
    ``sum_t w_{D,t} * IPF_t / sqrt(|D|)``; ties break on doc id.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    sums: dict[str, float] = {}
    for term in dict.fromkeys(terms):
        weight = ipf.get(term, 0.0)
        if weight <= 0.0:
            continue
        for doc_id, tf in index.postings_map(term).items():
            sums[doc_id] = sums.get(doc_id, 0.0) + document_term_weight(tf) * weight
    scored = [
        (doc_id, similarity_from_parts(s, index.document_length(doc_id)))
        for doc_id, s in sums.items()
    ]
    scored.sort(key=lambda ds: (-ds[1], ds[0]))
    return [RankedDoc(d, s) for d, s in scored[:k]]
