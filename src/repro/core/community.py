"""An in-process PlanetP community.

Hosts many :class:`PlanetPPeer` instances in one process and implements
both search modes of Section 5 against them.  Directory replication is
performed eagerly (:meth:`replicate_directories`): after a batch of
publishes, each peer's Bloom filter copy is installed at every other peer
— the converged-directory state the paper's search experiments assume
(the gossip subpackage is the authority on *how long* convergence takes).

The community implements the :class:`~repro.ranking.tfipf.PeerBackend`
protocol, so :class:`~repro.ranking.tfipf.TFIPFSearch` runs against it
directly; it also hosts the optional brokerage and persistent queries.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.matcher import FilterMatrix
from repro.brokerage.service import BrokerageService
from repro.constants import BloomConfig, RankingConfig
from repro.core.peer import PlanetPPeer
from repro.core.persistent import PersistentQuery, PersistentQueryManager
from repro.core.search import exhaustive_local_match, score_local_documents
from repro.ranking.stopping import AdaptiveStopping, StoppingPolicy
from repro.ranking.tfidf import RankedDoc
from repro.ranking.tfipf import DistributedSearchResult, TFIPFSearch
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["InProcessCommunity"]


class InProcessCommunity:
    """A set of peers sharing one process (the paper's "virtual peers")."""

    def __init__(
        self,
        num_peers: int,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
        ranking_config: RankingConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if num_peers <= 0:
            raise ValueError("num_peers must be positive")
        self.analyzer = analyzer or Analyzer()
        self.bloom_config = bloom_config or BloomConfig()
        self.ranking_config = ranking_config or RankingConfig()
        self.peers = [
            PlanetPPeer(pid, analyzer=self.analyzer, bloom_config=self.bloom_config)
            for pid in range(num_peers)
        ]
        self.brokerage = BrokerageService(clock)
        self.persistent = PersistentQueryManager()
        self._doc_owner: dict[str, int] = {}
        self._dirty = False
        #: stacked online-peer filters for batched ranking (eq. 3); synced
        #: lazily per query, re-copying only rows whose filter changed.
        self._matrix = FilterMatrix()

    # -- publishing -----------------------------------------------------------

    def publish(self, peer_id: int, item: Document | XMLSnippet) -> Document:
        """Publish ``item`` at ``peer_id`` and fire persistent queries."""
        doc = self._peer(peer_id).publish(item)
        self._doc_owner[doc.doc_id] = peer_id
        self._dirty = True
        term_set = set(self.analyzer.analyze(doc.text))
        self.persistent.on_new_document(doc, term_set)
        return doc

    def publish_batch(
        self, peer_id: int, items: Sequence[Document | XMLSnippet]
    ) -> None:
        """Publish many documents at one peer (persistent queries fire per
        document; replication is deferred until the next search)."""
        for item in items:
            self.publish(peer_id, item)

    def remove(self, doc_id: str) -> Document:
        """Withdraw a document from wherever it was published."""
        owner = self._doc_owner.pop(doc_id, None)
        if owner is None:
            raise KeyError(doc_id)
        doc = self.peers[owner].remove(doc_id)
        self._dirty = True
        return doc

    def owner_of(self, doc_id: str) -> int:
        """Which peer published ``doc_id``."""
        return self._doc_owner[doc_id]

    def fetch(self, doc_id: str) -> Document:
        """Retrieve a document from its owner's data store."""
        return self.peers[self.owner_of(doc_id)].store.get(doc_id)

    # -- directory replication --------------------------------------------------

    def replicate_directories(self) -> None:
        """Install every peer's current Bloom filter at every other peer
        (instant convergence; the gossip simulator models the latency)."""
        snapshots = [
            (p.peer_id, p.address, p.store.bloom_filter, p.store.filter_version)
            for p in self.peers
        ]
        for peer in self.peers:
            for pid, address, bf, version in snapshots:
                if pid == peer.peer_id:
                    continue
                peer.update_directory(pid, address, bf, version, online=True)
        self._dirty = False

    def _ensure_replicated(self) -> None:
        if self._dirty:
            self.replicate_directories()

    # -- PeerBackend protocol (ranked search) --------------------------------------

    def online_peer_ids(self) -> list[int]:
        """Peers currently online (all, unless set otherwise)."""
        return [p.peer_id for p in self.peers if p.online]

    def peer_filter(self, peer_id: int) -> BloomFilter:
        """The peer's Bloom filter (as replicated in the directory)."""
        return self._peer(peer_id).store.bloom_filter

    def filter_hit_matrix(self, terms: Sequence[str]) -> tuple[list[int], np.ndarray]:
        """Batched per-peer, per-term filter membership for the online
        community (the :func:`~repro.ranking.tfipf.compute_ipf` fast path:
        hash the query once, test all peers in one vectorized gather)."""
        self._matrix.sync(
            (p.peer_id, p.store.bloom_filter) for p in self.peers if p.online
        )
        return self._matrix.hit_matrix(terms)

    def query_peer(
        self, peer_id: int, terms: Sequence[str], ipf: dict[str, float], k: int
    ) -> list[RankedDoc]:
        """Contact ``peer_id``: its local top-``k`` under TF×IPF (eq. 2)."""
        peer = self._peer(peer_id)
        if not peer.online:
            return []
        return score_local_documents(peer.store.index, terms, ipf, k)

    # -- searches -----------------------------------------------------------------

    def analyze_query(self, query: str) -> list[str]:
        """Run the community's analyzer over a query string."""
        return self.analyzer.analyze_query(query)

    def exhaustive_search(self, query: str, from_peer: int = 0) -> list[Document]:
        """Section 5.1: conjunctive search of the entire data store.

        Uses ``from_peer``'s directory to find candidate peers whose
        filters may match every key, contacts them all, merges the
        matching documents, and consults the brokers.
        """
        self._ensure_replicated()
        terms = self.analyze_query(query)
        if not terms:
            return []
        searcher = self._peer(from_peer)
        results: dict[str, Document] = {}
        for pid in searcher.candidate_peers(terms):
            peer = self.peers[pid]
            if not peer.online:
                continue
            for doc_id in exhaustive_local_match(peer.store.index, terms):
                results[doc_id] = peer.store.get(doc_id)
        for snippet in self.brokerage.lookup_all(terms):
            if snippet.snippet_id not in results:
                results[snippet.snippet_id] = Document(
                    snippet.snippet_id, snippet.xml, dict(snippet.attributes)
                )
        return [results[doc_id] for doc_id in sorted(results)]

    def ranked_search(
        self,
        query: str,
        k: int = 20,
        stopping: StoppingPolicy | None = None,
        group_size: int | None = None,
    ) -> DistributedSearchResult:
        """Section 5.2: TF×IPF ranked search with adaptive stopping."""
        self._ensure_replicated()
        terms = self.analyze_query(query)
        if not terms:
            raise ValueError("query analyzed to zero terms")
        search = TFIPFSearch(
            self,
            stopping=stopping or AdaptiveStopping(self.ranking_config),
            group_size=group_size or self.ranking_config.group_size,
        )
        return search.search(terms, k)

    # -- persistent queries ------------------------------------------------------------

    def post_persistent_query(
        self, query: str, callback: Callable[[Document], None]
    ) -> PersistentQuery:
        """Register a persistent exhaustive query (Section 5.1).

        The callback fires for every *future* matching publication; run an
        exhaustive search first for current matches, as PFS does.
        """
        terms = self.analyze_query(query)
        if not terms:
            raise ValueError("query analyzed to zero terms")
        return self.persistent.post(terms, callback)

    # -- membership -----------------------------------------------------------------------

    def set_online(self, peer_id: int, online: bool) -> None:
        """Toggle a peer's availability (offline peers aren't contacted,
        but their directory entries — and filters — remain, so searches
        can still discover that matching documents exist; Section 2)."""
        self._peer(peer_id).online = online

    def _peer(self, peer_id: int) -> PlanetPPeer:
        if not 0 <= peer_id < len(self.peers):
            raise KeyError(f"no peer {peer_id} in this community")
        return self.peers[peer_id]

    def __len__(self) -> int:
        return len(self.peers)

    def num_documents(self) -> int:
        """Total documents published across all peers."""
        return len(self._doc_owner)

    def __repr__(self) -> str:
        return f"InProcessCommunity(peers={len(self.peers)}, docs={self.num_documents()})"
