"""Merged-filter directories: the Section 2 memory/accuracy trade-off.

"Peers can independently trade-off accuracy for storage.  For example, a
peer a may choose to combine the filters of several peers to save space;
the trade-off is that a must now contact this set of peers whenever a
query hits on this combined filter.  This ability ... is particularly
useful for peers running on memory-constrained devices."

:class:`MergedDirectory` groups the directory's filters into buckets of
``group_size`` and stores one union filter per bucket.  Candidate lookup
returns whole buckets: never a false negative, but every hit costs
contacting the full group.  :func:`merge_ratio` quantifies the saving.
"""

from __future__ import annotations

from typing import Sequence

from repro.bloom.filter import BloomFilter

__all__ = ["MergedDirectory"]


class MergedDirectory:
    """A compacted view over a set of per-peer Bloom filters."""

    def __init__(
        self, peer_filters: dict[int, BloomFilter], group_size: int
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if not peer_filters:
            raise ValueError("need at least one peer filter")
        self.group_size = group_size
        self._groups: list[tuple[tuple[int, ...], BloomFilter]] = []
        ordered = sorted(peer_filters)
        for start in range(0, len(ordered), group_size):
            members = tuple(ordered[start : start + group_size])
            merged = peer_filters[members[0]].copy()
            for pid in members[1:]:
                merged.union_inplace(peer_filters[pid])
            self._groups.append((members, merged))

    @property
    def num_groups(self) -> int:
        """Number of stored (merged) filters."""
        return len(self._groups)

    def candidate_peers(self, terms: Sequence[str]) -> list[int]:
        """Peers that may hold *all* ``terms`` — whole groups at a time.

        A superset of the unmerged directory's candidates (the union
        filter can only add positives), so no document is ever missed;
        the cost is contacting every member of a hit group.
        """
        term_list = list(terms)
        out: list[int] = []
        for members, merged in self._groups:
            if merged.contains_all(term_list):
                out.extend(members)
        return out

    def memory_bits(self) -> int:
        """Total filter bits stored under this merging."""
        return sum(f.num_bits for _, f in self._groups)

    @staticmethod
    def merge_ratio(num_peers: int, group_size: int) -> float:
        """Storage fraction kept relative to one filter per peer."""
        if num_peers < 1 or group_size < 1:
            raise ValueError("num_peers and group_size must be >= 1")
        groups = (num_peers + group_size - 1) // group_size
        return groups / num_peers

    def __repr__(self) -> str:
        return (
            f"MergedDirectory(groups={self.num_groups}, "
            f"group_size={self.group_size})"
        )
