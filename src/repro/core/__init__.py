"""PlanetP core: the public library tying everything together.

A :class:`PlanetPPeer` owns a local data store (published XML documents),
the local inverted index, and its Bloom filter summary.  An
:class:`InProcessCommunity` hosts many peers in one process — the form the
paper's search experiments use ("a simulator that first distributes
documents across a set of virtual peers") — and provides the two search
modes of Section 5: exhaustive conjunctive search and TF×IPF ranked
search, plus persistent queries and the optional brokerage.
"""

from repro.core.datastore import LocalDataStore
from repro.core.peer import PlanetPPeer, PeerEntry
from repro.core.community import InProcessCommunity
from repro.core.search import score_local_documents, exhaustive_local_match
from repro.core.persistent import PersistentQuery, PersistentQueryManager
from repro.core.merged import MergedDirectory

__all__ = [
    "MergedDirectory",
    "LocalDataStore",
    "PlanetPPeer",
    "PeerEntry",
    "InProcessCommunity",
    "score_local_documents",
    "exhaustive_local_match",
    "PersistentQuery",
    "PersistentQueryManager",
]
