"""Persistent queries (paper Section 5.1).

A persistent query registers interest in new information: whenever a new
matching snippet appears — a new document is published (new Bloom filter
content) or a snippet lands on a broker — the poster's callback object is
invoked.  PFS uses these upcalls to keep query directories current, and
the paper notes they subsume condition variables / publish-subscribe /
tuple-space patterns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.text.document import Document

__all__ = ["PersistentQuery", "PersistentQueryManager"]


@dataclass
class PersistentQuery:
    """One registered persistent (exhaustive, conjunctive) query."""

    query_id: int
    terms: tuple[str, ...]
    callback: Callable[[Document], None]
    #: doc ids already delivered, so re-publications don't re-fire.
    delivered: set[str] = field(default_factory=set)

    def matches(self, term_set: set[str]) -> bool:
        """Conjunctive match against a document's term set."""
        return all(t in term_set for t in self.terms)


class PersistentQueryManager:
    """Registry + dispatch of persistent queries for a community."""

    def __init__(self) -> None:
        self._queries: dict[int, PersistentQuery] = {}
        self._ids = itertools.count()

    def post(
        self, terms: Sequence[str], callback: Callable[[Document], None]
    ) -> PersistentQuery:
        """Register a persistent query; returns its handle."""
        terms_t = tuple(terms)
        if not terms_t:
            raise ValueError("a persistent query needs at least one term")
        query = PersistentQuery(next(self._ids), terms_t, callback)
        self._queries[query.query_id] = query
        return query

    def cancel(self, query_id: int) -> None:
        """Deregister a persistent query."""
        try:
            del self._queries[query_id]
        except KeyError:
            raise KeyError(query_id) from None

    def on_new_document(self, doc: Document, term_set: set[str]) -> int:
        """Dispatch a newly published document to matching queries.

        ``term_set`` is the document's analyzed terms.  Returns the number
        of upcalls made.
        """
        fired = 0
        # Iterate a copy and re-check registration before each upcall: a
        # callback may post or cancel queries (including the one firing),
        # which would otherwise mutate the dict mid-iteration or deliver
        # to a query cancelled moments earlier.
        for query in list(self._queries.values()):
            if query.query_id not in self._queries:
                continue
            if doc.doc_id not in query.delivered and query.matches(term_set):
                query.delivered.add(doc.doc_id)
                query.callback(doc)
                fired += 1
        return fired

    def __len__(self) -> int:
        return len(self._queries)
