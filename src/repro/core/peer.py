"""A PlanetP peer: local data store plus its replicated directory.

The directory (Figure 1) maps every known member to its address, on-line
status, and Bloom filter copy.  In the in-process community the directory
entries are filled by the community's replication step (instant by
default, mirroring the paper's search simulator where directories have
converged); the gossip subpackage models how that replication behaves
over time and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.bloom.filter import BloomFilter
from repro.bloom.matcher import FilterMatrix
from repro.constants import BloomConfig
from repro.core.datastore import LocalDataStore
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["PeerEntry", "PlanetPPeer"]


@dataclass
class PeerEntry:
    """One row of the replicated global directory."""

    peer_id: int
    address: str
    online: bool = True
    bloom_filter: BloomFilter | None = None
    filter_version: int = -1
    metadata: Mapping[str, Any] = field(default_factory=dict)


class PlanetPPeer:
    """One community member (library form)."""

    def __init__(
        self,
        peer_id: int,
        address: str | None = None,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
    ) -> None:
        if peer_id < 0:
            raise ValueError("peer_id must be non-negative")
        self.peer_id = peer_id
        self.address = address or f"peer://{peer_id}"
        self.store = LocalDataStore(analyzer=analyzer, bloom_config=bloom_config)
        #: replicated directory: peer_id -> entry (includes ourselves).
        self.directory: dict[int, PeerEntry] = {
            peer_id: PeerEntry(peer_id, self.address, True, None, -1)
        }
        self.online = True
        #: stacked directory filters for batched query matching; lazily
        #: reconciled against the directory before each match, so in-place
        #: filter mutations (version bumps) and replacements are picked up.
        self._matrix = FilterMatrix()

    # -- publishing -----------------------------------------------------------

    def publish(self, item: Document | XMLSnippet) -> Document:
        """Publish a document to the community via this peer."""
        return self.store.publish(item)

    def remove(self, doc_id: str) -> Document:
        """Withdraw a published document."""
        return self.store.remove(doc_id)

    # -- directory maintenance ---------------------------------------------------

    def update_directory(
        self,
        peer_id: int,
        address: str,
        bloom_filter: BloomFilter,
        filter_version: int,
        online: bool = True,
    ) -> bool:
        """Install/refresh another member's entry.

        Stale versions are ignored (gossip can deliver out of order).
        Returns whether the entry changed.
        """
        entry = self.directory.get(peer_id)
        if entry is None:
            self.directory[peer_id] = PeerEntry(
                peer_id, address, online, bloom_filter, filter_version
            )
            return True
        changed = False
        if address and entry.address != address:
            # Gossip can deliver a fresher address (rejoin on a new port).
            entry.address = address
            changed = True
        if filter_version > entry.filter_version:
            entry.bloom_filter = bloom_filter
            entry.filter_version = filter_version
            changed = True
        if entry.online != online:
            entry.online = online
            changed = True
        return changed

    def mark_peer_offline(self, peer_id: int) -> None:
        """Record a failed contact (not gossiped; Section 3)."""
        entry = self.directory.get(peer_id)
        if entry is not None:
            entry.online = False

    def drop_peer(self, peer_id: int) -> None:
        """Forget a member entirely (T_Dead expiry)."""
        if peer_id == self.peer_id:
            raise ValueError("a peer cannot drop itself")
        self.directory.pop(peer_id, None)

    def known_online_peers(self) -> list[int]:
        """Directory rows currently believed online (excluding self)."""
        return sorted(
            pid
            for pid, entry in self.directory.items()
            if entry.online and pid != self.peer_id
        )

    def directory_matrix(self) -> FilterMatrix:
        """The batched view of every replicated filter (self included,
        backed by the live store filter), reconciled with the directory."""
        self._matrix.sync(self._directory_filters())
        return self._matrix

    def _directory_filters(self):
        for pid, entry in self.directory.items():
            if pid == self.peer_id:
                yield pid, self.store.bloom_filter
            elif entry.bloom_filter is not None:
                yield pid, entry.bloom_filter

    def candidate_peers(self, terms: list[str]) -> list[int]:
        """Peers whose replicated filter may match *all* ``terms``
        (the exhaustive-search candidate set, Section 5.1).

        The query is hashed once and tested against every directory filter
        in a single vectorized pass, instead of per-peer probing.
        """
        return sorted(self.directory_matrix().match_all_terms(terms))

    def __repr__(self) -> str:
        return (
            f"PlanetPPeer(id={self.peer_id}, docs={len(self.store)}, "
            f"directory={len(self.directory)})"
        )
