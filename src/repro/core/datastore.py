"""The per-peer local data store (paper Section 2).

Stores published XML documents, maintains the local inverted index over
their analyzed text, and keeps the peer's Bloom filter summary in sync.
The filter only grows incrementally on publish; removing a document marks
the filter stale and :meth:`regenerate_filter` rebuilds it from the index
(the prototype's behaviour — filters never shrink in place).
"""

from __future__ import annotations

from typing import Iterator

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.invindex import InvertedIndex
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["LocalDataStore"]


class LocalDataStore:
    """Documents + inverted index + Bloom filter for one peer."""

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
    ) -> None:
        self.analyzer = analyzer or Analyzer()
        self._bloom_config = bloom_config or BloomConfig()
        self.index = InvertedIndex()
        self._documents: dict[str, Document] = {}
        self._filter = BloomFilter(
            self._bloom_config.num_bits, self._bloom_config.num_hashes
        )
        #: bumped every time the filter's contents change; the directory
        #: uses it to decide whether a gossiped filter is news.
        self.filter_version = 0
        self._filter_stale = False

    # -- publishing ---------------------------------------------------------

    def publish(self, item: Document | XMLSnippet) -> Document:
        """Publish a document or XML snippet: store, index, summarize.

        Returns the stored :class:`Document`.  Publishing an id that
        already exists raises; remove it first.
        """
        doc = item.to_document() if isinstance(item, XMLSnippet) else item
        if doc.doc_id in self._documents:
            raise ValueError(f"document {doc.doc_id!r} is already published")
        term_freqs = self.analyzer.term_frequencies(doc.text)
        self.index.add_document(doc.doc_id, term_freqs)
        self._documents[doc.doc_id] = doc
        new_terms = [t for t in term_freqs if t not in self._filter]
        if new_terms:
            self._filter.add_many(new_terms)
            self.filter_version += 1
        return doc

    def remove(self, doc_id: str) -> Document:
        """Remove a published document; the Bloom filter becomes stale."""
        try:
            doc = self._documents.pop(doc_id)
        except KeyError:
            raise KeyError(doc_id) from None
        self.index.remove_document(doc_id)
        self._filter_stale = True
        return doc

    def regenerate_filter(self) -> BloomFilter:
        """Rebuild the Bloom filter from the live index.

        Needed after removals; bumps the version if contents changed.
        """
        fresh = BloomFilter(self._bloom_config.num_bits, self._bloom_config.num_hashes)
        fresh.add_many(list(self.index.terms()))
        if fresh != self._filter:
            self._filter = fresh
            self.filter_version += 1
        self._filter_stale = False
        return self._filter

    # -- access -----------------------------------------------------------------

    @property
    def bloom_filter(self) -> BloomFilter:
        """The current summary filter (regenerated first if stale)."""
        if self._filter_stale:
            self.regenerate_filter()
        return self._filter

    def get(self, doc_id: str) -> Document:
        """Fetch a stored document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(doc_id) from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def document_ids(self) -> Iterator[str]:
        """Iterate stored document ids."""
        return iter(self._documents)

    def num_terms(self) -> int:
        """Distinct indexed terms."""
        return self.index.vocabulary_size()

    def __repr__(self) -> str:
        return (
            f"LocalDataStore(docs={len(self)}, terms={self.num_terms()}, "
            f"filter_v={self.filter_version})"
        )
