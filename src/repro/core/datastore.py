"""The per-peer local data store (paper Section 2).

Stores published XML documents, maintains the local inverted index over
their analyzed text, and keeps the peer's Bloom filter summary in sync.
The filter only grows incrementally on publish; removing a document marks
the filter stale and :meth:`regenerate_filter` rebuilds it from the index
(the prototype's behaviour — filters never shrink in place).

Every mutation is announced through the optional :attr:`on_operation`
hook *after* it has been applied, carrying the already-analyzed term
frequencies — :mod:`repro.store` subscribes its write-ahead log here, so
a persisted operation can later be replayed through
:meth:`apply_publish` / :meth:`apply_remove` without re-running the
Analyzer.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.invindex import InvertedIndex
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["LocalDataStore", "StoreOperationHook"]

#: Signature of the mutation hook: ``(op, document, term_freqs)`` where
#: ``op`` is ``"publish"`` or ``"remove"`` and ``term_freqs`` is the
#: analyzed term -> frequency map for publishes (None for removes).
StoreOperationHook = Callable[[str, Document, "Mapping[str, int] | None"], None]


class LocalDataStore:
    """Documents + inverted index + Bloom filter for one peer."""

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
    ) -> None:
        self.analyzer = analyzer or Analyzer()
        self._bloom_config = bloom_config or BloomConfig()
        self.index = InvertedIndex()
        self._documents: dict[str, Document] = {}
        self._filter = BloomFilter(
            self._bloom_config.num_bits, self._bloom_config.num_hashes
        )
        #: bumped every time the filter's contents change; the directory
        #: uses it to decide whether a gossiped filter is news.
        self.filter_version = 0
        self._filter_stale = False
        #: called after each applied mutation (a durability layer's tap);
        #: :meth:`apply_publish` / :meth:`apply_remove` bypass it so
        #: replaying a log never re-logs.
        self.on_operation: StoreOperationHook | None = None

    # -- publishing ---------------------------------------------------------

    def publish(self, item: Document | XMLSnippet) -> Document:
        """Publish a document or XML snippet: store, index, summarize.

        Returns the stored :class:`Document`.  Publishing an id that
        already exists raises; remove it first.  The operation is only
        acknowledged (returns) after :attr:`on_operation` has run, so a
        subscribed WAL makes it durable before the caller proceeds.
        """
        doc = item.to_document() if isinstance(item, XMLSnippet) else item
        if doc.doc_id in self._documents:
            raise ValueError(f"document {doc.doc_id!r} is already published")
        term_freqs = self.analyzer.term_frequencies(doc.text)
        self.apply_publish(doc, term_freqs)
        if self.on_operation is not None:
            self.on_operation("publish", doc, term_freqs)
        return doc

    def apply_publish(
        self,
        doc: Document,
        term_freqs: Mapping[str, int],
        *,
        update_filter: bool = True,
    ) -> Document:
        """Install an already-analyzed publish (WAL/snapshot replay path).

        Indexes ``doc`` under the given term frequencies and grows the
        Bloom filter, without invoking the Analyzer and without firing
        :attr:`on_operation` — recovery must never re-log what it replays.

        ``update_filter=False`` defers the Bloom insert; the caller must
        later cover this document's terms via :meth:`bulk_add_terms` (a
        replayer batching many records hashes each distinct term once
        instead of once per occurrence).
        """
        self.index.add_document(doc.doc_id, term_freqs)
        self._documents[doc.doc_id] = doc
        if update_filter and self._filter.add_missing(list(term_freqs)):
            self.filter_version += 1
        return doc

    def bulk_add_terms(self, terms: Iterable[str]) -> None:
        """Fold many terms into the Bloom filter in one hashing pass
        (the deferred half of ``apply_publish(update_filter=False)``)."""
        if self._filter.add_missing(list(terms)):
            self.filter_version += 1

    def remove(self, doc_id: str) -> Document:
        """Remove a published document; the Bloom filter becomes stale."""
        if doc_id not in self._documents:
            raise KeyError(doc_id)
        doc = self.apply_remove(doc_id)
        if self.on_operation is not None:
            self.on_operation("remove", doc, None)
        return doc

    def apply_remove(self, doc_id: str) -> Document:
        """Apply a remove without firing :attr:`on_operation` (replay path)."""
        try:
            doc = self._documents.pop(doc_id)
        except KeyError:
            raise KeyError(doc_id) from None
        self.index.remove_document(doc_id)
        self._filter_stale = True
        return doc

    def restore(
        self,
        entries: Iterable[tuple[Document, Mapping[str, int]]],
        bloom_filter: BloomFilter | None,
        filter_version: int,
    ) -> None:
        """Install recovered state wholesale (snapshot restore path).

        ``entries`` pairs each document with its persisted term
        frequencies, so neither the Analyzer nor term re-hashing runs for
        documents covered by a snapshot: the index is loaded directly and
        ``bloom_filter`` (the snapshot's decoded filter) is adopted as-is
        when it matches this store's configuration.  A ``None`` or
        mismatched filter (the Bloom sizing changed between runs) is
        rebuilt from the restored index instead.  Only valid on an empty
        store.
        """
        if self._documents:
            raise ValueError("restore requires an empty data store")
        for doc, term_freqs in entries:
            self.index.add_document(doc.doc_id, term_freqs)
            self._documents[doc.doc_id] = doc
        if (
            bloom_filter is not None
            and bloom_filter.num_bits == self._bloom_config.num_bits
            and bloom_filter.num_hashes == self._bloom_config.num_hashes
        ):
            self._filter = bloom_filter
        else:
            self._filter = BloomFilter(
                self._bloom_config.num_bits, self._bloom_config.num_hashes
            )
            self._filter.add_many(list(self.index.terms()))
        self._filter_stale = False
        self.filter_version = filter_version

    def regenerate_filter(self) -> BloomFilter:
        """Rebuild the Bloom filter from the live index.

        Needed after removals; bumps the version if contents changed.
        """
        fresh = BloomFilter(self._bloom_config.num_bits, self._bloom_config.num_hashes)
        fresh.add_many(list(self.index.terms()))
        if fresh != self._filter:
            self._filter = fresh
            self.filter_version += 1
        self._filter_stale = False
        return self._filter

    # -- access -----------------------------------------------------------------

    @property
    def bloom_config(self) -> BloomConfig:
        """The Bloom sizing this store was built with."""
        return self._bloom_config

    @property
    def bloom_filter(self) -> BloomFilter:
        """The current summary filter (regenerated first if stale)."""
        if self._filter_stale:
            self.regenerate_filter()
        return self._filter

    def get(self, doc_id: str) -> Document:
        """Fetch a stored document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(doc_id) from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def document_ids(self) -> Iterator[str]:
        """Iterate stored document ids."""
        return iter(self._documents)

    def num_terms(self) -> int:
        """Distinct indexed terms."""
        return self.index.vocabulary_size()

    def __repr__(self) -> str:
        return (
            f"LocalDataStore(docs={len(self)}, terms={self.num_terms()}, "
            f"filter_v={self.filter_version})"
        )
