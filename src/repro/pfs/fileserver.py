"""PFS's File Server component (paper Section 6).

"A very simple web server that provides two functions: (a) return a URL
when given a local pathname, (b) return the content of the appropriate
file in response to a GET operation."  Modeled as an in-memory path store
per peer.
"""

from __future__ import annotations

__all__ = ["FileServer"]


class FileServer:
    """Maps local pathnames to URLs and serves file content."""

    def __init__(self, peer_id: int, host: str | None = None) -> None:
        self.peer_id = peer_id
        self.host = host or f"pfs-{peer_id}.local"
        self._files: dict[str, str] = {}

    def put_file(self, path: str, content: str) -> None:
        """Create/overwrite a local file."""
        if not path.startswith("/"):
            raise ValueError("paths must be absolute")
        self._files[path] = content

    def delete_file(self, path: str) -> None:
        """Remove a local file."""
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def url_for(self, path: str) -> str:
        """Function (a): the URL under which ``path`` is served."""
        if path not in self._files:
            raise FileNotFoundError(path)
        return f"http://{self.host}{path}"

    def get(self, url: str) -> str:
        """Function (b): serve a GET for one of our URLs."""
        prefix = f"http://{self.host}"
        if not url.startswith(prefix):
            raise ValueError(f"URL {url!r} is not served by this peer")
        path = url[len(prefix) :]
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def read(self, path: str) -> str:
        """Read a local file by path."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)
