"""The personal semantic namespace: directories are queries.

"Like the semantic file system, a directory is created in PFS whenever
the user poses a query.  PFS creates links to files that match the query
in the resulting directory ... Building a query-based subdirectory is
equivalent to refining the query of the containing directory."
(Section 6.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryDirectory", "SemanticNamespace"]


@dataclass
class QueryDirectory:
    """One query-named directory: its query terms and current links."""

    path: str
    terms: tuple[str, ...]
    #: link name -> URL of the matching file.
    links: dict[str, str] = field(default_factory=dict)
    last_updated: float = 0.0

    def add_link(self, name: str, url: str) -> None:
        """Link a matching file into the directory."""
        self.links[name] = url

    def remove_link(self, name: str) -> None:
        """Drop a stale link."""
        self.links.pop(name, None)

    def __len__(self) -> int:
        return len(self.links)


class SemanticNamespace:
    """A user's private tree of query directories.

    Paths are slash-separated query segments: ``/gossip/protocols`` is the
    query "gossip" refined by "protocols" — its effective query is the
    union of all segment terms on the path.
    """

    def __init__(self) -> None:
        self._dirs: dict[str, QueryDirectory] = {}

    @staticmethod
    def _segments(path: str) -> list[str]:
        if not path.startswith("/") or path == "/":
            raise ValueError("directory paths are absolute and non-root")
        segments = [s for s in path.split("/") if s]
        if not segments:
            raise ValueError("empty directory path")
        return segments

    def effective_query(self, path: str) -> str:
        """The full refined query for ``path`` (all segments joined)."""
        return " ".join(self._segments(path))

    def make_directory(self, path: str, terms: tuple[str, ...], now: float) -> QueryDirectory:
        """Create a directory for an (analyzed) query."""
        if path in self._dirs:
            raise FileExistsError(path)
        self._segments(path)  # validates shape
        directory = QueryDirectory(path=path, terms=terms, last_updated=now)
        self._dirs[path] = directory
        return directory

    def remove_directory(self, path: str) -> None:
        """Delete a directory (and forget its links)."""
        try:
            del self._dirs[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def get(self, path: str) -> QueryDirectory:
        """Look up a directory."""
        try:
            return self._dirs[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def directories(self) -> list[str]:
        """All directory paths, sorted."""
        return sorted(self._dirs)

    def __contains__(self, path: str) -> bool:
        return path in self._dirs

    def __len__(self) -> int:
        return len(self._dirs)
