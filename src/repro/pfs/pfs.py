"""PFS Core (paper Section 6): publish files, maintain query directories.

Publishing a file:

1. obtain a URL from the File Server;
2. embed the URL and path in an XML snippet and publish it to PlanetP
   (which indexes the file's content);
3. ask PlanetP to advertise the snippet on the brokerage under the 10%
   most frequently appearing terms of the file, with a 10-minute TTL —
   the dual-publication trick that makes brand-new files findable for
   their hottest terms before the Bloom filter diffuses.

Creating a directory posts its (refined) query as a persistent exhaustive
query; upcalls add links as matching files are published.  Removals are
reconciled lazily: opening a directory not refreshed within the staleness
threshold re-runs the whole query.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from xml.sax.saxutils import escape

from repro.constants import (
    PFS_BROKER_DISCARD_S,
    PFS_BROKER_TERM_FRACTION,
    PFS_DIR_REFRESH_S,
)
from repro.core.community import InProcessCommunity
from repro.pfs.fileserver import FileServer
from repro.pfs.namespace import QueryDirectory, SemanticNamespace
from repro.store.chunkstore import ContentNotFound
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["PFS"]


class PFS:
    """One user's PFS instance, bound to a peer in a community."""

    def __init__(
        self,
        community: InProcessCommunity,
        peer_id: int,
        clock: Callable[[], float] | None = None,
        broker_term_fraction: float = PFS_BROKER_TERM_FRACTION,
        broker_ttl_s: float = PFS_BROKER_DISCARD_S,
        dir_refresh_s: float = PFS_DIR_REFRESH_S,
    ) -> None:
        self.community = community
        self.peer_id = peer_id
        self.files = FileServer(peer_id)
        self.namespace = SemanticNamespace()
        # Share the community's clock by default so brokered-advert TTLs
        # and directory staleness agree on what "now" means.
        self._clock = clock if clock is not None else community.brokerage.clock
        self.broker_term_fraction = broker_term_fraction
        self.broker_ttl_s = broker_ttl_s
        self.dir_refresh_s = dir_refresh_s
        #: snippet id -> local path, for deletion bookkeeping.
        self._published: dict[str, str] = {}

    # -- publishing -----------------------------------------------------------

    def _snippet_id(self, path: str) -> str:
        return f"pfs:{self.peer_id}:{path}"

    def publish_file(self, path: str, content: str) -> Document:
        """Share a local file with the community (steps 1-3 above)."""
        self.files.put_file(path, content)
        url = self.files.url_for(path)
        snippet_id = self._snippet_id(path)
        xml = (
            f'<pfsfile url="{escape(url, {chr(34): "&quot;"})}" '
            f'path="{escape(path, {chr(34): "&quot;"})}">'
            f"{escape(content)}</pfsfile>"
        )
        snippet = XMLSnippet(snippet_id, xml, {"url": url, "path": path})
        doc = self.community.publish(self.peer_id, snippet)
        self._published[snippet_id] = path
        # The brokerage is an optional optimization (Section 4): skip the
        # hot-term advertisement when nobody is brokering.
        hot_terms = self._top_terms(content) if self.community.brokerage.members() else []
        if hot_terms:
            self.community.brokerage.publish(
                snippet_id,
                xml,
                hot_terms,
                publisher=self.peer_id,
                ttl_s=self.broker_ttl_s,
                attributes={"url": url, "path": path},
            )
        return doc

    def _top_terms(self, content: str) -> list[str]:
        """The file's most frequent ``broker_term_fraction`` of terms."""
        freqs = Counter(self.community.analyzer.analyze(content))
        if not freqs:
            return []
        count = max(1, int(len(freqs) * self.broker_term_fraction))
        return [t for t, _ in freqs.most_common(count)]

    def unpublish_file(self, path: str) -> None:
        """Stop sharing a file (and delete it locally).

        Raises :class:`FileNotFoundError` for a path we never published
        and :class:`ContentNotFound` when the community no longer
        resolves the snippet id (e.g. it was removed out from under us) —
        previously that leaked the datastore's bare ``KeyError``.
        """
        snippet_id = self._snippet_id(path)
        if snippet_id not in self._published:
            raise FileNotFoundError(path)
        try:
            self.community.remove(snippet_id)
        except ContentNotFound:
            raise
        except KeyError:
            raise ContentNotFound(snippet_id, "not in the community index") from None
        del self._published[snippet_id]
        self.files.delete_file(path)

    # -- directories ------------------------------------------------------------

    def make_directory(self, path: str) -> QueryDirectory:
        """Create a query directory and wire up its persistent query."""
        query = self.namespace.effective_query(path)
        terms = tuple(self.community.analyze_query(query))
        if not terms:
            raise ValueError(f"directory query {query!r} analyzed to no terms")
        directory = self.namespace.make_directory(path, terms, self._clock())

        def _upcall(doc: Document) -> None:
            url = doc.metadata.get("url", doc.doc_id)
            directory.add_link(self._link_name(doc), str(url))

        self.community.post_persistent_query(query, _upcall)
        self._refresh(directory)
        return directory

    @staticmethod
    def _link_name(doc: Document) -> str:
        path = doc.metadata.get("path")
        if path:
            return str(path).rsplit("/", 1)[-1] or str(path)
        return doc.doc_id

    def open_directory(self, path: str) -> QueryDirectory:
        """Open a directory; re-run its query if it has gone stale
        (the lazy removal-reconciliation of Section 6)."""
        directory = self.namespace.get(path)
        if self._clock() - directory.last_updated > self.dir_refresh_s:
            self._refresh(directory)
        return directory

    def _refresh(self, directory: QueryDirectory) -> None:
        """Re-run the directory's full query, replacing all links."""
        matches = self.community.exhaustive_search(
            " ".join(directory.terms), from_peer=self.peer_id
        )
        directory.links.clear()
        for doc in matches:
            url = doc.metadata.get("url", doc.doc_id)
            directory.add_link(self._link_name(doc), str(url))
        directory.last_updated = self._clock()

    # -- reading remote files -------------------------------------------------------

    def read_url(self, url: str, peers_files: dict[int, FileServer] | None = None) -> str:
        """Fetch a file by URL.

        With no registry supplied, only our own URLs resolve; tests and
        examples pass a {peer_id: FileServer} map standing in for HTTP.
        An unresolvable URL raises :class:`ContentNotFound` (a
        :class:`LookupError` subclass, so existing handlers still catch
        it).
        """
        prefix = f"http://{self.files.host}"
        if url.startswith(prefix):
            return self.files.get(url)
        if peers_files:
            for server in peers_files.values():
                if url.startswith(f"http://{server.host}"):
                    return server.get(url)
        raise ContentNotFound(url, "no server for URL")
