"""PFS: the personal semantic file system built on PlanetP (Section 6).

Files live in each user's local file system (modeled by
:class:`FileServer`); publishing a file hands PlanetP an XML snippet with
the file's URL, which gets indexed and (for the file's most frequent
terms) advertised on the brokerage with a short TTL.  Directories are
queries: opening a directory named by a query populates it with links to
matching files, kept current by persistent-query upcalls and a staleness
refresh.
"""

from repro.pfs.fileserver import FileServer
from repro.pfs.namespace import QueryDirectory, SemanticNamespace
from repro.pfs.pfs import PFS
from repro.store.chunkstore import ContentNotFound

__all__ = [
    "ContentNotFound",
    "FileServer",
    "QueryDirectory",
    "SemanticNamespace",
    "PFS",
]
