"""PlanetP reproduction: gossip-replicated Bloom-filter content search for
P2P communities.

Reproduces Cuenca-Acuna, Peery, Martin & Nguyen, *"PlanetP: Using
Gossiping to Build Content Addressable Peer-to-Peer Information Sharing
Communities"* (Rutgers DCS-TR-487 / HPDC 2003).

Quick start::

    from repro import InProcessCommunity, Document

    community = InProcessCommunity(num_peers=8)
    community.publish(0, Document("d1", "epidemic gossip protocols"))
    community.publish(3, Document("d2", "vector space ranking models"))
    result = community.ranked_search("gossip protocols", k=5)
    print(result.doc_ids())

Subpackages
-----------
``repro.bloom``      Bloom filters, Golomb-coded compression, diffs
``repro.text``       tokenizer, Porter stemmer, inverted index
``repro.corpus``     synthetic collections with relevance judgments
``repro.ranking``    TF×IDF baseline, TF×IPF + adaptive stopping
``repro.sim``        discrete-event engine, link model, churn
``repro.gossip``     the gossip protocol and its scenario runners
``repro.brokerage``  consistent-hashing information brokerage
``repro.core``       peers, communities, searches (public API)
``repro.pfs``        the PFS semantic-file-system example app
``repro.experiments`` one runner per paper table/figure
"""

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig, GossipConfig, RankingConfig
from repro.core.community import InProcessCommunity
from repro.core.peer import PlanetPPeer
from repro.pfs.pfs import PFS
from repro.ranking.tfidf import CentralizedTFIDF, RankedDoc
from repro.ranking.tfipf import DistributedSearchResult
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BloomConfig",
    "GossipConfig",
    "RankingConfig",
    "InProcessCommunity",
    "PlanetPPeer",
    "PFS",
    "CentralizedTFIDF",
    "RankedDoc",
    "DistributedSearchResult",
    "Analyzer",
    "Document",
    "XMLSnippet",
    "__version__",
]
