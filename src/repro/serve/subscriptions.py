"""Persistent queries over the wire (paper Section 5.1).

The in-process :class:`~repro.core.persistent.PersistentQueryManager`
fires upcalls for documents published *through the same process*.  This
module extends the idea community-wide: a remote client posts a standing
conjunctive query to any serving node (``SubscribeRequest``), and that
node watches its *replicated directory* — every gossip-applied filter
update or member (re)join marks the originating peer dirty, a background
worker probes dirty peers whose filters may match a subscription
(exhaustive RPC), fetches fresh matching documents, and pushes them to
the subscriber's notify address as ``Notify`` frames.  Gossip is the
change feed, so a document published on *any* member reaches the
subscriber without the publisher knowing the subscription exists.

Delivery semantics:

* **at-least-once upcalls, deduplicated by doc id** — a doc id enters a
  subscription's ``delivered`` set only after the subscriber acks its
  ``Notify``; failed notifies are retried on the next probe;
* **baseline at subscribe** — documents already searchable when the
  subscription is posted are marked delivered silently, so upcalls mean
  "published after you subscribed";
* **durable across restarts** — subscriptions (with their delivered
  sets) are checkpointed through :mod:`repro.store` (``PPSUB001``); a
  restarted node reloads them and probes the whole directory once
  (:meth:`SubscriptionManager.mark_all_dirty`), catching documents
  published while it was down.

:class:`SubscriptionClient` is the other end: it serves a notify
address, posts/cancels subscriptions, and routes ``Notify`` frames to
per-subscription callbacks.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.constants import NetConfig
from repro.core.search import exhaustive_local_match
from repro.gossip.wire import (
    AENothing,
    Notify,
    SubscribeAck,
    SubscribeRequest,
    Unsubscribe,
)
from repro.net import codec
from repro.net.codec import (
    CodecError,
    ErrorReply,
    ExhaustiveQuery,
    ExhaustiveResponse,
    SnippetFetch,
    SnippetResponse,
)
from repro.net.transport import TcpTransport, Transport, TransportError
from repro.obs import Registry, global_registry
from repro.store import (
    SubscriptionCheckpoint,
    SubscriptionEntry,
    load_subscriptions,
    save_subscriptions,
)
from repro.text.document import Document

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer

__all__ = ["Subscription", "SubscriptionClient", "SubscriptionManager"]


@dataclass
class Subscription:
    """One standing query registered at a serving node."""

    sub_id: int
    terms: tuple[str, ...]
    notify_address: str
    created_at: float
    #: doc ids the subscriber has acknowledged (dedup across probes,
    #: republications, and restarts).
    delivered: set[str] = field(default_factory=set)


class SubscriptionManager:
    """Server half: registration, change detection, upcall delivery.

    Attached to every :class:`~repro.net.node.NetworkPeer`; inert (no
    task, no RPCs) until the first subscription arrives.
    """

    def __init__(
        self, node: NetworkPeer, checkpoint_path: str | Path | None = None
    ) -> None:
        self.node = node
        self.obs = node.obs
        self._path = Path(checkpoint_path) if checkpoint_path is not None else None
        self.subscriptions: dict[int, Subscription] = {}
        self._next_id = 1
        self._dirty: set[int] = set()
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self.restored_subscriptions = 0
        self._g_active = self.obs.gauge(
            "serve", "subscriptions_active", "standing queries registered"
        )
        self._c_notifies = self.obs.counter(
            "serve", "notifies_sent_total", "acknowledged upcalls delivered"
        )
        self._c_notify_failures = self.obs.counter(
            "serve",
            "notify_failures_total",
            "upcalls that failed or went unacknowledged (retried)",
        )
        self._c_probes = self.obs.counter(
            "serve", "subscription_probes_total", "dirty-peer probes run"
        )
        self._restore()

    # -- persistence ---------------------------------------------------------

    def _restore(self) -> None:
        if self._path is None:
            return
        ckpt = load_subscriptions(self._path)
        if ckpt is None or ckpt.peer_id != self.node.peer_id:
            return
        for e in ckpt.entries:
            self.subscriptions[e.sub_id] = Subscription(
                e.sub_id, e.terms, e.notify_address, e.created_at, set(e.delivered)
            )
        highest = max(self.subscriptions, default=0)
        self._next_id = max(ckpt.next_sub_id, highest + 1)
        self.restored_subscriptions = len(ckpt.entries)
        self._g_active.set(len(self.subscriptions))
        if self.restored_subscriptions:
            self.obs.emit(
                "subscriptions_restored",
                peer=self.node.peer_id,
                count=self.restored_subscriptions,
            )

    def checkpoint(self) -> int:
        """Persist registered subscriptions; returns bytes written.

        A no-op without a checkpoint path; write failures are counted,
        never raised — a full disk must not stop serving.
        """
        if self._path is None:
            return 0
        ckpt = SubscriptionCheckpoint(
            self.node.peer_id,
            time.time(),
            self._next_id,
            tuple(
                SubscriptionEntry(
                    s.sub_id,
                    s.terms,
                    s.notify_address,
                    s.created_at,
                    tuple(sorted(s.delivered)),
                )
                for _sid, s in sorted(self.subscriptions.items())
            ),
        )
        try:
            return save_subscriptions(self._path, ckpt)
        except OSError:
            self.obs.counter(
                "store",
                "subscription_checkpoint_errors_total",
                "failed subscription checkpoint writes",
            ).inc()
            return 0

    # -- registration (server dispatch) --------------------------------------

    async def handle_subscribe(self, msg: SubscribeRequest) -> SubscribeAck:
        """Register (or reattach) a standing query; baseline its view."""
        terms = tuple(self.node.analyzer.analyze_query(" ".join(msg.terms)))
        if not terms:
            return SubscribeAck(0, False, "query analyzed to zero terms")
        existing = self.subscriptions.get(msg.sub_id) if msg.sub_id else None
        if existing is not None and existing.terms == terms:
            # Reattach after a client restart: refresh the upcall address,
            # keep the delivered set (the dedup survives the reconnect).
            if msg.notify_address:
                existing.notify_address = msg.notify_address
            self.checkpoint()
            return SubscribeAck(existing.sub_id, True, "reattached")
        sub_id = msg.sub_id if msg.sub_id else self._next_id
        self._next_id = max(self._next_id, sub_id) + 1
        sub = Subscription(sub_id, terms, msg.notify_address, msg.created_at)
        await self._baseline(sub)
        self.subscriptions[sub_id] = sub
        self._g_active.set(len(self.subscriptions))
        self._ensure_task()
        self.checkpoint()
        self.obs.emit(
            "subscription_posted",
            peer=self.node.peer_id,
            sub=sub_id,
            terms=list(terms),
        )
        return SubscribeAck(sub_id, True, "subscribed")

    def handle_unsubscribe(self, msg: Unsubscribe) -> SubscribeAck:
        """Deregister a standing query (idempotent)."""
        removed = self.subscriptions.pop(msg.sub_id, None)
        self._g_active.set(len(self.subscriptions))
        if removed is not None:
            self.checkpoint()
            return SubscribeAck(msg.sub_id, True, "unsubscribed")
        return SubscribeAck(msg.sub_id, False, "unknown subscription")

    async def _baseline(self, sub: Subscription) -> None:
        """Mark everything already searchable as delivered, silently —
        upcalls are for documents published *after* the subscription."""
        for pid in self.node.peer.candidate_peers(list(sub.terms)):
            sub.delivered.update(await self._matching_ids(pid, sub.terms))

    # -- change detection ----------------------------------------------------

    def mark_dirty(self, pid: int) -> None:
        """Note that ``pid``'s content may have changed (gossip applied a
        filter update or join, or we published locally).  Cheap no-op
        while nothing is subscribed."""
        if not self.subscriptions:
            return
        self._dirty.add(pid)
        self._wake.set()
        self._ensure_task()

    def mark_all_dirty(self) -> None:
        """Probe the whole directory (warm-restart catch-up: rumors that
        arrived and were checkpointed before the crash never re-apply, so
        their publishes would otherwise be missed)."""
        if not self.subscriptions:
            return
        self._dirty.update(self.node.peer.directory)
        self._dirty.add(self.node.peer_id)
        self._wake.set()
        self._ensure_task()

    def _ensure_task(self) -> None:
        if self._task is not None and not self._task.done():
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # sync context; the next async touch starts the worker
        self._task = loop.create_task(self._worker())

    async def _worker(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            with contextlib.suppress(TransportError, CodecError):
                await self.drain()

    async def stop(self) -> None:
        """Cancel the worker and write a final checkpoint."""
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        if self.subscriptions:
            self.checkpoint()

    # -- probing & delivery --------------------------------------------------

    async def drain(self) -> int:
        """Probe every dirty peer now; returns upcalls delivered.

        The worker calls this on wakeup; tests call it directly for
        deterministic delivery without sleeping.
        """
        dirty, self._dirty = self._dirty, set()
        if not dirty or not self.subscriptions:
            return 0
        fired = 0
        for pid in sorted(dirty):
            fired += await self._probe(pid)
        self.checkpoint()
        return fired

    async def _probe(self, pid: int) -> int:
        self._c_probes.inc()
        fired = 0
        for sub in list(self.subscriptions.values()):
            if sub.sub_id not in self.subscriptions:
                continue  # unsubscribed while an earlier await ran
            if not self._filter_may_match(pid, sub.terms):
                continue
            for doc_id in await self._matching_ids(pid, sub.terms):
                if sub.sub_id not in self.subscriptions:
                    break  # unsubscribe raced the probe: stop delivering
                if doc_id in sub.delivered:
                    continue
                doc = await self._fetch(pid, doc_id)
                if doc is None:
                    self._dirty.add(pid)  # fetch failed; retry next wake
                    continue
                if await self._notify(sub, pid, doc):
                    sub.delivered.add(doc_id)
                    fired += 1
                else:
                    self._dirty.add(pid)  # unacked; retry next wake
        return fired

    def _filter_may_match(self, pid: int, terms: tuple[str, ...]) -> bool:
        if pid == self.node.peer_id:
            return self.node.peer.store.bloom_filter.contains_all(terms)
        entry = self.node.peer.directory.get(pid)
        if entry is None or entry.bloom_filter is None:
            return False
        return entry.bloom_filter.contains_all(terms)

    async def _matching_ids(self, pid: int, terms: tuple[str, ...]) -> list[str]:
        if pid == self.node.peer_id:
            return exhaustive_local_match(self.node.peer.store.index, list(terms))
        reply = await self._rpc(pid, ExhaustiveQuery(terms))
        if isinstance(reply, ExhaustiveResponse):
            return list(reply.doc_ids)
        return []

    async def _fetch(self, pid: int, doc_id: str) -> Document | None:
        if pid == self.node.peer_id:
            try:
                return self.node.peer.store.get(doc_id)
            except KeyError:
                return None
        reply = await self._rpc(pid, SnippetFetch(doc_id))
        if isinstance(reply, SnippetResponse) and reply.found:
            return Document(reply.doc_id, reply.text)
        return None

    async def _notify(self, sub: Subscription, origin: int, doc: Document) -> bool:
        msg = Notify(sub.sub_id, origin, doc.doc_id, doc.text)
        try:
            body = await self.node.transport.request(
                sub.notify_address, codec.encode(msg)
            )
            reply = codec.decode(body)
        except (TransportError, CodecError):
            reply = None
        if isinstance(reply, AENothing):
            self._c_notifies.inc()
            self.obs.emit(
                "notify_delivered",
                peer=self.node.peer_id,
                sub=sub.sub_id,
                doc=doc.doc_id,
                origin=origin,
            )
            return True
        self._c_notify_failures.inc()
        return False

    async def _rpc(self, pid: int, msg: object) -> object | None:
        entry = self.node.peer.directory.get(pid)
        if entry is None or not entry.address:
            return None
        address = entry.address
        try:
            body = await self.node.transport.request(address, codec.encode(msg))
            reply = codec.decode(body)
        except (TransportError, CodecError):
            self.node._record_contact(pid, address, ok=False)
            return None
        self.node._record_contact(pid, address, ok=True)
        return reply

    def __len__(self) -> int:
        return len(self.subscriptions)


class SubscriptionClient:
    """Client half: posts standing queries and receives their upcalls.

    Owns a transport endpoint serving ``Notify`` frames; callbacks are
    keyed by subscription id and receive the raw :class:`~repro.gossip.
    wire.Notify` (sub id, origin peer, doc id, full text).  A ``Notify``
    for an unknown id is answered with an error, so the server keeps the
    document queued for redelivery.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        transport: Transport | None = None,
        net_config: NetConfig | None = None,
        registry: Registry | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self.transport = transport or TcpTransport(net_config or NetConfig())
        self.obs = registry if registry is not None else global_registry()
        self.transport.bind_registry(self.obs)
        self.address: str | None = None
        self._callbacks: dict[int, Callable[[Notify], None]] = {}

    async def start(self) -> str:
        """Bind the notify endpoint; returns its address."""
        self.address = await self.transport.serve(
            f"{self._host}:{self._port}", self._serve
        )
        return self.address

    async def _serve(self, body: bytes) -> bytes:
        try:
            msg = codec.decode(body)
        except CodecError as exc:
            return codec.encode(ErrorReply(f"bad frame: {exc}"))
        if isinstance(msg, Notify):
            callback = self._callbacks.get(msg.sub_id)
            if callback is None:
                return codec.encode(
                    ErrorReply(f"unknown subscription {msg.sub_id}")
                )
            callback(msg)
            self.obs.counter(
                "serve", "notifies_received_total", "upcalls received and acked"
            ).inc()
            return codec.encode(AENothing())
        return codec.encode(ErrorReply(f"unexpected message {type(msg).__name__}"))

    async def subscribe(
        self,
        server_address: str,
        query: str | Sequence[str],
        callback: Callable[[Notify], None],
        sub_id: int = 0,
    ) -> int:
        """Post a standing query at ``server_address``; returns its id.

        ``sub_id`` other than 0 reattaches to an existing subscription
        (after a client restart).  Raises :class:`TransportError` if the
        server declines.
        """
        if self.address is None:
            raise RuntimeError("call start() before subscribe()")
        terms = tuple(query.split()) if isinstance(query, str) else tuple(query)
        msg = SubscribeRequest(sub_id, terms, self.address, time.time())
        body = await self.transport.request(server_address, codec.encode(msg))
        reply = codec.decode(body)
        if not isinstance(reply, SubscribeAck) or not reply.accepted:
            detail = getattr(reply, "message", type(reply).__name__)
            raise TransportError(f"subscribe declined: {detail}")
        self._callbacks[reply.sub_id] = callback
        return reply.sub_id

    async def unsubscribe(self, server_address: str, sub_id: int) -> bool:
        """Cancel a standing query; returns whether the server knew it."""
        self._callbacks.pop(sub_id, None)
        body = await self.transport.request(
            server_address, codec.encode(Unsubscribe(sub_id))
        )
        reply = codec.decode(body)
        return isinstance(reply, SubscribeAck) and reply.accepted

    async def close(self) -> None:
        """Stop serving upcalls and release the transport."""
        await self.transport.close()
