"""Version-keyed result cache for the query plane.

A search answer is a pure function of (query, k, the replicated
directory the searcher ranked against).  The directory already tracks
its own mutations precisely: every :class:`~repro.bloom.filter.
BloomFilter` bumps a ``version`` counter on mutation (the same counters
the compression memo keys on), and every publish bumps the owner's
``filter_version``.  :func:`directory_generation` folds those counters —
plus each member's online flag — into one 64-bit fingerprint, so a cache
entry is keyed on *exactly* the state that determined its answer:

* a matching document published anywhere bumps a filter version, the
  generation moves, and the stale entry is evicted on next lookup —
  stale results are never served;
* an unrelated directory change also moves the generation (the
  fingerprint is deliberately coarse: correctness over hit rate).

The generation is computed *before* a search runs; a directory change
racing the search leaves the entry keyed to the pre-search generation,
which the next lookup rejects.  Lookups cost O(members) integer reads —
no hashing of filter contents.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Hashable

from repro.obs import Registry, global_registry

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer

__all__ = ["ResultCache", "directory_generation"]

_MASK = 0xFFFFFFFFFFFFFFFF


def _mix64(*parts: int) -> int:
    """Avalanche a small integer tuple into one 64-bit hash
    (splitmix64 finalizer, applied per part)."""
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h = (h ^ (p & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h ^= h >> 31
    return h


def directory_generation(node: NetworkPeer) -> int:
    """Fingerprint of the directory state a search would rank against.

    XOR of per-member mixes, so it is order-insensitive and O(members)
    to compute.  Every input is a counter the existing layers already
    maintain: the store's publish counter and live filter version for
    ourselves; the replicated ``filter_version``, the replica filter's
    mutation ``version``, and the online flag for everyone else.
    """
    store = node.peer.store
    gen = _mix64(node.peer_id, store.filter_version, store.bloom_filter.version, 1)
    for pid, entry in node.peer.directory.items():
        if pid == node.peer_id:
            continue
        bf = entry.bloom_filter
        gen ^= _mix64(
            pid,
            entry.filter_version,
            bf.version if bf is not None else -1,
            1 if entry.online else 0,
        )
    return gen


class ResultCache:
    """LRU cache of search results keyed on (query key, generation).

    ``get`` misses on an absent key and *evicts* on a generation
    mismatch (counted separately as stale — the invalidation the bench
    asserts on).  Counters and the size gauge land in the registry's
    ``serve`` component.
    """

    def __init__(self, capacity: int, registry: Registry | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        obs = registry if registry is not None else global_registry()
        self._c_hits = obs.counter(
            "serve", "result_cache_hits_total", "cache lookups answered"
        )
        self._c_misses = obs.counter(
            "serve", "result_cache_misses_total", "cache lookups not answered"
        )
        self._c_stale = obs.counter(
            "serve",
            "result_cache_stale_total",
            "entries evicted because the directory generation moved",
        )
        self._c_evictions = obs.counter(
            "serve", "result_cache_evictions_total", "LRU capacity evictions"
        )
        self._g_size = obs.gauge("serve", "result_cache_size", "entries held")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, generation: int) -> Any | None:
        """The cached result for ``key`` at ``generation``, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self._c_misses.inc()
            return None
        gen, result = entry
        if gen != generation:
            del self._entries[key]
            self._g_size.set(len(self._entries))
            self._c_stale.inc()
            self._c_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._c_hits.inc()
        return result

    def put(self, key: Hashable, generation: int, result: Any) -> None:
        """Install ``result`` for ``key`` as of ``generation``."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (generation, result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._c_evictions.inc()
        self._g_size.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (capacity and counters unchanged)."""
        self._entries.clear()
        self._g_size.set(0)
