"""Version-keyed result cache for the query plane.

A search answer is a pure function of (query, k, the replicated
directory the searcher ranked against).  The directory already tracks
its own mutations precisely: every :class:`~repro.bloom.filter.
BloomFilter` bumps a ``version`` counter on mutation (the same counters
the compression memo keys on), and every publish bumps the owner's
``filter_version``.  :func:`directory_generation` folds those counters —
plus each member's online flag — into one 64-bit fingerprint, so a cache
entry is keyed on *exactly* the state that determined its answer:

* a matching document published anywhere bumps a filter version, the
  generation moves, and the stale entry is evicted on next lookup —
  stale results are never served;
* an unrelated directory change also moves the generation (the
  fingerprint is deliberately coarse: correctness over hit rate).

The generation is computed *before* a search runs; a directory change
racing the search leaves the entry keyed to the pre-search generation,
which the next lookup rejects.  Lookups cost O(members) integer reads —
no hashing of filter contents.

Under the partial-view mode the fingerprint is maintained *per shard*
(:func:`shard_generations`) and XOR-composed: the composition over any
sharding equals the flat fold, so flat and partial nodes fingerprint the
same state identically, and a partial node's generation additionally
covers its foreign-shard summary filters (whose freshness changes which
shards a search fans out to).  Invalidation still covers remote
publishes either way — a BF_UPDATE bumps the member's replicated
``filter_version`` even when its full filter was dropped.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.gossip.directory import compose_generations, member_mix, summary_mix
from repro.obs import Registry, global_registry

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer

__all__ = ["ResultCache", "directory_generation", "shard_generations"]


def shard_generations(
    node: NetworkPeer, shard_of: Callable[[int], int] | None = None
) -> dict[int, int]:
    """Per-shard generation mixes of the directory state.

    ``shard_of`` maps pids to shards; it defaults to the node's partial
    view when one is attached, else the whole directory folds into a
    single shard 0 (the flat case).  Each shard's value is the XOR of
    its members' :func:`~repro.gossip.directory.member_mix` values; a
    partial node's foreign shards additionally fold a
    :func:`~repro.gossip.directory.summary_mix` of the shard summary it
    would fan a search out through.
    """
    pview = getattr(node, "pview", None)
    if shard_of is None:
        if pview is not None:
            shard_of = pview.shard_of
        else:
            shard_of = lambda pid: 0  # noqa: E731 — the flat case
    store = node.peer.store
    own = node.peer_id
    gens: dict[int, int] = {
        shard_of(own): member_mix(
            own, store.filter_version, store.bloom_filter.version, True
        )
    }
    for pid, entry in node.peer.directory.items():
        if pid == own:
            continue
        bf = entry.bloom_filter
        shard = shard_of(pid)
        gens[shard] = gens.get(shard, 0) ^ member_mix(
            pid,
            entry.filter_version,
            bf.version if bf is not None else -1,
            entry.online,
        )
    if pview is not None:
        for shard, summary in pview.summaries.items():
            if shard == pview.home:
                continue
            gens[shard] = gens.get(shard, 0) ^ summary_mix(
                shard, summary.version, summary.member_count
            )
    return gens


def directory_generation(node: NetworkPeer) -> int:
    """Fingerprint of the directory state a search would rank against.

    XOR of per-member (and, under partial views, per-shard-summary)
    mixes, so it is order-insensitive and O(members) to compute.  Every
    input is a counter the existing layers already maintain: the store's
    publish counter and live filter version for ourselves; the
    replicated ``filter_version``, the replica filter's mutation
    ``version``, and the online flag for everyone else.
    """
    return compose_generations(shard_generations(node).values())


class ResultCache:
    """LRU cache of search results keyed on (query key, generation).

    ``get`` misses on an absent key and *evicts* on a generation
    mismatch (counted separately as stale — the invalidation the bench
    asserts on).  Counters and the size gauge land in the registry's
    ``serve`` component.
    """

    def __init__(self, capacity: int, registry: Registry | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        obs = registry if registry is not None else global_registry()
        self._c_hits = obs.counter(
            "serve", "result_cache_hits_total", "cache lookups answered"
        )
        self._c_misses = obs.counter(
            "serve", "result_cache_misses_total", "cache lookups not answered"
        )
        self._c_stale = obs.counter(
            "serve",
            "result_cache_stale_total",
            "entries evicted because the directory generation moved",
        )
        self._c_evictions = obs.counter(
            "serve", "result_cache_evictions_total", "LRU capacity evictions"
        )
        self._g_size = obs.gauge("serve", "result_cache_size", "entries held")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, generation: int) -> Any | None:
        """The cached result for ``key`` at ``generation``, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self._c_misses.inc()
            return None
        gen, result = entry
        if gen != generation:
            del self._entries[key]
            self._g_size.set(len(self._entries))
            self._c_stale.inc()
            self._c_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._c_hits.inc()
        return result

    def put(self, key: Hashable, generation: int, result: Any) -> None:
        """Install ``result`` for ``key`` as of ``generation``."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (generation, result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._c_evictions.inc()
        self._g_size.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (capacity and counters unchanged)."""
        self._entries.clear()
        self._g_size.set(0)
