"""Query scheduler: admission control, load shedding, bounded fan-out.

One :class:`QueryScheduler` fronts one :class:`~repro.net.node.
NetworkPeer` and turns its single-query search client into a serving
plane:

* **global in-flight budget** — at most ``max_concurrent`` searches run
  at once; the rest queue;
* **bounded queue + deadline shedding** — arrivals beyond ``max_queue``
  are rejected immediately, and a query that waited past its deadline
  for a slot is shed instead of run (its answer would arrive too late to
  matter).  Both rejections carry a ``retry_after_s`` hint derived from
  the measured mean query latency, so overload degrades into polite
  backpressure instead of collapse;
* **per-peer in-flight caps** — a :class:`PeerGate` shared with the
  search client bounds concurrent RPCs *per target peer*, so one slow
  member saturates its own gate, not the community's;
* **version-keyed caching** — results are cached under the directory
  generation (:mod:`repro.serve.cache`); a repeated query against an
  unchanged directory never re-contacts anyone.

Everything is observable under the registry's ``serve`` component:
admitted/completed/rejected/shed counters, queue and in-flight gauges,
and the ``query_latency_seconds`` histogram the bench reads p50/p99
from.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.constants import RankingConfig, ServeConfig
from repro.net.client import NetworkSearchClient
from repro.obs import Registry
from repro.ranking.stopping import StoppingPolicy
from repro.ranking.tfipf import DistributedSearchResult
from repro.serve.cache import ResultCache, directory_generation

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer

__all__ = ["PeerGate", "QueryRejected", "QueryScheduler"]


class QueryRejected(RuntimeError):
    """The scheduler declined to run a query (queue full or deadline).

    ``retry_after_s`` is the backpressure hint: how long the caller
    should wait before retrying, estimated from current queue depth and
    measured service time.
    """

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(f"{reason} (retry after {retry_after_s:.2f}s)")
        self.reason = reason
        self.retry_after_s = retry_after_s


class PeerGate:
    """Per-peer in-flight RPC caps, shared across all queries.

    ``slot(pid)`` returns that peer's semaphore (created on first use),
    usable as ``async with gate.slot(pid): ...`` — so the cap holds
    community-wide no matter how many concurrent searches fan out.
    """

    def __init__(self, per_peer_inflight: int) -> None:
        if per_peer_inflight < 1:
            raise ValueError("per_peer_inflight must be >= 1")
        self.per_peer_inflight = per_peer_inflight
        self._sems: dict[int, asyncio.Semaphore] = {}

    def slot(self, pid: int) -> asyncio.Semaphore:
        """The in-flight cap for RPCs targeting ``pid``."""
        sem = self._sems.get(pid)
        if sem is None:
            sem = self._sems[pid] = asyncio.Semaphore(self.per_peer_inflight)
        return sem


class QueryScheduler:
    """Admits, paces, caches, and sheds searches for one serving node."""

    def __init__(
        self,
        node: NetworkPeer,
        config: ServeConfig | None = None,
        *,
        stopping: StoppingPolicy | None = None,
        ranking_config: RankingConfig | None = None,
        registry: Registry | None = None,
    ) -> None:
        self.node = node
        self.config = config or ServeConfig()
        self.obs = registry if registry is not None else node.obs
        self.gate = PeerGate(self.config.per_peer_inflight)
        self.client = NetworkSearchClient(
            node,
            stopping=stopping,
            ranking_config=ranking_config,
            fanout_limit=self.config.fanout_limit,
            peer_deadline_s=self.config.peer_deadline_s,
            peer_gate=self.gate,
        )
        self.cache = ResultCache(self.config.cache_size, registry=self.obs)
        #: community browser (repro.analytics.browse); attach one to turn
        #: the ``browse`` endpoint on — listings then share the searches'
        #: admission control, caching, and generation invalidation.
        self.browser = None
        self._slots = asyncio.Semaphore(self.config.max_concurrent)
        self._queued = 0
        self._inflight = 0
        self._c_admitted = self.obs.counter(
            "serve", "queries_admitted_total", "queries that got a slot"
        )
        self._c_completed = self.obs.counter(
            "serve", "queries_completed_total", "queries answered (cache or search)"
        )
        self._c_rejected = self.obs.counter(
            "serve", "queries_rejected_total", "arrivals bounced off the full queue"
        )
        self._c_shed = self.obs.counter(
            "serve", "queries_shed_total", "queued queries dropped at their deadline"
        )
        self._g_queued = self.obs.gauge(
            "serve", "queries_queued", "queries waiting for a slot"
        )
        self._g_inflight = self.obs.gauge(
            "serve", "queries_inflight", "queries currently running"
        )
        self._h_latency = self.obs.histogram(
            "serve", "query_latency_seconds", "admission-to-answer time"
        )

    # -- public API ----------------------------------------------------------

    async def ranked(
        self, query: str, k: int = 20, deadline_s: float | None = None
    ) -> DistributedSearchResult:
        """Serve one ranked search (Section 5.2), cached and admitted."""
        if k <= 0:
            raise ValueError("k must be positive")
        terms = tuple(self.node.analyzer.analyze_query(query))
        if not terms:
            raise ValueError("query analyzed to zero terms")
        return await self._admit(
            ("ranked", terms, k),
            deadline_s,
            lambda: self.client.ranked_search(query, k),
        )

    async def exhaustive(
        self, query: str, deadline_s: float | None = None
    ) -> list[str]:
        """Serve one exhaustive search (Section 5.1), cached and admitted."""
        terms = tuple(self.node.analyzer.analyze_query(query))
        if not terms:
            return []
        return await self._admit(
            ("exhaustive", terms, 0),
            deadline_s,
            lambda: self.client.exhaustive_search(query),
        )

    def attach_browser(self, browser) -> None:
        """Enable ``browse`` by attaching a CommunityBrowser."""
        self.browser = browser

    async def browse(self, path: str, k: int = 20, deadline_s: float | None = None):
        """Serve one popularity-ranked directory listing.

        The listing is admitted, shed, and cached exactly like a search —
        the cache key carries the path, so a repeat browse of an
        unchanged community is a cache hit, and any directory-generation
        change invalidates it on the next read.
        """
        if self.browser is None:
            raise RuntimeError("no browser attached (QueryScheduler.attach_browser)")
        if k <= 0:
            raise ValueError("k must be positive")
        return await self._admit(
            ("browse", path, k),
            deadline_s,
            lambda: self.browser.listing(path, k),
        )

    # -- admission -----------------------------------------------------------

    async def _admit(self, key, deadline_s, run):
        deadline_s = (
            deadline_s if deadline_s is not None else self.config.default_deadline_s
        )
        generation = directory_generation(self.node)
        cached = self.cache.get(key, generation)
        if cached is not None:
            self._c_completed.inc()
            return cached
        if self._queued >= self.config.max_queue:
            self._c_rejected.inc()
            raise QueryRejected("admission queue full", self.retry_after())
        self._queued += 1
        self._g_queued.set(self._queued)
        enqueued_at = self.node.clock()
        dequeued = False
        try:
            async with self._slots:
                self._queued -= 1
                self._g_queued.set(self._queued)
                dequeued = True
                waited = self.node.clock() - enqueued_at
                if waited > deadline_s:
                    self._c_shed.inc()
                    raise QueryRejected(
                        "deadline exceeded while queued", self.retry_after()
                    )
                self._c_admitted.inc()
                # An identical query may have landed while we queued; the
                # re-check also re-fingerprints, so a directory change
                # during the wait is honored.
                generation = directory_generation(self.node)
                cached = self.cache.get(key, generation)
                if cached is not None:
                    self._c_completed.inc()
                    return cached
                self._inflight += 1
                self._g_inflight.set(self._inflight)
                try:
                    started = self.node.clock()
                    result = await run()
                    self._h_latency.observe(max(0.0, self.node.clock() - started))
                finally:
                    self._inflight -= 1
                    self._g_inflight.set(self._inflight)
                self.cache.put(key, generation, result)
                self._c_completed.inc()
                return result
        finally:
            if not dequeued:
                self._queued -= 1
                self._g_queued.set(self._queued)

    def retry_after(self) -> float:
        """Backpressure hint: expected wait for the backlog to drain,
        from measured mean service time (a coarse default before any
        query has completed)."""
        snap = self.obs.snapshot("serve", "query_latency_seconds")
        mean = snap.mean if snap is not None and snap.total else 0.25
        backlog = self._queued + 1
        return max(0.05, backlog * mean / self.config.max_concurrent)
