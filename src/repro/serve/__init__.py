"""repro.serve — a production query plane over :mod:`repro.net`.

The paper's search (Sections 4-5) is reproduced elsewhere as one
client-driven wave per query; this package makes a node *serve*:

``scheduler``      :class:`QueryScheduler` — a global in-flight budget,
                   a bounded admission queue with deadline shedding and
                   ``retry_after`` hints, and per-peer in-flight caps
                   (:class:`PeerGate`) shared with the search client
``cache``          :class:`ResultCache` — results keyed on (query, k,
                   directory generation), where the generation folds the
                   same ``BloomFilter.version`` counters that power the
                   compression memo; a publish anywhere moves the
                   generation and stale entries are never served
``subscriptions``  persistent queries over the wire (paper Section 5.1):
                   a remote client posts a standing query and receives
                   ``Notify`` upcalls when matching documents are
                   published anywhere in the community, surviving node
                   restarts via ``PPSUB001`` checkpoints

Every moving part records into the registry's ``serve`` component, and
``benchmarks/bench_qps.py`` turns those instruments into the committed
QPS × latency × hit-rate trajectory.
"""

from repro.serve.cache import ResultCache, directory_generation, shard_generations
from repro.serve.scheduler import PeerGate, QueryRejected, QueryScheduler
from repro.serve.subscriptions import (
    Subscription,
    SubscriptionClient,
    SubscriptionManager,
)

__all__ = [
    "PeerGate",
    "QueryRejected",
    "QueryScheduler",
    "ResultCache",
    "Subscription",
    "SubscriptionClient",
    "SubscriptionManager",
    "directory_generation",
    "shard_generations",
]
