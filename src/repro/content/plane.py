"""The node-side content plane: replicate published bytes, serve chunks.

Placement is the brokerage's consistent-hash ring carried over sockets
(paper Section 4): every *member* sits at ``points_per_member`` virtual
ring positions derived purely from its peer id, so any two nodes with
the same membership view compute the same ring — no coordination, no
placement gossip.  A document's replica set is the first ``k`` distinct
successors of ``H(doc_id)`` that are not its origin.

Replication is a push protocol driven from :meth:`ContentPlane.
maintenance_round`, one bounded step per gossip round:

1. For every locally-held document, compute today's replica targets
   from the members currently believed online (the same liveness
   evidence — failed contacts, T_Dead expiry, heal-on-success — the
   query plane maintains; nothing new is tracked).
2. Push ``ManifestPush`` to each unconfirmed target; its ``ManifestAck``
   lists the chunk indices it still needs, which are shipped with
   ``ChunkPush`` (each re-acked with the shrinking missing set).  An
   empty missing set confirms the replica.
3. Confirmations are remembered per (doc, holder) and *invalidated when
   the holder goes offline or drops out of the directory* — so a killed
   replica's share is automatically re-pushed to the next successor
   (the join/leave handoff).
4. A node holding a copy of a document it is no longer a target for
   (membership changed under it) drops the copy — but only after every
   current target has confirmed a complete copy, so handoff never
   passes through a window with fewer replicas.  The
   ``content.orphan_chunk_bytes`` gauge is the acceptance check: it
   must return to zero after churn.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bloom.hashing import fnv1a_64
from repro.brokerage.ring import ConsistentHashRing
from repro.constants import ContentConfig
from repro.gossip.wire import (
    ChunkPush,
    ChunkReply,
    ChunkRequest,
    ContentManifest,
    ManifestAck,
    ManifestPush,
    ManifestReply,
    ManifestRequest,
)
from repro.store.chunkstore import ChunkStore, ContentNotFound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import NetworkPeer

__all__ = ["ContentPlane", "replica_ring"]

_RING_SEED = 17


def replica_ring(member_ids: list[int], points_per_member: int = 32) -> ConsistentHashRing:
    """The content ring for a membership view.

    Deterministic across processes: positions depend only on the member
    id and point index (hash collisions are linear-probed in sorted
    member order), so every node that agrees on *who is alive* also
    agrees on *where every document's replicas live*.
    """
    ring = ConsistentHashRing()
    for member_id in sorted(set(member_ids)):
        for point in range(points_per_member):
            label = f"content:{member_id}:{point}".encode()
            pos = fnv1a_64(label, seed=_RING_SEED) % ring.max_id
            while True:  # linear-probe the (astronomically rare) collision
                try:
                    ring.add_broker(member_id, pos)
                    break
                except ValueError:
                    pos = (pos + 1) % ring.max_id
    return ring


class ContentPlane:
    """One node's half of the content protocol (see module docstring)."""

    def __init__(self, node: NetworkPeer, config: ContentConfig, store: ChunkStore) -> None:
        self.node = node
        self.config = config
        self.store = store
        #: doc id -> holder pids that have confirmed a complete copy.
        self._confirmed: dict[str, set[int]] = {}
        #: rotation cursor so bounded maintenance visits every doc fairly.
        self._cursor = 0
        #: memoised ring, keyed by the membership view that built it.
        self._ring_key: tuple[int, ...] = ()
        self._ring: ConsistentHashRing | None = None
        obs = node.obs
        self._c_pushes = obs.counter("content", "manifest_pushes_total", "ManifestPush RPCs sent")
        self._c_chunk_pushes = obs.counter("content", "chunk_pushes_total", "ChunkPush RPCs sent")
        self._c_push_failures = obs.counter(
            "content", "push_failures_total", "replication RPCs that failed"
        )
        self._c_confirmed = obs.counter(
            "content", "replicas_confirmed_total", "holders confirmed complete"
        )
        self._c_handoffs = obs.counter(
            "content",
            "handoff_repushes_total",
            "confirmations invalidated by churn (re-replication triggers)",
        )
        self._c_orphans = obs.counter(
            "content", "orphans_dropped_total", "orphaned copies garbage-collected"
        )
        self._c_orphan_bytes = obs.counter(
            "content", "orphan_bytes_freed_total", "chunk bytes freed by orphan GC"
        )
        self._c_serve_manifest = obs.counter(
            "content", "manifest_serves_total", "ManifestRequests answered"
        )
        self._c_serve_chunks = obs.counter(
            "content", "chunk_serves_total", "ChunkRequests answered with data"
        )
        self._c_recv_chunks = obs.counter(
            "content", "chunks_received_total", "chunks accepted from pushes"
        )
        self._c_chunk_rejects = obs.counter(
            "content", "chunk_rejects_total", "pushed chunks failing manifest CRC"
        )
        self._g_docs = obs.gauge("content", "docs_held", "documents with chunks held")
        self._g_bytes = obs.gauge("content", "bytes_held", "chunk bytes held")
        self._g_orphan_bytes = obs.gauge(
            "content",
            "orphan_chunk_bytes",
            "bytes held for docs this node no longer replicates (pre-GC)",
        )
        self._g_replicated = obs.gauge(
            "content",
            "docs_fully_replicated",
            "held docs whose current replica targets have all confirmed "
            "(== docs_held at the replication fixed point)",
        )
        self._update_gauges()

    # -- placement ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether this node pushes replicas (k > 0)."""
        return self.config.replicas > 0

    def _live_members(self) -> list[int]:
        """Members eligible to hold replicas: addressed and believed
        online (ourselves included) — the query plane's liveness view."""
        node = self.node
        members = [node.peer_id]
        for pid, entry in node.peer.directory.items():
            if pid != node.peer_id and entry.address and entry.online:
                members.append(pid)
        return members

    def ring(self) -> ConsistentHashRing:
        """The ring for the current liveness view (memoised per view)."""
        key = tuple(sorted(self._live_members()))
        if self._ring is None or key != self._ring_key:
            self._ring = replica_ring(list(key), self.config.points_per_member)
            self._ring_key = key
        return self._ring

    def replica_targets(self, doc_id: str, origin: int) -> list[int]:
        """The first k distinct live successors of ``doc_id``, origin
        excluded — who must hold the document right now."""
        k = self.config.replicas
        if k <= 0:
            return []
        ring = self.ring()
        successors = ring.successors_for(doc_id, k + 1)
        targets = [pid for pid in successors if pid != origin]
        return targets[:k]

    def candidate_addresses(self, doc_id: str) -> list[str]:
        """Addresses worth asking for ``doc_id``, best guesses first:
        the k+1 ring successors (a superset of any origin-excluded
        replica set), then the origin's address when we can name it."""
        node = self.node
        ring = self.ring()
        pids = ring.successors_for(doc_id, self.config.replicas + 1)
        try:
            origin = self.store.get_manifest(doc_id).origin
        except ContentNotFound:
            origin = None
        if origin is not None and origin not in pids:
            pids.append(origin)
        addresses = []
        for pid in pids:
            if pid == node.peer_id:
                if node.address:
                    addresses.append(node.address)
                continue
            entry = node.peer.directory.get(pid)
            if entry is not None and entry.address:
                addresses.append(entry.address)
        return addresses

    def holder_addresses(self, doc_id: str) -> tuple[str, ...]:
        """What a ManifestReply advertises (capped candidate list)."""
        return tuple(self.candidate_addresses(doc_id)[: self.config.max_advertised_holders])

    # -- local publishes ----------------------------------------------------

    def add_local(self, doc_id: str, data: bytes) -> ContentManifest:
        """Chunk a locally-published document (the publish hook)."""
        manifest = self.store.ingest(doc_id, self.node.peer_id, data, self.config.chunk_size)
        self._confirmed[doc_id] = set()
        self._update_gauges()
        return manifest

    def remove_local(self, doc_id: str) -> None:
        """Forget a document (unpublish path)."""
        self.store.remove_doc(doc_id)
        self._confirmed.pop(doc_id, None)
        self._update_gauges()

    # -- replication (initiator side) ---------------------------------------

    async def maintenance_round(self) -> None:
        """One bounded replication/handoff/GC step (per gossip round)."""
        if not self.active:
            self._update_gauges()
            return
        self._invalidate_confirmations()
        doc_ids = self.store.doc_ids()
        if doc_ids:
            start = self._cursor % len(doc_ids)
            rotation = doc_ids[start:] + doc_ids[:start]
            self._cursor += 1
            budget = self.config.push_docs_per_round
            for doc_id in rotation:
                if budget <= 0:
                    break
                if await self._maintain_doc(doc_id):
                    budget -= 1
        self._update_gauges()

    def _invalidate_confirmations(self) -> None:
        """Drop confirmations for holders no longer alive — the handoff
        trigger.  Reuses the directory's liveness evidence directly."""
        node = self.node
        for doc_id, holders in self._confirmed.items():
            gone = set()
            for pid in holders:
                entry = node.peer.directory.get(pid)
                if entry is None or not entry.online or not entry.address:
                    gone.add(pid)
            if gone:
                holders -= gone
                self._c_handoffs.inc(len(gone))
                node.obs.emit("content_handoff", peer=node.peer_id, doc=doc_id, lost=len(gone))

    async def _maintain_doc(self, doc_id: str) -> bool:
        """Bring one document's replica set up to date.  Returns True if
        any RPC work was done (it counted against the round budget)."""
        try:
            manifest = self.store.get_manifest(doc_id)
        except ContentNotFound:
            return False
        targets = self.replica_targets(doc_id, manifest.origin)
        if not self.store.is_complete(doc_id):
            # Only targets receive pushes, so an incomplete copy held by
            # a non-target can never be completed — drop it immediately
            # (it was never a countable replica; nothing is lost).
            if manifest.origin != self.node.peer_id and self.node.peer_id not in targets:
                self._drop_copy(manifest.doc_id)
            return False
        confirmed = self._confirmed.setdefault(doc_id, set())
        worked = False
        for pid in targets:
            if pid == self.node.peer_id or pid in confirmed:
                continue
            worked = True
            if await self.replicate_to(pid, manifest):
                confirmed.add(pid)
        self._maybe_drop_orphan(manifest, targets, confirmed)
        return worked

    async def replicate_to(self, pid: int, manifest: ContentManifest) -> bool:
        """Push one document to one holder until it confirms completeness."""
        node = self.node
        doc_id = manifest.doc_id
        self._c_pushes.inc()
        ack = await node._request_peer(pid, ManifestPush(manifest))
        if not isinstance(ack, ManifestAck) or not ack.accepted:
            self._c_push_failures.inc()
            return False
        missing = ack.missing
        for index in missing:
            try:
                data = self.store.get_chunk(doc_id, index)
            except ContentNotFound:
                self._c_push_failures.inc()
                return False
            self._c_chunk_pushes.inc()
            ack = await node._request_peer(pid, ChunkPush(doc_id, index, data))
            if not isinstance(ack, ManifestAck) or not ack.accepted:
                self._c_push_failures.inc()
                return False
        if isinstance(ack, ManifestAck) and not ack.missing:
            self._c_confirmed.inc()
            node.obs.emit("replica_confirmed", peer=node.peer_id, doc=doc_id, holder=pid)
            return True
        self._c_push_failures.inc()
        return False

    def _maybe_drop_orphan(
        self, manifest: ContentManifest, targets: list[int], confirmed: set[int]
    ) -> None:
        """GC our copy once we are neither origin nor target — but only
        after every *current* target confirmed a complete copy, so a
        handoff never dips below k replicas."""
        node = self.node
        doc_id = manifest.doc_id
        if manifest.origin == node.peer_id or node.peer_id in targets:
            return
        others = [pid for pid in targets if pid != node.peer_id]
        if not others or any(pid not in confirmed for pid in others):
            return
        self._drop_copy(doc_id)

    def _drop_copy(self, doc_id: str) -> None:
        freed = self.store.remove_doc(doc_id)
        self._confirmed.pop(doc_id, None)
        self._c_orphans.inc()
        self._c_orphan_bytes.inc(freed)
        self.node.obs.emit(
            "content_orphan_dropped", peer=self.node.peer_id, doc=doc_id, bytes=freed
        )

    # -- server side --------------------------------------------------------

    def on_manifest_request(self, msg: ManifestRequest) -> ManifestReply:
        """Serve a manifest lookup; advertises known holders either way."""
        holders = self.holder_addresses(msg.doc_id)
        try:
            manifest = self.store.get_manifest(msg.doc_id)
        except ContentNotFound:
            # Still advertise where the doc *would* live: a directory-less
            # client can hop to the replica set through any member.
            return ManifestReply(False, None, holders)
        self._c_serve_manifest.inc()
        return ManifestReply(True, manifest, holders)

    def on_chunk_request(self, msg: ChunkRequest) -> ChunkReply:
        """Serve one chunk from ``msg.offset``, capped at max_reply_bytes."""
        try:
            data = self.store.get_chunk(msg.doc_id, msg.index)
        except ContentNotFound:
            return ChunkReply(False, msg.doc_id, msg.index, msg.offset, 0, b"")
        total = len(data)
        offset = min(max(msg.offset, 0), total)
        window = data[offset : offset + self.config.max_reply_bytes]
        self._c_serve_chunks.inc()
        return ChunkReply(True, msg.doc_id, msg.index, offset, total, window)

    def on_manifest_push(self, msg: ManifestPush) -> ManifestAck:
        """Accept a replication offer; the ack lists chunks still missing."""
        manifest = msg.manifest
        try:
            self.store.put_manifest(manifest)
        except (OSError, ValueError):
            return ManifestAck(manifest.doc_id, False, ())
        self._confirmed.setdefault(manifest.doc_id, set())
        missing = self.store.missing_chunks(manifest.doc_id)
        self._update_gauges()
        return ManifestAck(manifest.doc_id, True, missing)

    def on_chunk_push(self, msg: ChunkPush) -> ManifestAck:
        """Store one pushed chunk and report what is still missing."""
        if not self.store.has_manifest(msg.doc_id):
            # Chunk before manifest (e.g. we restarted mid-push): ask the
            # pusher to restart from ManifestPush.
            return ManifestAck(msg.doc_id, False, ())
        try:
            self.store.put_chunk(msg.doc_id, msg.index, msg.data)
        except ValueError:
            self._c_chunk_rejects.inc()
        except OSError:
            return ManifestAck(msg.doc_id, False, ())
        else:
            self._c_recv_chunks.inc()
        missing = self.store.missing_chunks(msg.doc_id)
        self._update_gauges()
        return ManifestAck(msg.doc_id, True, missing)

    # -- observability ------------------------------------------------------

    def orphan_bytes(self) -> int:
        """Bytes held for docs we are neither origin nor target of."""
        if not self.active:
            return 0
        total = 0
        for doc_id in self.store.doc_ids():
            try:
                manifest = self.store.get_manifest(doc_id)
            except ContentNotFound:
                continue
            if manifest.origin == self.node.peer_id:
                continue
            if self.node.peer_id in self.replica_targets(doc_id, manifest.origin):
                continue
            total += self.store.bytes_held(doc_id)
        return total

    def fully_replicated_docs(self) -> int:
        """Held docs whose current targets have all confirmed a copy.

        At the replication fixed point this equals ``docs_held`` on every
        node — the outside-in signal fleet runs gate on before injecting
        churn (a doc killed with its origin before reaching the fixed
        point would be unrecoverable).
        """
        count = 0
        for doc_id in self.store.doc_ids():
            try:
                manifest = self.store.get_manifest(doc_id)
            except ContentNotFound:
                continue
            targets = self.replica_targets(doc_id, manifest.origin) if self.active else []
            confirmed = self._confirmed.get(doc_id, set())
            if all(pid == self.node.peer_id or pid in confirmed for pid in targets):
                count += 1
        return count

    def _update_gauges(self) -> None:
        doc_ids = self.store.doc_ids()
        self._g_docs.set(len(doc_ids))
        self._g_bytes.set(sum(self.store.bytes_held(d) for d in doc_ids))
        self._g_orphan_bytes.set(self.orphan_bytes())
        self._g_replicated.set(self.fully_replicated_docs())
