"""The retrieval client: doc id → manifest → replica set → bytes.

A :class:`ContentClient` is address-based and directory-less — it works
from any process that can open a socket (the ``python -m repro.net get``
path), not just from a member node.  Resolution hops through the
community: any member answers a :class:`~repro.gossip.wire.
ManifestRequest` with the *holders* it would try (the doc's ring
successors), so starting from one bootstrap address the client reaches
the replica set even when the first peers asked hold nothing.

Downloads are paced and fault-tolerant:

* per-peer in-flight is bounded by a :class:`~repro.serve.scheduler.
  PeerGate` (addresses hash to gate keys), with an overall
  ``max_parallel_chunks`` cap on top;
* every RPC runs under ``request_timeout_s``; a slow or dead replica
  forfeits the chunk to the next holder instead of stalling the fetch;
* a chunk larger than the server's reply window arrives in
  resume-from-offset pieces — and the partial buffer survives a replica
  fallback mid-chunk, because the manifest CRC pins every holder to
  byte-identical content;
* each chunk is CRC-checked and the assembled document SHA-256-checked
  against the manifest before :meth:`ContentClient.fetch` returns.

Exhausting every holder raises :class:`~repro.store.chunkstore.
ContentNotFound`.
"""

from __future__ import annotations

import asyncio
import hashlib
import zlib
from collections.abc import Sequence
from typing import Protocol

from repro.bloom.hashing import fnv1a_64
from repro.gossip.wire import (
    ChunkReply,
    ChunkRequest,
    ContentManifest,
    ManifestReply,
    ManifestRequest,
)
from repro.net import codec
from repro.net.codec import CodecError
from repro.net.transport import TransportError
from repro.obs import Registry, global_registry
from repro.serve.scheduler import PeerGate
from repro.store.chunkstore import ContentNotFound, chunk_bounds

__all__ = ["ContentClient", "TransportLike"]


class TransportLike(Protocol):
    """Anything that can round-trip a frame to an address."""

    async def request(self, address: str, body: bytes) -> bytes:
        """Send ``body`` to ``address``; return the reply frame."""
        ...


class ContentClient:
    """Fetches documents from a community's content plane by address."""

    def __init__(
        self,
        transport: TransportLike,
        *,
        per_peer_inflight: int = 4,
        request_timeout_s: float = 5.0,
        max_parallel_chunks: int = 8,
        max_resolve_hops: int = 8,
        registry: Registry | None = None,
    ) -> None:
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if max_parallel_chunks < 1:
            raise ValueError("max_parallel_chunks must be >= 1")
        if max_resolve_hops < 1:
            raise ValueError("max_resolve_hops must be >= 1")
        self.transport = transport
        self.request_timeout_s = request_timeout_s
        self.max_resolve_hops = max_resolve_hops
        self.gate = PeerGate(per_peer_inflight)
        self._parallel = asyncio.Semaphore(max_parallel_chunks)
        self.obs = registry if registry is not None else global_registry()
        self._c_fetches = self.obs.counter("content_client", "fetches_total", "documents fetched")
        self._c_fetch_failures = self.obs.counter(
            "content_client", "fetch_failures_total", "fetches that exhausted holders"
        )
        self._c_chunk_rpcs = self.obs.counter(
            "content_client", "chunk_rpcs_total", "ChunkRequests issued"
        )
        self._c_fallbacks = self.obs.counter(
            "content_client",
            "replica_fallbacks_total",
            "chunk sources abandoned for the next holder",
        )
        self._c_resumes = self.obs.counter(
            "content_client",
            "chunk_resumes_total",
            "resume-from-offset continuation requests",
        )
        self._c_crc_rejects = self.obs.counter(
            "content_client", "crc_rejects_total", "chunks discarded on CRC mismatch"
        )

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    def _gate_key(address: str) -> int:
        """PeerGate keys are ints; a directory-less client keys by address."""
        return fnv1a_64(address.encode("utf-8"), seed=23)

    async def _rpc(self, address: str, msg: object) -> object | None:
        """One bounded, gated RPC; None on timeout/transport/codec error."""
        async with self.gate.slot(self._gate_key(address)):
            try:
                request = self.transport.request(address, codec.encode(msg))
                body = await asyncio.wait_for(request, self.request_timeout_s)
                return codec.decode(body)
            except (asyncio.TimeoutError, TransportError, CodecError):
                return None

    # -- manifest resolution ------------------------------------------------

    async def resolve(
        self, addresses: Sequence[str], doc_id: str
    ) -> tuple[ContentManifest, list[str]]:
        """Find a manifest for ``doc_id``, hopping through advertised
        holders.  Returns the manifest plus holder addresses to try
        first (peers that answered "found" lead the list)."""
        queue = list(dict.fromkeys(addresses))
        visited: set[str] = set()
        manifest: ContentManifest | None = None
        holders: list[str] = []
        hops = 0
        while queue and hops < self.max_resolve_hops:
            address = queue.pop(0)
            if address in visited:
                continue
            visited.add(address)
            hops += 1
            reply = await self._rpc(address, ManifestRequest(doc_id))
            if not isinstance(reply, ManifestReply):
                continue
            for advertised in reply.holders:
                if advertised not in visited and advertised not in queue:
                    queue.append(advertised)
            if reply.found and reply.manifest is not None:
                if manifest is None:
                    manifest = reply.manifest
                if reply.manifest == manifest:
                    holders.append(address)
        if manifest is None:
            raise ContentNotFound(doc_id, "no reachable holder has a manifest")
        # Confirmed holders first, then the rest of the frontier to fall
        # back on (they may have chunks even if we never asked them).
        for address in visited | set(queue):
            if address not in holders:
                holders.append(address)
        return manifest, holders

    # -- chunk download -----------------------------------------------------

    async def _fetch_chunk(
        self, manifest: ContentManifest, index: int, sources: Sequence[str]
    ) -> bytes:
        """One chunk from any source, resuming partial transfers.

        The resume buffer survives a source switch: every holder serves
        byte-identical content (CRC-pinned by the manifest), so bytes
        already verified-in-flight need not be re-fetched.
        """
        doc_id = manifest.doc_id
        start, end = chunk_bounds(manifest.total_size, manifest.chunk_size, index)
        want = end - start
        buf = bytearray()
        # Rotate the starting source by chunk index so a multi-chunk
        # fetch spreads load across the replica set.
        order = [sources[(index + i) % len(sources)] for i in range(len(sources))]
        for address in order:
            while len(buf) < want:
                if buf:
                    self._c_resumes.inc()
                self._c_chunk_rpcs.inc()
                reply = await self._rpc(address, ChunkRequest(doc_id, index, len(buf)))
                if (
                    not isinstance(reply, ChunkReply)
                    or not reply.found
                    or reply.index != index
                    or reply.offset != len(buf)
                    or reply.total != want
                    or not reply.data
                ):
                    self._c_fallbacks.inc()
                    break  # next replica; keep the verified prefix
                buf += reply.data
            if len(buf) == want:
                if zlib.crc32(bytes(buf)) == manifest.chunk_crcs[index]:
                    return bytes(buf)
                # Corrupt end-to-end: restart the chunk from scratch on
                # the next holder (the prefix can no longer be trusted).
                self._c_crc_rejects.inc()
                buf.clear()
        raise ContentNotFound(doc_id, f"chunk {index}: all holders exhausted")

    async def fetch(self, addresses: Sequence[str], doc_id: str) -> bytes:
        """Retrieve ``doc_id``, verified byte-for-byte against its manifest.

        ``addresses`` seed the resolution (any community members);
        chunks then stream from whichever holders respond.  Raises
        :class:`ContentNotFound` when no complete, digest-valid copy is
        reachable.
        """
        if not addresses:
            raise ContentNotFound(doc_id, "no addresses to ask")
        manifest, holders = await self.resolve(addresses, doc_id)
        if manifest.num_chunks == 0:
            data = b""
        else:

            async def bounded(index: int) -> bytes:
                async with self._parallel:
                    return await self._fetch_chunk(manifest, index, holders)

            try:
                chunks = await asyncio.gather(*(bounded(i) for i in range(manifest.num_chunks)))
            except ContentNotFound:
                self._c_fetch_failures.inc()
                raise
            data = b"".join(chunks)
        if hashlib.sha256(data).digest() != manifest.digest:
            self._c_fetch_failures.inc()
            raise ContentNotFound(doc_id, "assembled document fails manifest digest")
        self._c_fetches.inc()
        return data
