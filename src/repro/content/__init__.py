"""repro.content — the wire-level content plane.

Search (:mod:`repro.net.client`) returns ranked doc ids; this package
moves the *bytes*.  Three pieces, layered on :class:`~repro.net.node.
NetworkPeer` and the shared wire inventory
(:data:`repro.gossip.wire.CONTENT_MESSAGES`):

``ContentPlane``   the node-side half: chunks every published document
                   into a crash-safe :class:`~repro.store.chunkstore.
                   ChunkStore`, k-way replicates it to its consistent-
                   hash ring successors, re-replicates on join/leave
                   (reusing the query plane's liveness evidence), and
                   garbage-collects orphaned copies after handoff.
``ContentClient``  the retrieval half: resolve doc id → manifest →
                   replica set, download chunks with bounded per-peer
                   in-flight (:class:`~repro.serve.scheduler.PeerGate`),
                   resume from the last verified byte offset, and fall
                   back across replicas on timeout.
``replica_ring``   the deterministic placement everyone agrees on:
                   members at virtual ring points, a document's replicas
                   = the first k distinct successors of ``H(doc_id)``
                   excluding its origin.

See DESIGN.md §13 for the protocol walkthrough.
"""

from repro.content.plane import ContentPlane, replica_ring
from repro.content.retrieval import ContentClient
from repro.store.chunkstore import ChunkStore, ContentNotFound, build_manifest

__all__ = [
    "ChunkStore",
    "ContentClient",
    "ContentNotFound",
    "ContentPlane",
    "build_manifest",
    "replica_ring",
]
