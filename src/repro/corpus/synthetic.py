"""Topic-model corpus generator.

Documents are generated from a mixture of a shared Zipf "background"
vocabulary and one topic-specific vocabulary; queries ask for a topic's
most characteristic terms and are judged relevant exactly to that topic's
documents.  The generator is fully vectorized (one categorical draw per
document batch) so AP89-scale corpora (~85 K documents) are practical.

Design notes
------------
* Words are synthetic strings over consonant-vowel syllables, so they
  survive tokenization unchanged; corpora are typically indexed with
  ``Analyzer(remove_stopwords=False, stem=False)`` to keep term identity
  exact (documented in DESIGN.md — the analyzer path is exercised by its
  own tests and the PFS/example flows with English text).
* ``f_{D,t}`` statistics follow a Zipf law within each vocabulary, giving
  TF×IDF realistic discrimination behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.queries import Query
from repro.text.document import Document
from repro.utils.distributions import sample_categorical, zipf_pmf
from repro.utils.rng import make_rng

__all__ = ["TopicModel", "SyntheticCollection", "generate_collection", "make_vocabulary"]

_CONSONANTS = "bcdfghjklmnprstvz"
_VOWELS = "aeiou"


def make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Generate ``size`` distinct pronounceable pseudo-words.

    Words are 3-5 syllables, length >= 6, so none collide with stop words
    and all pass the tokenizer's length filter.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    words: list[str] = []
    seen: set[str] = set()
    # Draw in vectorized batches; retry loop handles collisions.
    while len(words) < size:
        need = size - len(words)
        syllables = rng.integers(3, 6, size=need)
        cons = rng.integers(0, len(_CONSONANTS), size=(need, 5))
        vows = rng.integers(0, len(_VOWELS), size=(need, 5))
        for i in range(need):
            n = int(syllables[i])
            word = "".join(
                _CONSONANTS[cons[i, j]] + _VOWELS[vows[i, j]] for j in range(n)
            )
            if word not in seen:
                seen.add(word)
                words.append(word)
    return words


@dataclass
class TopicModel:
    """Generative model: shared background + per-topic vocabularies."""

    vocabulary: list[str]
    background_pmf: np.ndarray  # over all of `vocabulary`
    topic_word_ids: list[np.ndarray]  # per topic: indices into vocabulary
    topic_pmfs: list[np.ndarray]  # per topic: pmf over its word ids
    topic_mix: float  # probability a token is drawn from the topic

    @property
    def num_topics(self) -> int:
        """Number of topics."""
        return len(self.topic_word_ids)

    def sample_document_terms(
        self, topic: int, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Vocabulary indices of one document's tokens."""
        if not 0 <= topic < self.num_topics:
            raise ValueError("topic out of range")
        if length <= 0:
            raise ValueError("length must be positive")
        from_topic = rng.random(length) < self.topic_mix
        n_topic = int(from_topic.sum())
        out = np.empty(length, dtype=np.int64)
        if n_topic:
            local = sample_categorical(self.topic_pmfs[topic], n_topic, rng)
            out[from_topic] = self.topic_word_ids[topic][local]
        n_bg = length - n_topic
        if n_bg:
            out[~from_topic] = sample_categorical(self.background_pmf, n_bg, rng)
        return out

    def topic_signature(self, topic: int, num_terms: int) -> list[str]:
        """The ``num_terms`` highest-probability words of ``topic``."""
        order = np.argsort(self.topic_pmfs[topic])[::-1][:num_terms]
        return [self.vocabulary[i] for i in self.topic_word_ids[topic][order]]


@dataclass
class SyntheticCollection:
    """A generated corpus: documents, queries, and provenance."""

    name: str
    documents: list[Document]
    queries: list[Query]
    vocabulary_size: int
    doc_topics: np.ndarray = field(repr=False)  # primary topic per document

    @property
    def num_documents(self) -> int:
        """Number of documents."""
        return len(self.documents)

    @property
    def num_queries(self) -> int:
        """Number of queries."""
        return len(self.queries)

    def total_text_bytes(self) -> int:
        """Approximate collection size in bytes (sum of document texts)."""
        return sum(len(d.text) for d in self.documents)


def generate_collection(
    name: str,
    num_documents: int,
    vocabulary_size: int,
    num_queries: int,
    mean_doc_length: int = 150,
    num_topics: int | None = None,
    topic_vocab_size: int | None = None,
    topic_mix: float = 0.45,
    query_terms: tuple[int, int] = (2, 5),
    zipf_exponent: float = 1.05,
    judgment_recall: float = 1.0,
    distractor_prob: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> SyntheticCollection:
    """Generate a corpus with ground-truth relevance.

    Parameters
    ----------
    num_documents, vocabulary_size, num_queries:
        Match these to a real collection's Table 3 row.
    mean_doc_length:
        Mean token count per document (document lengths are lognormal).
    num_topics:
        Defaults to enough topics that each has ~40 documents, capped so
        every query topic has at least a handful of relevant documents.
    topic_vocab_size:
        Words in each topic's specific vocabulary (drawn from the global
        vocabulary without replacement per topic).
    topic_mix:
        Fraction of a document's tokens drawn from its topic vocabulary.
    query_terms:
        Inclusive (min, max) number of terms per query.
    judgment_recall:
        Fraction of a query topic's documents judged relevant (sampled).
        Real assessor judgments are incomplete; values below 1.0 make
        measured precision imperfect even for a perfect ranker, as with
        the human-judged Smart/TREC traces.
    distractor_prob:
        Probability that a query picks one of its terms from a *different*
        topic's signature — queries then straddle topics, blurring the
        relevance boundary like ambiguous real-world queries do.
    seed:
        Integer seed or generator for full determinism.
    """
    if num_documents <= 0 or vocabulary_size <= 0 or num_queries < 0:
        raise ValueError("counts must be positive (queries may be zero)")
    if not 0.0 < topic_mix < 1.0:
        raise ValueError("topic_mix must be in (0, 1)")
    if not 0.0 < judgment_recall <= 1.0:
        raise ValueError("judgment_recall must be in (0, 1]")
    if not 0.0 <= distractor_prob <= 1.0:
        raise ValueError("distractor_prob must be a probability")
    rng = make_rng(seed)

    if num_topics is None:
        num_topics = int(np.clip(num_documents // 40, 10, 400))
    num_topics = min(num_topics, num_documents)
    if topic_vocab_size is None:
        topic_vocab_size = max(20, vocabulary_size // (num_topics * 2))
    topic_vocab_size = min(topic_vocab_size, vocabulary_size)

    vocabulary = make_vocabulary(vocabulary_size, rng)
    background_pmf = zipf_pmf(vocabulary_size, zipf_exponent)

    topic_word_ids: list[np.ndarray] = []
    topic_pmfs: list[np.ndarray] = []
    topic_pmf_template = zipf_pmf(topic_vocab_size, zipf_exponent)
    for _ in range(num_topics):
        ids = rng.choice(vocabulary_size, size=topic_vocab_size, replace=False)
        topic_word_ids.append(np.asarray(ids, dtype=np.int64))
        topic_pmfs.append(topic_pmf_template)
    model = TopicModel(
        vocabulary=vocabulary,
        background_pmf=background_pmf,
        topic_word_ids=topic_word_ids,
        topic_pmfs=topic_pmfs,
        topic_mix=topic_mix,
    )

    # Document topics and lengths.
    doc_topics = rng.integers(0, num_topics, size=num_documents)
    lengths = np.maximum(
        5, rng.lognormal(np.log(mean_doc_length), 0.5, size=num_documents)
    ).astype(np.int64)

    documents: list[Document] = []
    for i in range(num_documents):
        term_ids = model.sample_document_terms(int(doc_topics[i]), int(lengths[i]), rng)
        text = " ".join(vocabulary[t] for t in term_ids)
        documents.append(
            Document(
                doc_id=f"{name}-doc-{i:06d}",
                text=text,
                metadata={"topic": int(doc_topics[i])},
            )
        )

    # Queries: pick a topic, sample terms from its signature.
    queries: list[Query] = []
    docs_by_topic: dict[int, list[str]] = {}
    for doc, topic in zip(documents, doc_topics):
        docs_by_topic.setdefault(int(topic), []).append(doc.doc_id)
    populated_topics = sorted(docs_by_topic)
    lo, hi = query_terms
    if lo < 1 or hi < lo:
        raise ValueError("query_terms must satisfy 1 <= min <= max")
    for q in range(num_queries):
        topic = int(populated_topics[int(rng.integers(0, len(populated_topics)))])
        n_terms = int(rng.integers(lo, hi + 1))
        # Sample without replacement from the topic's 3*n most characteristic
        # words, so queries vary but stay discriminative.
        signature = model.topic_signature(topic, max(3 * n_terms, 8))
        chosen = rng.choice(len(signature), size=min(n_terms, len(signature)), replace=False)
        terms = [signature[int(c)] for c in chosen]
        if distractor_prob > 0.0 and rng.random() < distractor_prob and num_topics > 1:
            other = int(rng.integers(0, num_topics))
            if other != topic:
                terms[-1] = model.topic_signature(other, 8)[int(rng.integers(0, 8))]
        relevant = docs_by_topic[topic]
        if judgment_recall < 1.0 and len(relevant) > 1:
            keep = max(1, int(round(judgment_recall * len(relevant))))
            idx = rng.choice(len(relevant), size=keep, replace=False)
            relevant = [relevant[int(i)] for i in idx]
        queries.append(
            Query(
                query_id=f"{name}-q-{q:04d}",
                terms=tuple(dict.fromkeys(terms)),
                relevant=frozenset(relevant),
            )
        )

    return SyntheticCollection(
        name=name,
        documents=documents,
        queries=queries,
        vocabulary_size=vocabulary_size,
        doc_topics=doc_topics,
    )
