"""Presets matching the paper's Table 3 collections.

===== ======= ========= ============= =====================
Trace Queries Documents Number of words Collection size (MB)
===== ======= ========= ============= =====================
CACM  52      3204      75493          2.1
MED   30      1033      83451          1.0
CRAN  152     1400      117718         1.6
CISI  76      1460      84957          2.4
AP89  97      84678     129603         266.0
===== ======= ========= ============= =====================

``make_collection`` regenerates a synthetic stand-in for any preset; a
``scale`` argument shrinks document count (and queries/vocabulary
proportionally, floored at useful minimums) for fast test/bench runs while
preserving the corpus shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.synthetic import SyntheticCollection, generate_collection

__all__ = ["CollectionSpec", "COLLECTION_PRESETS", "make_collection", "collection_table_rows"]


@dataclass(frozen=True)
class CollectionSpec:
    """Published statistics of one benchmark collection (Table 3)."""

    name: str
    num_queries: int
    num_documents: int
    num_words: int
    size_mb: float

    def mean_doc_length(self) -> int:
        """Approximate mean tokens/document implied by size and count.

        Assumes ~6.5 bytes per token (5.5-char synthetic word + space).
        """
        bytes_per_doc = self.size_mb * 1_000_000 / self.num_documents
        return max(20, int(bytes_per_doc / 6.5))


COLLECTION_PRESETS: dict[str, CollectionSpec] = {
    "CACM": CollectionSpec("CACM", 52, 3204, 75_493, 2.1),
    "MED": CollectionSpec("MED", 30, 1033, 83_451, 1.0),
    "CRAN": CollectionSpec("CRAN", 152, 1400, 117_718, 1.6),
    "CISI": CollectionSpec("CISI", 76, 1460, 84_957, 2.4),
    "AP89": CollectionSpec("AP89", 97, 84_678, 129_603, 266.0),
}


def make_collection(
    name: str, scale: float = 1.0, seed: int = 0
) -> SyntheticCollection:
    """Generate the synthetic stand-in for preset ``name``.

    ``scale`` in (0, 1] shrinks documents/queries/vocabulary
    proportionally; ``scale=1`` reproduces the full Table 3 statistics.
    """
    try:
        spec = COLLECTION_PRESETS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown collection {name!r}; choose from {sorted(COLLECTION_PRESETS)}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    num_docs = max(50, int(spec.num_documents * scale))
    num_queries = max(10, int(spec.num_queries * min(1.0, scale * 2)))
    vocab = max(2_000, int(spec.num_words * scale))
    mean_len = spec.mean_doc_length()
    return generate_collection(
        name=spec.name,
        num_documents=num_docs,
        vocabulary_size=vocab,
        num_queries=num_queries,
        mean_doc_length=mean_len,
        seed=seed,
    )


def collection_table_rows(
    names: list[str] | None = None, scale: float = 1.0, seed: int = 0
) -> list[dict[str, object]]:
    """Regenerate Table 3: per-collection characteristics, paper vs ours.

    Returns one dict per collection with the paper's published numbers and
    the generated corpus' measured numbers side by side.
    """
    rows: list[dict[str, object]] = []
    for name in names or sorted(COLLECTION_PRESETS):
        spec = COLLECTION_PRESETS[name.upper()]
        coll = make_collection(name, scale=scale, seed=seed)
        distinct = len({t for d in coll.documents for t in d.text.split()})
        rows.append(
            {
                "trace": spec.name,
                "paper_queries": spec.num_queries,
                "paper_documents": spec.num_documents,
                "paper_words": spec.num_words,
                "paper_size_mb": spec.size_mb,
                "gen_queries": coll.num_queries,
                "gen_documents": coll.num_documents,
                "gen_distinct_words": distinct,
                "gen_size_mb": round(coll.total_text_bytes() / 1_000_000, 2),
            }
        )
    return rows
