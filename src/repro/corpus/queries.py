"""Query model with relevance judgments.

Mirrors the Smart/TREC trace format conceptually: a query is a small set of
terms plus the set of documents human assessors judged relevant.  In our
synthetic corpora the "assessor" is the generator itself (topic identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A benchmark query.

    Attributes
    ----------
    query_id:
        Unique id within its collection.
    terms:
        The query's terms (already analyzed; deduplicated, ordered).
    relevant:
        The ids of the documents judged relevant to the query.
    """

    query_id: str
    terms: tuple[str, ...]
    relevant: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.query_id:
            raise ValueError("query_id must be non-empty")
        if not self.terms:
            raise ValueError("a query needs at least one term")

    @property
    def text(self) -> str:
        """The query rendered as white-space separated keys (Section 5.1)."""
        return " ".join(self.terms)

    def __len__(self) -> int:
        return len(self.terms)
