"""Synthetic document collections with relevance judgments.

The paper evaluates search quality on five collections (CACM, MED, CRAN,
CISI from Smart; AP89 from TREC — Table 3).  Those corpora are not
redistributable, so this subpackage generates topic-model corpora that
match each collection's published statistics (document count, vocabulary
size, query count, average document size) and come with ground-truth
relevance judgments (a query is about a topic; relevant documents are the
ones generated from that topic).  This preserves the property Figure 6
measures: whether IPF-based peer ranking plus adaptive stopping tracks
centralized TF×IDF recall/precision.
"""

from repro.corpus.synthetic import SyntheticCollection, TopicModel, generate_collection
from repro.corpus.collections import (
    COLLECTION_PRESETS,
    CollectionSpec,
    collection_table_rows,
    make_collection,
)
from repro.corpus.partition import partition_documents
from repro.corpus.queries import Query

__all__ = [
    "SyntheticCollection",
    "TopicModel",
    "generate_collection",
    "COLLECTION_PRESETS",
    "CollectionSpec",
    "collection_table_rows",
    "make_collection",
    "partition_documents",
    "Query",
]
