"""Distributing documents across peers.

The paper's search simulator "first distributes documents across a set of
virtual peers ... following a Weibull function, which is motivated by
observing current P2P file-sharing communities" (Section 7.3); a uniform
distribution is the comparison case studied in their companion report.
"""

from __future__ import annotations

import numpy as np

from repro.utils.distributions import sample_categorical, weibull_weights
from repro.utils.rng import make_rng

__all__ = ["partition_documents"]


def partition_documents(
    num_documents: int,
    num_peers: int,
    distribution: str = "weibull",
    shape: float = 0.7,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Assign document indices to peers.

    Parameters
    ----------
    distribution:
        ``"weibull"`` (paper default; heavy skew) or ``"uniform"``.
    shape:
        Weibull shape parameter; < 1 gives the P2P-like skew.

    Returns
    -------
    A list of ``num_peers`` sorted index arrays partitioning
    ``range(num_documents)``.  Peers may be empty under the Weibull law,
    exactly as real free-riding peers share nothing.
    """
    if num_documents < 0:
        raise ValueError("num_documents must be non-negative")
    if num_peers <= 0:
        raise ValueError("num_peers must be positive")
    rng = make_rng(seed)
    if distribution == "weibull":
        weights = weibull_weights(num_peers, shape=shape, rng=rng)
        owners = sample_categorical(weights, num_documents, rng)
    elif distribution == "uniform":
        owners = rng.integers(0, num_peers, size=num_documents)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    assignment: list[np.ndarray] = []
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    boundaries = np.searchsorted(sorted_owners, np.arange(num_peers + 1))
    for p in range(num_peers):
        assignment.append(np.sort(order[boundaries[p] : boundaries[p + 1]]))
    return assignment
