"""ASCII rendering of figure series.

The experiment harness regenerates the paper's figures as data series;
this module draws them as terminal line/scatter charts so a
``planetp-experiments fig2 --plot`` run visually resembles the published
figure, no plotting library required.

The renderer maps each series to a glyph, bins points onto a
width x height character grid (linear or log x axis), and frames the grid
with axis labels and a legend.
"""

from __future__ import annotations

import math

from repro.experiments.common import Series

__all__ = ["plot_series", "GLYPHS"]

#: Series glyphs, assigned in order.
GLYPHS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    """Map ``value`` in [lo, hi] to a grid index in [0, steps-1]."""
    if hi <= lo:
        return 0
    if log:
        value, lo, hi = math.log10(max(value, 1e-12)), math.log10(max(lo, 1e-12)), math.log10(hi)
        if hi <= lo:
            return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(frac * (steps - 1)))))


def plot_series(
    series_list: list[Series],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render series as an ASCII chart.

    Parameters
    ----------
    width, height:
        Plot-area size in characters (exclusive of the frame).
    log_x:
        Use a log10 x axis (community-size sweeps look linear this way,
        matching the paper's log-scaled Figure 2 axis).
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    populated = [s for s in series_list if len(s)]
    if not populated:
        raise ValueError("nothing to plot")
    if len(populated) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")

    all_x = [x for s in populated for x in s.xs]
    all_y = [y for s in populated for y in s.ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:  # flat lines still need a band to sit in
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, s in zip(GLYPHS, populated):
        for x, y in zip(s.xs, s.ys):
            col = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, False)
            # First-drawn series keeps contested cells (stable overlap).
            if grid[row][col] == " ":
                grid[row][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_txt, y_lo_txt = f"{y_hi:.4g}", f"{y_lo:.4g}"
    margin = max(len(y_hi_txt), len(y_lo_txt)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_txt.rjust(margin - 1)
        elif i == height - 1:
            label = y_lo_txt.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * margin + "-" * width)
    x_lo_txt, x_hi_txt = f"{x_lo:.4g}", f"{x_hi:.4g}"
    gap = width - len(x_lo_txt) - len(x_hi_txt)
    lines.append(" " * margin + x_lo_txt + " " * max(1, gap) + x_hi_txt)
    axis_note = f"{x_label}{' (log)' if log_x else ''} vs {y_label}"
    legend = "  ".join(
        f"{glyph}={s.label}" for glyph, s in zip(GLYPHS, populated)
    )
    lines.append(f"{' ' * margin}{axis_note}   {legend}")
    return "\n".join(lines)
