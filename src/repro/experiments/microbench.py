"""Table 1: micro-benchmarks of PlanetP's basic operations.

The paper reports each cost as *fixed overhead + marginal per-key cost*
(e.g. Bloom filter insertion: ``4 + 0.011n`` ms after JIT).  We time the
same six operations at several key counts and fit the same linear model.
Absolute milliseconds differ (Python on modern hardware vs Java on an
800 MHz PIII); the deliverable is the cost *model* and its shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bloom.compress import compress_filter, decompress_filter
from repro.bloom.filter import BloomFilter
from repro.text.invindex import InvertedIndex
from repro.utils.stats import LinearFit, fit_linear

__all__ = ["MicroBenchRow", "run_microbench", "PAPER_TABLE1"]

#: The paper's after-JIT cost models, for side-by-side reporting:
#: operation -> (fixed ms, per-key ms).
PAPER_TABLE1: dict[str, tuple[float, float]] = {
    "bloom_insert": (4.0, 0.011),
    "bloom_search": (0.0, 0.010),
    "bloom_compress": (21.0, 0.001),
    "bloom_decompress": (0.0, 0.005),
    "index_insert": (14.0, 0.024),
    "index_search": (0.002, 0.0001),
}


@dataclass(frozen=True)
class MicroBenchRow:
    """One Table 1 row: a fitted cost model for an operation."""

    operation: str
    fit: LinearFit
    key_counts: tuple[int, ...]
    times_ms: tuple[float, ...]

    def cost_string(self) -> str:
        """Paper-style 'a + (b * no. keys)' rendering (ms)."""
        return f"{self.fit.intercept:.3f} + ({self.fit.slope:.6f} * no. keys)"


def _keys(n: int, tag: str) -> list[str]:
    return [f"{tag}-key-{i}" for i in range(n)]


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


def _best_of(fn, repeats: int) -> float:
    return min(_time_once(fn) for _ in range(repeats))


def run_microbench(
    key_counts: tuple[int, ...] = (1000, 5000, 10000, 20000, 50000),
    repeats: int = 3,
) -> list[MicroBenchRow]:
    """Measure all six Table 1 operations and fit their cost models."""
    if len(key_counts) < 2:
        raise ValueError("need at least two key counts to fit a line")
    rows: list[MicroBenchRow] = []

    # -- Bloom filter insertion ------------------------------------------
    times = []
    for n in key_counts:
        keys = _keys(n, "ins")
        times.append(
            _best_of(lambda k=keys: BloomFilter.paper_prototype().add_many(k), repeats)
        )
    rows.append(_row("bloom_insert", key_counts, times))

    # -- Bloom filter search ------------------------------------------------
    probe = BloomFilter.paper_prototype()
    probe.add_many(_keys(20000, "probe"))
    times = []
    for n in key_counts:
        keys = _keys(n, "qry")
        times.append(_best_of(lambda k=keys: probe.contains_each(k), repeats))
    rows.append(_row("bloom_search", key_counts, times))

    # -- Bloom filter compress / decompress ---------------------------------
    comp_times = []
    decomp_times = []
    for n in key_counts:
        bf = BloomFilter.paper_prototype()
        bf.add_many(_keys(n, "cmp"))
        # Bypass the version-keyed memo: this row measures the codec itself.
        comp_times.append(
            _best_of(lambda b=bf: compress_filter(b, use_cache=False), repeats)
        )
        blob = compress_filter(bf, use_cache=False)
        decomp_times.append(
            _best_of(lambda d=blob: decompress_filter(d, bf.num_hashes), repeats)
        )
    rows.append(_row("bloom_compress", key_counts, comp_times))
    rows.append(_row("bloom_decompress", key_counts, decomp_times))

    # -- inverted index insertion -----------------------------------------------
    times = []
    for n in key_counts:
        freqs = {k: 1 for k in _keys(n, "idx")}

        def _insert(f=freqs) -> None:
            index = InvertedIndex()
            index.add_document("doc", f)

        times.append(_best_of(_insert, repeats))
    rows.append(_row("index_insert", key_counts, times))

    # -- inverted index search -----------------------------------------------------
    times = []
    for n in key_counts:
        index = InvertedIndex()
        # n documents of a few terms each; query hits a fixed term so the
        # postings walk scales with key count as in the paper's setup.
        shared = "shared-term"
        for i in range(max(1, n // 10)):
            index.add_document(f"d{i}", {shared: 1, f"t{i}": 2})
        times.append(
            _best_of(lambda ix=index: ix.conjunctive_match([shared]), repeats)
        )
    rows.append(_row("index_search", key_counts, times))
    return rows


def _row(op: str, key_counts: tuple[int, ...], times: list[float]) -> MicroBenchRow:
    fit = fit_linear(np.asarray(key_counts, dtype=float), np.asarray(times))
    return MicroBenchRow(op, fit, tuple(key_counts), tuple(times))
