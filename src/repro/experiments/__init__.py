"""Experiment harness: one runner per table and figure of the paper.

=============  ==========================================  =================
Paper item     What it reports                             Runner
=============  ==========================================  =================
Table 1        micro-costs of Bloom/index operations       :mod:`microbench`
Table 2        simulation constants                        :mod:`constants` (asserted in tests)
Table 3        benchmark-collection characteristics        :mod:`table3`
Figure 2       propagation time / volume / bandwidth       :mod:`propagation`
Figure 3       simultaneous-join consistency time          :mod:`join`
Figure 4       dynamic-community convergence + bandwidth   :mod:`dynamic`
Figure 5       2000-member dynamic community               :mod:`dynamic`
Figure 6       recall/precision/peers-contacted            :mod:`search_quality`
=============  ==========================================  =================

Each runner returns plain data structures (lists of dict rows or series)
and the CLI (:mod:`runner`) renders them as text tables matching the
paper's rows/series.
"""

from repro.experiments.common import format_table, Series

__all__ = ["format_table", "Series"]
