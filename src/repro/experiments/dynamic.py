"""Figures 4 and 5: gossiping in dynamic communities.

* Figure 4(a): convergence-time CDF for Poisson arrivals into a stable
  community, with vs without the partial anti-entropy (LAN vs LAN-NPA).
* Figure 4(b): convergence-time CDF during normal operation of a churning
  1000-member community (LAN and MIX, join vs rejoin events).
* Figure 4(c): aggregate gossiping bandwidth over time for (b).
* Figure 5: the same churning community at 2000 members, with the
  bandwidth-aware policy; MIX-F / MIX-S report fast/slow-origin events
  under the fast-peers-only convergence condition.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.constants import GossipConfig
from repro.experiments.common import Series
from repro.gossip.simulation import DynamicResult, run_churn, run_poisson_joins
from repro.sim.topology import make_topology
from repro.utils.rng import make_rng
from repro.utils.stats import cdf_points

__all__ = [
    "run_figure4a",
    "run_figure4bc",
    "run_figure5",
    "cdf_series",
    "bandwidth_series",
]


def run_figure4a(
    n_established: int = 1000,
    n_events: int = 100,
    mean_interarrival_s: float = 90.0,
    seed: int = 0,
) -> dict[str, DynamicResult]:
    """LAN vs LAN-NPA (no partial anti-entropy) Poisson-arrival runs."""
    results = {}
    for label, use_pae in (("LAN", True), ("LAN-NPA", False)):
        config = replace(GossipConfig(), use_partial_ae=use_pae)
        results[label] = run_poisson_joins(
            n_established=n_established,
            n_events=n_events,
            mean_interarrival_s=mean_interarrival_s,
            topology="lan",
            config=config,
            seed=seed,
        )
    return results


def run_figure4bc(
    n_members: int = 1000,
    horizon_s: float = 4 * 3600.0,
    seed: int = 0,
) -> dict[str, DynamicResult]:
    """Churning community on LAN and on MIX (bandwidth-aware)."""
    results = {}
    results["LAN"] = run_churn(
        n_members=n_members, horizon_s=horizon_s, topology="lan", seed=seed
    )
    mix_cfg = replace(GossipConfig(), bandwidth_aware=True)
    results["MIX"] = run_churn(
        n_members=n_members,
        horizon_s=horizon_s,
        topology="mix",
        config=mix_cfg,
        seed=seed,
    )
    return results


@dataclass
class Figure5Result:
    """Figure 5's four curves, from two runs."""

    lan: DynamicResult
    mix: DynamicResult
    mix_fast_origin: list[float]  # MIX-F samples
    mix_slow_origin: list[float]  # MIX-S samples


def run_figure5(
    n_members: int = 2000,
    horizon_s: float = 4 * 3600.0,
    seed: int = 0,
) -> Figure5Result:
    """The 2000-member dynamic community (LAN, MIX, MIX-F, MIX-S)."""
    lan = run_churn(
        n_members=n_members, horizon_s=horizon_s, topology="lan", seed=seed
    )
    mix_cfg = replace(GossipConfig(), bandwidth_aware=True)
    mix = run_churn(
        n_members=n_members,
        horizon_s=horizon_s,
        topology="mix",
        config=mix_cfg,
        seed=seed,
    )
    # Reconstruct the same link assignment run_churn used (same seed and
    # construction order) to classify event origins as fast or slow.
    speeds = make_topology("mix", n_members, make_rng(seed))
    fast = speeds >= mix_cfg.fast_threshold_Bps
    mix_f = [
        e.convergence_fast_s
        for e in mix.events
        if fast[e.origin] and e.convergence_fast_s is not None
    ]
    mix_s = [
        e.convergence_fast_s
        for e in mix.events
        if not fast[e.origin] and e.convergence_fast_s is not None
    ]
    return Figure5Result(lan=lan, mix=mix, mix_fast_origin=mix_f, mix_slow_origin=mix_s)


def cdf_series(samples: list[float], label: str) -> Series:
    """Cumulative-percentage-of-events series for a sample set."""
    xs, ps = cdf_points(samples)
    s = Series(label)
    for x, p in zip(xs, ps):
        s.add(x, 100.0 * p)
    return s


def bandwidth_series(result: DynamicResult, label: str) -> Series:
    """Aggregate bandwidth vs time (Figure 4c) for one run."""
    s = Series(label)
    for t, r in zip(result.bandwidth_times, result.bandwidth_Bps):
        s.add(float(t), float(r))
    return s
