"""Figure 6: PlanetP's search quality vs centralized TF×IDF.

Mirrors the paper's search simulator (Section 7.3): distribute a
collection's documents over virtual peers by a Weibull law, give every
peer its real inverted index and Bloom filter, then for every benchmark
query compare:

* **TFxIDF** — the optimistic centralized baseline: full global index,
  top-k by eq. 2, contacting exactly the owners of those documents;
* **TFxIPF Ad.** — PlanetP's distributed search: eq. 3 peer ranking from
  the replicated Bloom filters, eq. 2 document ranking with IPF weights,
  adaptive stopping (eq. 4);
* **Best** — the oracle lower bound on peers contacted: the fewest peers
  whose stores cover k relevant documents, computed from the relevance
  judgments (greedy set cover).

Panels: (a) average recall & precision vs k; (b) recall vs community size
at fixed k; (c) average peers contacted vs k.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import RankingConfig
from repro.core.community import InProcessCommunity
from repro.corpus.collections import make_collection
from repro.corpus.partition import partition_documents
from repro.corpus.queries import Query
from repro.corpus.synthetic import SyntheticCollection
from repro.experiments.common import Series
from repro.ranking.evaluation import precision, recall
from repro.ranking.stopping import AdaptiveStopping, FirstKStopping
from repro.ranking.tfidf import CentralizedTFIDF
from repro.text.analyzer import Analyzer

__all__ = [
    "SearchTestbed",
    "build_testbed",
    "QueryOutcome",
    "evaluate_k",
    "run_figure6a",
    "run_figure6b",
    "run_figure6c",
]


@dataclass
class SearchTestbed:
    """A collection distributed over an in-process community, plus the
    centralized oracle."""

    collection: SyntheticCollection
    community: InProcessCommunity
    oracle: CentralizedTFIDF
    doc_owner: dict[str, int]
    num_peers: int

    def query_terms(self, query: Query) -> list[str]:
        """The query's terms as the community's analyzer sees them."""
        return self.community.analyze_query(query.text)


def build_testbed(
    collection: SyntheticCollection,
    num_peers: int = 400,
    distribution: str = "weibull",
    seed: int = 0,
) -> SearchTestbed:
    """Distribute ``collection`` over ``num_peers`` virtual peers.

    Synthetic corpora are indexed verbatim (no stemming / stop words) so
    query terms and document terms coincide exactly, as in the paper's
    pre-processed traces.
    """
    analyzer = Analyzer(remove_stopwords=False, stem=False)
    community = InProcessCommunity(num_peers, analyzer=analyzer)
    assignment = partition_documents(
        len(collection.documents), num_peers, distribution=distribution, seed=seed
    )
    oracle = CentralizedTFIDF()
    doc_owner: dict[str, int] = {}
    for peer_id, doc_indices in enumerate(assignment):
        for idx in doc_indices:
            doc = collection.documents[int(idx)]
            community.publish(peer_id, doc)
            oracle.add_document(doc.doc_id, analyzer.term_frequencies(doc.text))
            doc_owner[doc.doc_id] = peer_id
    community.replicate_directories()
    return SearchTestbed(
        collection=collection,
        community=community,
        oracle=oracle,
        doc_owner=doc_owner,
        num_peers=num_peers,
    )


@dataclass
class QueryOutcome:
    """Per-query metrics for both algorithms at one k."""

    query_id: str
    recall_idf: float
    precision_idf: float
    recall_ipf: float
    precision_ipf: float
    peers_idf: int
    peers_ipf: int
    peers_best: int


@dataclass
class KPoint:
    """Averaged metrics at one k (one x position of Figure 6)."""

    k: int
    recall_idf: float
    precision_idf: float
    recall_ipf: float
    precision_ipf: float
    avg_peers_idf: float
    avg_peers_ipf: float
    avg_peers_best: float
    outcomes: list[QueryOutcome] = field(repr=False, default_factory=list)


def _best_peer_count(testbed: SearchTestbed, query: Query, k: int) -> int:
    """Greedy set-cover: fewest peers covering min(k, |relevant|) relevant
    documents (the paper's "Best" curve)."""
    target = min(k, len(query.relevant))
    if target == 0:
        return 0
    per_peer: dict[int, int] = {}
    for doc_id in query.relevant:
        owner = testbed.doc_owner.get(doc_id)
        if owner is not None:
            per_peer[owner] = per_peer.get(owner, 0) + 1
    covered = 0
    used = 0
    for _, count in sorted(per_peer.items(), key=lambda kv: -kv[1]):
        covered += count
        used += 1
        if covered >= target:
            return used
    return used  # every holding peer, if k exceeds what's stored


def evaluate_k(
    testbed: SearchTestbed,
    k: int,
    queries: list[Query] | None = None,
    stopping: str = "adaptive",
) -> KPoint:
    """Evaluate both algorithms at one ``k`` over the query set.

    ``stopping`` selects PlanetP's policy: ``"adaptive"`` (eq. 4) or
    ``"first-k"`` (the naive baseline).
    """
    qs = queries if queries is not None else testbed.collection.queries
    outcomes: list[QueryOutcome] = []
    for query in qs:
        terms = testbed.query_terms(query)
        # Centralized TF×IDF oracle.
        ranked = testbed.oracle.rank(terms, k)
        idf_docs = [r.doc_id for r in ranked]
        idf_peers = {testbed.doc_owner[d] for d in idf_docs}
        # PlanetP distributed TF×IPF.
        policy = (
            AdaptiveStopping(testbed.community.ranking_config)
            if stopping == "adaptive"
            else FirstKStopping()
        )
        result = testbed.community.ranked_search(query.text, k=k, stopping=policy)
        ipf_docs = result.doc_ids()
        outcomes.append(
            QueryOutcome(
                query_id=query.query_id,
                recall_idf=recall(idf_docs, query.relevant),
                precision_idf=precision(idf_docs, query.relevant),
                recall_ipf=recall(ipf_docs, query.relevant),
                precision_ipf=precision(ipf_docs, query.relevant),
                peers_idf=len(idf_peers),
                peers_ipf=result.num_peers_contacted,
                peers_best=_best_peer_count(testbed, query, k),
            )
        )
    return KPoint(
        k=k,
        recall_idf=float(np.mean([o.recall_idf for o in outcomes])),
        precision_idf=float(np.mean([o.precision_idf for o in outcomes])),
        recall_ipf=float(np.mean([o.recall_ipf for o in outcomes])),
        precision_ipf=float(np.mean([o.precision_ipf for o in outcomes])),
        avg_peers_idf=float(np.mean([o.peers_idf for o in outcomes])),
        avg_peers_ipf=float(np.mean([o.peers_ipf for o in outcomes])),
        avg_peers_best=float(np.mean([o.peers_best for o in outcomes])),
        outcomes=outcomes,
    )


def run_figure6a(
    collection_name: str = "AP89",
    scale: float = 0.05,
    num_peers: int = 400,
    ks: tuple[int, ...] = (10, 20, 50, 100, 150, 200, 300),
    seed: int = 0,
) -> tuple[list[KPoint], dict[str, Series]]:
    """Panel (a): average recall and precision vs k, both algorithms."""
    collection = make_collection(collection_name, scale=scale, seed=seed)
    testbed = build_testbed(collection, num_peers=num_peers, seed=seed)
    points = [evaluate_k(testbed, k) for k in ks]
    series = {
        "R_IDF": Series("R IDF"),
        "P_IDF": Series("P IDF"),
        "R_IPF": Series("R IPF Ad.W"),
        "P_IPF": Series("P IPF Ad.W"),
    }
    for p in points:
        series["R_IDF"].add(p.k, p.recall_idf)
        series["P_IDF"].add(p.k, p.precision_idf)
        series["R_IPF"].add(p.k, p.recall_ipf)
        series["P_IPF"].add(p.k, p.precision_ipf)
    return points, series


def run_figure6b(
    collection_name: str = "AP89",
    scale: float = 0.05,
    community_sizes: tuple[int, ...] = (100, 200, 400, 600, 800, 1000),
    k: int = 20,
    seed: int = 0,
) -> tuple[list[KPoint], Series]:
    """Panel (b): PlanetP's recall vs community size at fixed k."""
    collection = make_collection(collection_name, scale=scale, seed=seed)
    points = []
    series = Series(f"IPF Ad.W (k={k})")
    for n in community_sizes:
        testbed = build_testbed(collection, num_peers=n, seed=seed)
        point = evaluate_k(testbed, k)
        points.append(point)
        series.add(n, point.recall_ipf)
    return points, series


def run_figure6c(
    collection_name: str = "AP89",
    scale: float = 0.05,
    num_peers: int = 400,
    ks: tuple[int, ...] = (10, 20, 50, 100, 150, 200, 300),
    seed: int = 0,
) -> tuple[list[KPoint], dict[str, Series]]:
    """Panel (c): average number of peers contacted vs k."""
    collection = make_collection(collection_name, scale=scale, seed=seed)
    testbed = build_testbed(collection, num_peers=num_peers, seed=seed)
    points = [evaluate_k(testbed, k) for k in ks]
    series = {
        "IPF": Series("IPF Ad.W"),
        "IDF": Series("IDF (oracle owners)"),
        "BEST": Series("Best"),
    }
    for p in points:
        series["IPF"].add(p.k, p.avg_peers_ipf)
        series["IDF"].add(p.k, p.avg_peers_idf)
        series["BEST"].add(p.k, p.avg_peers_best)
    return points, series
