"""Shared output plumbing for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "Series", "format_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned text table.

    Floats print with 4 significant digits; everything else via ``str``.
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One labelled (x, y) series of a figure."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)


def format_series(
    series_list: Sequence[Series], x_name: str = "x", y_name: str = "y", title: str | None = None
) -> str:
    """Render several series as one aligned table (x column + one column
    per series), merging on x values."""
    all_x = sorted({x for s in series_list for x in s.xs})
    headers = [x_name] + [s.label for s in series_list]
    lookup = [{x: y for x, y in zip(s.xs, s.ys)} for s in series_list]
    rows = []
    for x in all_x:
        row: list[Any] = [x]
        for table in lookup:
            row.append(table.get(x, ""))
        rows.append(row)
    return format_table(headers, rows, title=title)
