"""Table 3: characteristics of the benchmark collections.

Regenerates the paper's collection-statistics table for our synthetic
stand-ins, printing the published numbers next to the generated ones so
the substitution is auditable.
"""

from __future__ import annotations

from repro.corpus.collections import collection_table_rows
from repro.experiments.common import format_table

__all__ = ["run_table3", "format_table3"]


def run_table3(
    names: list[str] | None = None, scale: float = 0.05, seed: int = 0
) -> list[dict[str, object]]:
    """Generate the per-collection rows (paper stats + generated stats).

    ``scale`` defaults small so the harness runs in seconds; pass 1.0 to
    regenerate full-size collections.
    """
    return collection_table_rows(names, scale=scale, seed=seed)


def format_table3(rows: list[dict[str, object]]) -> str:
    """Render the Table 3 comparison."""
    headers = [
        "Trace",
        "Queries (paper)",
        "Docs (paper)",
        "Words (paper)",
        "MB (paper)",
        "Queries (gen)",
        "Docs (gen)",
        "Words (gen)",
        "MB (gen)",
    ]
    body = [
        [
            r["trace"],
            r["paper_queries"],
            r["paper_documents"],
            r["paper_words"],
            r["paper_size_mb"],
            r["gen_queries"],
            r["gen_documents"],
            r["gen_distinct_words"],
            r["gen_size_mb"],
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 3: collection characteristics")
