"""Figure 2: propagating a single Bloom filter everywhere.

Reproduces all three panels for the paper's six scenarios:

* **LAN** — 45 Mbps links, PlanetP gossiping (30 s interval);
* **LAN-AE** — 45 Mbps links, push anti-entropy only;
* **DSL-10 / DSL-30 / DSL-60** — 512 Kbps links, gossip interval 10/30/60 s;
* **MIX** — the Saroiu et al. link mixture.

Panel (a) is propagation time vs community size, (b) aggregate network
volume, (c) average per-peer bandwidth for the DSL scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.constants import GossipConfig
from repro.experiments.common import Series
from repro.gossip.simulation import PropagationResult, run_propagation

__all__ = ["PropagationSweep", "SCENARIOS", "run_figure2", "figure2_series"]

#: scenario name -> (topology, config overrides)
SCENARIOS: dict[str, tuple[str, dict]] = {
    "LAN": ("lan", {}),
    "LAN-AE": ("lan", {"anti_entropy_only": True}),
    "DSL-10": ("dsl", {"base_interval_s": 10.0, "max_interval_s": 20.0}),
    "DSL-30": ("dsl", {}),
    "DSL-60": ("dsl", {"base_interval_s": 60.0, "max_interval_s": 120.0}),
    "MIX": ("mix", {}),
}


@dataclass
class PropagationSweep:
    """All runs of the Figure 2 sweep."""

    results: dict[str, list[PropagationResult]]

    def scenario(self, name: str) -> list[PropagationResult]:
        """Results for one scenario, ordered by community size."""
        return self.results[name]


def run_figure2(
    sizes: tuple[int, ...] = (100, 200, 500, 1000, 2000, 5000),
    scenarios: tuple[str, ...] = ("LAN", "LAN-AE", "DSL-10", "DSL-30", "DSL-60", "MIX"),
    payload_keys: int = 1000,
    seed: int = 0,
) -> PropagationSweep:
    """Run the full sweep: every scenario at every community size."""
    results: dict[str, list[PropagationResult]] = {}
    for name in scenarios:
        topology, overrides = SCENARIOS[name]
        config = replace(GossipConfig(), **overrides)
        runs = []
        for n in sizes:
            runs.append(
                run_propagation(
                    n,
                    topology=topology,
                    config=config,
                    payload_keys=payload_keys,
                    seed=seed,
                )
            )
        results[name] = runs
    return PropagationSweep(results)


def figure2_series(sweep: PropagationSweep) -> dict[str, list[Series]]:
    """Convert a sweep into the three panels' series.

    Returns ``{"time": [...], "volume": [...], "bandwidth": [...]}`` with
    one series per scenario (bandwidth only for DSL scenarios, as in the
    paper).
    """
    time_series: list[Series] = []
    volume_series: list[Series] = []
    bw_series: list[Series] = []
    for name, runs in sweep.results.items():
        st = Series(name)
        sv = Series(name)
        for r in runs:
            st.add(r.community_size, r.propagation_time_s)
            sv.add(r.community_size, r.total_bytes / 1e6)
        time_series.append(st)
        volume_series.append(sv)
        if name.startswith("DSL"):
            sb = Series(name)
            for r in runs:
                sb.add(r.community_size, r.per_peer_bandwidth_Bps)
            bw_series.append(sb)
    return {"time": time_series, "volume": volume_series, "bandwidth": bw_series}
