"""Figure 3: m peers simultaneously joining an established community.

The paper starts a consistent community of 1000 peers, has ``x - 1000``
new members (each sharing 20 000 keys) join at once, and measures the time
until the membership view is consistent again, for LAN, DSL and MIX
topologies.  Joiners must download the full directory (~16 MB for 1000
members) and their join rumors must reach everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import GossipConfig
from repro.experiments.common import Series
from repro.gossip.simulation import JoinResult, run_join

__all__ = ["JoinSweep", "run_figure3", "figure3_series"]


@dataclass
class JoinSweep:
    """All runs of the Figure 3 sweep."""

    results: dict[str, list[JoinResult]]


def run_figure3(
    n_initial: int = 1000,
    joiner_counts: tuple[int, ...] = (50, 100, 150, 200, 250),
    topologies: tuple[str, ...] = ("lan", "dsl", "mix"),
    keys_per_peer: int = 20_000,
    seed: int = 0,
    config: GossipConfig | None = None,
) -> JoinSweep:
    """Run the sweep: every topology at every joiner count."""
    results: dict[str, list[JoinResult]] = {}
    for topology in topologies:
        runs = []
        for m in joiner_counts:
            runs.append(
                run_join(
                    n_initial,
                    m,
                    topology=topology,
                    config=config,
                    keys_per_peer=keys_per_peer,
                    seed=seed,
                )
            )
        results[topology.upper()] = runs
    return JoinSweep(results)


def figure3_series(sweep: JoinSweep) -> list[Series]:
    """Consistency time vs total community size, one series per topology."""
    out = []
    for name, runs in sweep.results.items():
        s = Series(name)
        for r in runs:
            s.add(r.initial_size + r.joiners, r.consistency_time_s)
        out.append(s)
    return out
