"""Command-line entry point: regenerate any table or figure.

Usage::

    planetp-experiments table1
    planetp-experiments table3 [--scale 0.05]
    planetp-experiments fig2 [--fast]
    planetp-experiments fig3 [--fast]
    planetp-experiments fig4 [--fast]
    planetp-experiments fig5 [--fast]
    planetp-experiments fig6 [--fast]
    planetp-experiments all  [--fast]

``--fast`` shrinks community sizes / corpus scale so each figure runs in
seconds; omit it for paper-scale runs (minutes).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.experiments.common import Series, format_series, format_table

__all__ = ["main"]

#: set by main() when --plot is given; figure commands then render ASCII
#: charts after their tables.
_PLOT = False


def _print(text: str) -> None:
    print(text)
    print()


def _maybe_plot(series: list[Series], title: str, x: str, y: str, log_x: bool = False) -> None:
    if not _PLOT:
        return
    from repro.experiments.ascii_plot import plot_series

    _print(plot_series(series, title=title, x_label=x, y_label=y, log_x=log_x))


def cmd_table1(fast: bool) -> None:
    """Table 1: micro-benchmark cost models."""
    from repro.experiments.microbench import PAPER_TABLE1, run_microbench

    counts = (1000, 5000, 10000) if fast else (1000, 5000, 10000, 20000, 50000)
    rows = run_microbench(key_counts=counts)
    body = []
    for row in rows:
        paper_fixed, paper_slope = PAPER_TABLE1[row.operation]
        body.append(
            [
                row.operation,
                row.cost_string(),
                f"{paper_fixed} + ({paper_slope} * no. keys)",
                f"{row.fit.r_squared:.3f}",
            ]
        )
    _print(
        format_table(
            ["Operation", "Measured (ms)", "Paper after-JIT (ms)", "R^2"],
            body,
            title="Table 1: costs of PlanetP's basic operations",
        )
    )


def cmd_table3(fast: bool, scale: float | None = None) -> None:
    """Table 3: collection characteristics."""
    from repro.experiments.table3 import format_table3, run_table3

    rows = run_table3(scale=scale if scale is not None else (0.02 if fast else 1.0))
    _print(format_table3(rows))


def cmd_fig2(fast: bool) -> None:
    """Figure 2: propagation time / volume / per-peer bandwidth."""
    from repro.experiments.propagation import figure2_series, run_figure2

    sizes = (100, 200, 500) if fast else (100, 200, 500, 1000, 2000, 5000)
    sweep = run_figure2(sizes=sizes)
    panels = figure2_series(sweep)
    _print(
        format_series(
            panels["time"], "community size", "seconds",
            title="Figure 2(a): propagation time (s) vs community size",
        )
    )
    _print(
        format_series(
            panels["volume"], "community size", "MB",
            title="Figure 2(b): aggregate network volume (MB) vs community size",
        )
    )
    _print(
        format_series(
            panels["bandwidth"], "community size", "B/s",
            title="Figure 2(c): average per-peer bandwidth (B/s), DSL scenarios",
        )
    )
    _maybe_plot(panels["time"], "Figure 2(a)", "peers", "seconds", log_x=True)
    _maybe_plot(panels["volume"], "Figure 2(b)", "peers", "MB", log_x=True)


def cmd_fig3(fast: bool) -> None:
    """Figure 3: simultaneous joins."""
    from repro.experiments.join import figure3_series, run_figure3

    if fast:
        sweep = run_figure3(n_initial=200, joiner_counts=(10, 25, 50))
    else:
        sweep = run_figure3()
    series = figure3_series(sweep)
    _print(
        format_series(
            series, "total community size", "seconds",
            title="Figure 3: time to reach a consistent view after mass join",
        )
    )
    _maybe_plot(series, "Figure 3", "total size", "seconds")


def _cdf_summary(label: str, samples: list[float]) -> list:
    if not samples:
        return [label, 0, "", "", "", ""]
    arr = np.asarray(samples)
    return [
        label,
        len(samples),
        float(np.median(arr)),
        float(np.percentile(arr, 90)),
        float(np.percentile(arr, 99)),
        float(arr.max()),
    ]


def cmd_fig4(fast: bool) -> None:
    """Figure 4: dynamic-community convergence and bandwidth."""
    from repro.experiments.dynamic import (
        bandwidth_series,
        run_figure4a,
        run_figure4bc,
    )

    n = 200 if fast else 1000
    events = 30 if fast else 100
    results_a = run_figure4a(n_established=n, n_events=events)
    body = [
        _cdf_summary(label, res.convergence_samples())
        for label, res in results_a.items()
    ]
    _print(
        format_table(
            ["Scenario", "events", "median (s)", "p90", "p99", "max"],
            body,
            title="Figure 4(a): Poisson arrivals, with vs without partial anti-entropy",
        )
    )

    horizon = (2 * 3600.0) if fast else (4 * 3600.0)
    results_bc = run_figure4bc(n_members=n, horizon_s=horizon)
    body = []
    for label, res in results_bc.items():
        for kind in ("join", "rejoin"):
            body.append(
                _cdf_summary(f"{label}/{kind}", res.convergence_samples(label=kind))
            )
    _print(
        format_table(
            ["Scenario", "events", "median (s)", "p90", "p99", "max"],
            body,
            title="Figure 4(b): dynamic community convergence (join = new keys)",
        )
    )
    lan_bw = bandwidth_series(results_bc["LAN"], "LAN")
    if len(lan_bw):
        peak = max(lan_bw.ys)
        mean = sum(lan_bw.ys) / len(lan_bw.ys)
        _print(
            format_table(
                ["Scenario", "mean agg. B/s", "peak agg. B/s"],
                [["LAN", mean, peak]],
                title="Figure 4(c): aggregate gossiping bandwidth",
            )
        )


def cmd_fig5(fast: bool) -> None:
    """Figure 5: 2000-member dynamic community."""
    from repro.experiments.dynamic import run_figure5

    n = 400 if fast else 2000
    horizon = (2 * 3600.0) if fast else (4 * 3600.0)
    result = run_figure5(n_members=n, horizon_s=horizon)
    body = [
        _cdf_summary("LAN", result.lan.convergence_samples()),
        _cdf_summary("MIX", result.mix.convergence_samples()),
        _cdf_summary("MIX-F", result.mix_fast_origin),
        _cdf_summary("MIX-S", result.mix_slow_origin),
    ]
    _print(
        format_table(
            ["Scenario", "events", "median (s)", "p90", "p99", "max"],
            body,
            title=f"Figure 5: convergence in a dynamic community of {n} members",
        )
    )


def cmd_fig6(fast: bool) -> None:
    """Figure 6: search quality."""
    from repro.experiments.search_quality import (
        run_figure6a,
        run_figure6b,
        run_figure6c,
    )

    scale = 0.02 if fast else 0.2
    peers = 100 if fast else 400
    ks = (10, 20, 50, 100) if fast else (10, 20, 50, 100, 150, 200, 300)
    points, series = run_figure6a(scale=scale, num_peers=peers, ks=ks)
    _print(
        format_series(
            list(series.values()), "k", "value",
            title="Figure 6(a): average recall/precision vs k (IDF vs IPF Ad.W)",
        )
    )
    sizes = (50, 100, 200) if fast else (100, 200, 400, 600, 800, 1000)
    _, series_b = run_figure6b(scale=scale, community_sizes=sizes)
    _print(
        format_series(
            [series_b], "community size", "recall",
            title="Figure 6(b): recall vs community size (k=20)",
        )
    )
    points_c, series_c = run_figure6c(scale=scale, num_peers=peers, ks=ks)
    _print(
        format_series(
            list(series_c.values()), "k", "peers",
            title="Figure 6(c): peers contacted vs k",
        )
    )
    _maybe_plot(list(series.values()), "Figure 6(a)", "k", "R/P")
    _maybe_plot(list(series_c.values()), "Figure 6(c)", "k", "peers contacted")


def cmd_table2(fast: bool) -> None:
    """Table 2: the simulation constants in force."""
    from repro import constants as c

    rows = [
        ["CPU gossiping time", f"{c.CPU_GOSSIP_TIME_S * 1000:.0f} ms"],
        ["Base gossiping interval", f"{c.BASE_GOSSIP_INTERVAL_S:.0f} s"],
        ["Max gossiping interval", f"{c.MAX_GOSSIP_INTERVAL_S:.0f} s"],
        ["Message header size", f"{c.MESSAGE_HEADER_BYTES} bytes"],
        ["1000 keys BF", f"{c.BF_1000_KEYS_BYTES} bytes"],
        ["20000 keys BF", f"{c.BF_20000_KEYS_BYTES} bytes"],
        ["BF summary", f"{c.BF_SUMMARY_BYTES} bytes"],
        ["Peer summary", f"{c.PEER_SUMMARY_BYTES} bytes"],
    ]
    _print(format_table(["Constant", "Value"], rows, title="Table 2: simulation constants"))


_COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="planetp-experiments",
        description="Regenerate the PlanetP paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink sizes so the experiment finishes in seconds",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render ASCII charts of the figure series after the tables",
    )
    args = parser.parse_args(argv)
    global _PLOT
    _PLOT = args.plot
    if args.experiment == "all":
        for name in ("table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6"):
            print(f"=== {name} ===")
            _COMMANDS[name](args.fast)
    else:
        _COMMANDS[args.experiment](args.fast)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
