"""repro.analytics — the gossip-powered analytics plane.

Three layers, each consuming the one below:

* :mod:`repro.analytics.aggregate` — mergeable per-origin sketches
  (space-saving term summaries + document access counters) spread by
  push-pull exchanges piggybacked on the gossip round, converging every
  node to the same community-wide top-k frequent-term estimate;
* :mod:`repro.analytics.popularity` — per-document and per-term
  popularity scores folded out of the converged sketch;
* :mod:`repro.analytics.browse` — a popularity-ranked browsable global
  namespace over PFS's query-named directories, served through the
  query plane's scheduler and cache.
"""

from repro.analytics.aggregate import AnalyticsPlane, SpaceSaving, TermSketch
from repro.analytics.browse import (
    BrowseEntry,
    BrowseListing,
    CommunityBrowser,
    local_listing,
)
from repro.analytics.popularity import PopularityIndex

__all__ = [
    "AnalyticsPlane",
    "SpaceSaving",
    "TermSketch",
    "PopularityIndex",
    "BrowseEntry",
    "BrowseListing",
    "CommunityBrowser",
    "local_listing",
]
