"""A popularity-ranked browsable global namespace.

Layered on :mod:`repro.pfs`'s query-named directories: a path like
``/gossip/protocols`` *is* the query "gossip protocols" (each segment
refines the last), so the community is browsable without anyone having
agreed on a directory tree — every path is materialized on demand from
the replicated directory, exactly the "popularity based global
namespace" construction.

Listings are **popularity-ordered**: the ranked search supplies the
candidate documents, and the gossiped analytics sketch re-ranks them by
community access counts (:class:`~repro.analytics.popularity.
PopularityIndex`), with search relevance breaking ties.  Each entry
carries a ``planetp://<doc_id>`` link — the content plane retrieves by
doc id from whatever replicas currently hold it, so links stay valid
across churn.

Two consumers share this module:

* :class:`CommunityBrowser` — the serving-plane browser, attached to a
  :class:`~repro.serve.scheduler.QueryScheduler` so browse traffic gets
  the same admission control, caching, and generation-keyed invalidation
  as search;
* :func:`local_listing` — the node-side handler for the
  :class:`~repro.gossip.wire.BrowseRequest` RPC, which lists only the
  answering node's local documents (fleet probes and the CLI poll many
  nodes cheaply without triggering community-wide fan-out per poll).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analytics.popularity import PopularityIndex
from repro.core.search import exhaustive_local_match
from repro.gossip.wire import BrowseRequest, BrowseResponse
from repro.pfs.namespace import SemanticNamespace
from repro.serve.cache import directory_generation

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer
    from repro.serve.scheduler import QueryScheduler

__all__ = ["BrowseEntry", "BrowseListing", "CommunityBrowser", "local_listing"]


def doc_link(doc_id: str) -> str:
    """The content-addressed retrieval link for a document."""
    return f"planetp://{doc_id}"


@dataclass(frozen=True)
class BrowseEntry:
    """One listed document: id, retrieval link, popularity score."""

    doc_id: str
    link: str
    popularity: int


@dataclass(frozen=True)
class BrowseListing:
    """One directory listing, popularity-ordered best-first."""

    path: str
    query: str
    generation: int
    entries: tuple[BrowseEntry, ...]

    def names(self) -> list[str]:
        """Listed doc ids in display order."""
        return [e.doc_id for e in self.entries]


def path_terms(node: NetworkPeer, path: str) -> list[str]:
    """Analyze a directory path into its effective query terms.

    Raises ``ValueError`` for malformed paths (relative, root, or paths
    whose segments analyze to nothing — e.g. all stopwords).
    """
    segments = SemanticNamespace._segments(path)
    terms = list(node.analyzer.analyze_query(" ".join(segments)))
    if not terms:
        raise ValueError(f"path {path!r} analyzes to zero query terms")
    return terms


def local_listing(node: NetworkPeer, msg: BrowseRequest) -> BrowseResponse:
    """Serve one node-local browse: local matches, popularity-ordered."""
    try:
        terms = path_terms(node, msg.path)
    except ValueError:
        return BrowseResponse(False, msg.path, 0, ())
    k = max(1, min(msg.k, 1024))
    node.analytics.refresh_local()  # serve fresh pre-first-round popularity
    doc_ids = exhaustive_local_match(node.peer.store.index, terms)
    popularity = PopularityIndex(node.analytics.sketch)
    ranked = popularity.rank_docs((doc_id, 0.0) for doc_id in doc_ids)[:k]
    generation = directory_generation(node)
    return BrowseResponse(
        True,
        msg.path,
        generation,
        tuple((doc_id, doc_link(doc_id), score) for doc_id, score in ranked),
    )


class CommunityBrowser:
    """Community-wide listings for the serving plane.

    ``listing`` runs one ranked search for the path's effective query
    (over-fetching so the popularity re-rank has candidates beyond the
    final page) and re-orders the results by gossiped access counts.
    The scheduler calls it through ``_admit``, so listings are cached
    under the directory generation and shed under overload exactly like
    searches.
    """

    def __init__(self, scheduler: QueryScheduler, overfetch: int = 4) -> None:
        if overfetch < 1:
            raise ValueError("overfetch must be >= 1")
        self.scheduler = scheduler
        self.overfetch = overfetch

    async def listing(self, path: str, k: int) -> BrowseListing:
        """One popularity-ordered community listing of ``path``."""
        node = self.scheduler.node
        terms = path_terms(node, path)
        query = " ".join(terms)
        generation = directory_generation(node)
        result = await self.scheduler.client.ranked_search(
            query, k * self.overfetch
        )
        node.analytics.refresh_local()  # fresh pre-first-round popularity
        popularity = PopularityIndex(node.analytics.sketch)
        ranked = popularity.rank_docs(
            (doc.doc_id, doc.score) for doc in result.results
        )[:k]
        return BrowseListing(
            path,
            query,
            generation,
            tuple(
                BrowseEntry(doc_id, doc_link(doc_id), score)
                for doc_id, score in ranked
            ),
        )
