"""Popularity scores folded out of the gossiped analytics sketch.

The sketch carries two community-wide estimates: term frequencies (how
much of the community's content is about a term) and per-document access
counts (how often members actually fetched a document).  This module
folds them into the scores the browsable namespace ranks by:

* a **document's** popularity is its gossiped access count — direct
  demand evidence, the "popularity based global namespace" signal;
* a **term's** popularity is its estimated community frequency — used to
  rank sibling directories and as a tiebreak for never-accessed
  documents (content about popular topics lists above niche content).

Scores are plain integers (counts), so rankings are reproducible across
nodes once the sketch has converged.
"""

from __future__ import annotations

from typing import Iterable

from repro.analytics.aggregate import TermSketch

__all__ = ["PopularityIndex"]


class PopularityIndex:
    """A point-in-time read of the sketch, exposed as score lookups.

    Snapshot semantics: the counters are copied out of the sketch at
    construction, so one listing is ranked against one consistent view
    even while gossip keeps merging entries underneath.
    """

    __slots__ = ("_doc_counts", "_term_counts")

    def __init__(self, sketch: TermSketch) -> None:
        self._doc_counts = dict(sketch.doc_counts())
        self._term_counts = dict(sketch.term_counts())

    def doc_score(self, doc_id: str) -> int:
        """Community access count of ``doc_id`` (0 when never seen)."""
        return self._doc_counts.get(doc_id, 0)

    def term_score(self, term: str) -> int:
        """Estimated community frequency of ``term`` (0 when untracked)."""
        return self._term_counts.get(term, 0)

    def rank_docs(
        self, entries: Iterable[tuple[str, float]]
    ) -> list[tuple[str, int]]:
        """Order ``(doc_id, relevance)`` pairs by popularity.

        Popularity (access count) dominates; search relevance breaks
        ties among equally-popular documents, and the doc id breaks the
        rest so the order is total and deterministic.
        """
        return [
            (doc_id, self.doc_score(doc_id))
            for doc_id, _rel in sorted(
                entries,
                key=lambda kv: (-self.doc_score(kv[0]), -kv[1], kv[0]),
            )
        ]
