"""Gossip-based aggregation: community-wide frequent-term mining.

Every node keeps a bounded **space-saving** summary of its own term
frequencies (Metwally et al.'s frequent-item sketch: at most ``capacity``
counters, per-term error bounded by ``N / capacity``) plus per-document
access counters fed by the serve and content planes.  The summary is
packaged as one immutable :class:`~repro.gossip.wire.SketchEntry` per
origin and spread by **push-pull sketch exchanges** piggybacked on the
gossip round: the initiator ships an (origin, epoch) digest of
everything it holds, the responder answers with the entries the digest
shows the initiator lacks (plus its own digest), and the initiator
pushes back anything *it* is ahead on.  A converged community therefore
trades digests only — ~12 bytes per origin per round.

Merging is a per-origin **latest-wins join**: for each origin the entry
with the largest ``(epoch, terms, docs)`` key is kept.  That key is a
total order over entries, so the merge is commutative, associative, and
idempotent — the convergence property gossip requires (entries may
arrive duplicated, reordered, or via different paths, and every node
still settles on the same per-origin set, hence the same community-wide
top-k estimate).

Aging is by **epoch**: a node rebuilds its own entry from its live index
each refresh and bumps the epoch *only when the content changed* (so a
quiescent community exchanges digests, not entries).  Removing documents
shrinks the rebuilt summary; the higher epoch replaces the stale counts
everywhere within a propagation round-trip.  Entries of departed members
are dropped alongside their directory rows at T_Dead.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.constants import AnalyticsConfig
from repro.gossip.messages import MessageSizer
from repro.gossip.wire import (
    SketchEntry,
    SketchExchange,
    SketchReply,
    TopTermsReply,
    TopTermsRequest,
)

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer

__all__ = ["SpaceSaving", "TermSketch", "AnalyticsPlane"]

#: Clamp on remotely requested top-k sizes (a TopTermsRequest's u16 k).
_MAX_TOP_K = 1024


class SpaceSaving:
    """The space-saving frequent-item summary (bounded counters).

    ``offer(item, count)`` either increments a tracked counter, starts a
    new one while there is room, or evicts the minimum counter and
    inherits its count (recording it as the new item's overestimation
    error).  Tracked counts never underestimate the true frequency, and
    overestimate by at most the evicted minimum — the classic guarantee
    that makes the sketch sound for top-k mining.
    """

    __slots__ = ("capacity", "_counts", "_errors")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def offer(self, item: str, count: int = 1) -> None:
        """Account ``count`` occurrences of ``item``."""
        if count <= 0:
            return
        if item in self._counts:
            self._counts[item] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[item] = count
            self._errors[item] = 0
            return
        evicted = min(self._counts, key=lambda t: (self._counts[t], t))
        floor = self._counts.pop(evicted)
        self._errors.pop(evicted)
        self._counts[item] = floor + count
        self._errors[item] = floor

    def error(self, item: str) -> int:
        """Overestimation bound recorded for a tracked ``item``."""
        return self._errors.get(item, 0)

    def items(self) -> list[tuple[str, int]]:
        """Tracked (item, estimated count) pairs, largest first.

        Ties break on the item itself so the order — and therefore the
        wire encoding of the entry built from it — is deterministic.
        """
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def __len__(self) -> int:
        return len(self._counts)


class TermSketch:
    """The mergeable community sketch: one latest-wins entry per origin.

    The join keeps, per origin, the entry with the largest
    ``(epoch, terms, docs)`` key.  Epoch dominates (that is the aging
    signal); the content fields break the (never expected, but possible
    after a crash loses an epoch bump) tie deterministically, so two
    nodes holding different same-epoch entries still converge.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[int, SketchEntry] = {}

    @staticmethod
    def _key(entry: SketchEntry) -> tuple[int, tuple, tuple]:
        return (entry.epoch, entry.terms, entry.docs)

    def merge_entry(self, entry: SketchEntry) -> bool:
        """Join one entry in; returns whether it replaced held state."""
        held = self.entries.get(entry.origin)
        if held is not None and self._key(held) >= self._key(entry):
            return False
        self.entries[entry.origin] = entry
        return True

    def merge(self, entries: Iterable[SketchEntry]) -> int:
        """Join many entries; returns how many were adopted."""
        return sum(1 for e in entries if self.merge_entry(e))

    def forget(self, origin: int) -> None:
        """Drop a departed member's entry (directory T_Dead expiry)."""
        self.entries.pop(origin, None)

    def versions(self) -> tuple[tuple[int, int], ...]:
        """The (origin, epoch) digest of everything held, sorted."""
        return tuple(
            (origin, entry.epoch)
            for origin, entry in sorted(self.entries.items())
        )

    def entries_ahead_of(
        self, versions: Iterable[tuple[int, int]]
    ) -> list[SketchEntry]:
        """Held entries a peer with ``versions`` demonstrably lacks."""
        known: Mapping[int, int] = dict(versions)
        return [
            entry
            for origin, entry in sorted(self.entries.items())
            if known.get(origin, -1) < entry.epoch
        ]

    def term_counts(self) -> Counter[str]:
        """Community-wide term-frequency estimate (sum over origins)."""
        totals: Counter[str] = Counter()
        for entry in self.entries.values():
            for term, count in entry.terms:
                totals[term] += count
        return totals

    def doc_counts(self) -> Counter[str]:
        """Community-wide per-document access counts (sum over origins)."""
        totals: Counter[str] = Counter()
        for entry in self.entries.values():
            for doc_id, count in entry.docs:
                totals[doc_id] += count
        return totals

    def top_terms(self, k: int) -> list[tuple[str, int]]:
        """The estimated community top-``k`` terms, largest first
        (count ties broken by term for a deterministic answer)."""
        totals = self.term_counts()
        ordered = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[: max(0, k)]

    def __len__(self) -> int:
        return len(self.entries)


class AnalyticsPlane:
    """One node's analytics state and its gossip-round maintenance.

    Opt-in (``enabled`` is False when constructed without a config): the
    flat gossip plane's Table-2 accounting must stay exactly the paper's
    inventory, so a node pays nothing for analytics unless asked.
    """

    def __init__(self, node: NetworkPeer, config: AnalyticsConfig | None) -> None:
        self.node = node
        self.enabled = config is not None
        self.config = config or AnalyticsConfig()
        self.sketch = TermSketch()
        #: local per-document access counters (serve + content reads).
        self.accesses: Counter[str] = Counter()
        self._obs = node.obs
        self._c_exchanges = self._obs.counter(
            "analytics", "sketch_exchanges_total", "push-pull sketch exchanges run"
        )
        self._c_merged = self._obs.counter(
            "analytics", "entries_merged_total", "foreign sketch entries adopted"
        )
        self._c_refreshes = self._obs.counter(
            "analytics", "local_refreshes_total", "own-entry rebuilds that changed"
        )
        self._g_origins = self._obs.gauge(
            "analytics", "sketch_origins", "origins with a held sketch entry"
        )
        self._g_entry_bytes = self._obs.gauge(
            "analytics", "own_entry_bytes", "model size of this node's entry"
        )

    # -- local summary ------------------------------------------------------

    def record_access(self, doc_id: str) -> None:
        """Count one read of a local document (feeds popularity)."""
        if self.enabled:
            self.accesses[doc_id] += 1

    def _build_own_entry(self, epoch: int) -> SketchEntry:
        """Rebuild this node's entry from the live index and counters."""
        store = self.node.peer.store
        summary = SpaceSaving(self.config.sketch_capacity)
        index = store.index
        for term in index.terms():
            summary.offer(term, index.collection_frequency(term))
        docs = sorted(
            (
                (doc_id, count)
                for doc_id, count in self.accesses.items()
                if doc_id in store
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )[: self.config.top_docs]
        return SketchEntry(
            self.node.peer_id, epoch, tuple(summary.items()), tuple(docs)
        )

    def refresh_local(self) -> bool:
        """Rebuild the own entry; bump the epoch only on real change.

        Keeping the epoch still when nothing changed is what lets a
        quiescent community go digest-only: a gratuitous bump would make
        every exchange re-ship the (identical) entry forever.
        """
        held = self.sketch.entries.get(self.node.peer_id)
        probe = self._build_own_entry(held.epoch if held is not None else 0)
        if held is not None and (probe.terms, probe.docs) == (
            held.terms,
            held.docs,
        ):
            return False
        entry = SketchEntry(
            probe.origin,
            (held.epoch if held is not None else 0) + 1,
            probe.terms,
            probe.docs,
        )
        self.sketch.entries[entry.origin] = entry
        self._c_refreshes.inc()
        self._g_origins.set(len(self.sketch))
        self._g_entry_bytes.set(MessageSizer.sketch_entry_bytes(entry))
        return True

    # -- gossip-round maintenance ------------------------------------------

    async def maintenance_round(self) -> None:
        """One push-pull exchange per gossip round (when enabled)."""
        if not self.enabled:
            return
        if self.node.round_counter % self.config.refresh_every_rounds == 0:
            self.refresh_local()
        target = self.node._pick_target()
        if target is None:
            return
        # Digest-only opener: our own entry is covered by the versions
        # digest, so a converged community trades ~12 bytes per origin
        # per round, never entries.  The responder answers with what we
        # lack, and the push-back below ships what *it* lacks.
        reply = await self.node._request_peer(
            target, SketchExchange((), self.sketch.versions())
        )
        if not isinstance(reply, SketchReply):
            return
        self._c_exchanges.inc()
        adopted = self.sketch.merge(reply.entries)
        if adopted:
            self._c_merged.inc(adopted)
        # The responder's digest may show *us* ahead on origins it never
        # asked about — push those back so knowledge flows both ways.
        ahead = self.sketch.entries_ahead_of(reply.versions)
        ahead = [e for e in ahead if e not in reply.entries]
        if ahead:
            await self.node._request_peer(
                target,
                SketchExchange(
                    tuple(ahead[: self.config.exchange_entries]), ()
                ),
            )
        self._g_origins.set(len(self.sketch))

    # -- server side --------------------------------------------------------

    def on_exchange(self, msg: SketchExchange) -> SketchReply:
        """Merge pushed entries; answer with what the sender lacks."""
        adopted = self.sketch.merge(msg.entries)
        if adopted:
            self._c_merged.inc(adopted)
        self._g_origins.set(len(self.sketch))
        missing: tuple[SketchEntry, ...] = ()
        if msg.versions:
            missing = tuple(
                self.sketch.entries_ahead_of(msg.versions)[
                    : self.config.exchange_entries
                ]
            )
        return SketchReply(missing, self.sketch.versions())

    def on_top_terms(self, msg: TopTermsRequest) -> TopTermsReply:
        """Serve the converged community top-k estimate."""
        # A node polled before its first gossip round still answers with
        # its own contribution (the rebuild no-ops when nothing changed).
        self.refresh_local()
        k = max(1, min(msg.k, _MAX_TOP_K))
        return TopTermsReply(len(self.sketch), tuple(self.sketch.top_terms(k)))

    def forget(self, origin: int) -> None:
        """Drop a departed origin's entry (T_Dead expiry)."""
        self.sketch.forget(origin)
        self._g_origins.set(len(self.sketch))
