"""The per-peer local inverted index (paper Section 2).

Maps each term to its postings (document id, in-document frequency) and
tracks per-document lengths — exactly the statistics the TF×IDF/TF×IPF
similarity (eq. 2) needs: f_{D,t} per posting and |D| per document.

The index is a plain dict-of-dicts: term -> {doc_id: tf}.  Queries touch a
handful of terms, so per-term dict lookups dominate and numpy buys nothing
here; document scoring across postings, which *is* hot in the search
simulator, is vectorized at the ranking layer instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["InvertedIndex", "Posting"]


@dataclass(frozen=True)
class Posting:
    """One (document, term-frequency) entry in a postings list."""

    doc_id: str
    tf: int

    def __post_init__(self) -> None:
        if self.tf < 1:
            raise ValueError("term frequency must be >= 1")


class InvertedIndex:
    """Term -> postings index over one peer's published documents."""

    __slots__ = ("_postings", "_doc_lengths", "_total_term_count")

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._total_term_count: int = 0

    # -- mutation ------------------------------------------------------------

    def add_document(self, doc_id: str, term_freqs: Mapping[str, int]) -> None:
        """Index a document given its term -> frequency map.

        Re-adding an existing ``doc_id`` raises; call :meth:`remove_document`
        first (PlanetP regenerates the Bloom filter on such changes).
        """
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id!r} is already indexed")
        if not term_freqs:
            self._doc_lengths[doc_id] = 0
            return
        length = 0
        for term, tf in term_freqs.items():
            if tf < 1:
                raise ValueError(f"term frequency must be >= 1 (term {term!r})")
            self._postings.setdefault(term, {})[doc_id] = tf
            length += tf
        self._doc_lengths[doc_id] = length
        self._total_term_count += length

    def remove_document(self, doc_id: str) -> None:
        """Remove every posting of ``doc_id``.

        O(vocabulary) worst case; removals are rare (document deletion or
        re-publication) so simplicity wins over per-doc term tracking.
        """
        if doc_id not in self._doc_lengths:
            raise KeyError(doc_id)
        self._total_term_count -= self._doc_lengths.pop(doc_id)
        empty_terms = []
        for term, docs in self._postings.items():
            if doc_id in docs:
                del docs[doc_id]
                if not docs:
                    empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- queries ---------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        """Postings list for ``term`` (empty if absent)."""
        docs = self._postings.get(term)
        if not docs:
            return []
        return [Posting(doc_id, tf) for doc_id, tf in docs.items()]

    def postings_map(self, term: str) -> Mapping[str, int]:
        """Raw doc_id -> tf mapping for ``term`` (read-only use)."""
        return self._postings.get(term, {})

    def term_frequency(self, term: str, doc_id: str) -> int:
        """f_{D,t}: occurrences of ``term`` in ``doc_id`` (0 if none)."""
        return self._postings.get(term, {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of local documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across local documents (f_t)."""
        return sum(self._postings.get(term, {}).values())

    def document_length(self, doc_id: str) -> int:
        """|D|: total number of term occurrences in ``doc_id``."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise KeyError(doc_id) from None

    def conjunctive_match(self, terms: Iterable[str]) -> set[str]:
        """Document ids containing *every* term (exhaustive-search core).

        Intersects postings smallest-first to keep the working set minimal.
        """
        term_list = list(terms)
        if not term_list:
            return set(self._doc_lengths)
        maps = []
        for term in term_list:
            docs = self._postings.get(term)
            if not docs:
                return set()
            maps.append(docs)
        maps.sort(key=len)
        result = set(maps[0])
        for docs in maps[1:]:
            result.intersection_update(docs)
            if not result:
                break
        return result

    # -- introspection -----------------------------------------------------------

    def terms(self) -> Iterator[str]:
        """Iterate all indexed terms (Bloom filter construction input)."""
        return iter(self._postings)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    def document_ids(self) -> Iterator[str]:
        """Iterate indexed document ids."""
        return iter(self._doc_lengths)

    def total_term_count(self) -> int:
        """Sum of all document lengths."""
        return self._total_term_count

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(docs={self.num_documents()}, "
            f"vocab={self.vocabulary_size()})"
        )
