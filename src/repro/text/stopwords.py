"""English stop-word list.

The classic SMART-style list of high-frequency function words that the
paper's pre-processing removes ("the, of, etc.", Section 7.3).  Stored as a
frozenset for O(1) membership during analysis.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "is_stopword"]

STOPWORDS: frozenset[str] = frozenset(
    """
    a about above across after afterwards again against all almost alone
    along already also although always am among amongst an and another any
    anyhow anyone anything anyway anywhere are around as at back be became
    because become becomes becoming been before beforehand behind being
    below beside besides between beyond both bottom but by call can cannot
    could did do does doing done down during each eg either else elsewhere
    enough etc even ever every everyone everything everywhere except few
    for former formerly from further get gives go had has have he hence her
    here hereafter hereby herein hereupon hers herself him himself his how
    however ie if in indeed instead into is it its itself just keep last
    latter latterly least less ltd made many may me meanwhile might mine
    more moreover most mostly much must my myself namely neither never
    nevertheless next no nobody none noone nor not nothing now nowhere of
    off often on once one only onto or other others otherwise our ours
    ourselves out over own per perhaps please put rather re same see seem
    seemed seeming seems several she should since so some somehow someone
    something sometime sometimes somewhere still such than that the their
    them themselves then thence there thereafter thereby therefore therein
    thereupon these they this those though through throughout thru thus to
    together too toward towards under until up upon us very via was we well
    were what whatever when whence whenever where whereafter whereas whereby
    wherein whereupon wherever whether which while whither who whoever whole
    whom whose why will with within without would yet you your yours
    yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """Whether ``token`` (already lowercased) is a stop word."""
    return token in STOPWORDS
