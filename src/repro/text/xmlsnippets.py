"""XML snippet handling.

Published documents and brokered advertisements are XML snippets
(Sections 2, 4, 6).  We use the standard-library ElementTree for parsing;
per the paper's current behaviour, tags are indexed "simply as normal
terms" — :func:`extract_text` therefore returns element text *and* tag
names, plus attribute values, concatenated in document order.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["XMLSnippet", "extract_text"]


def extract_text(xml_string: str, include_tags: bool = True) -> str:
    """Flatten an XML string into indexable text.

    Tag names and attribute values are included when ``include_tags`` is
    true (the paper indexes tags as ordinary terms).  Raises
    ``ValueError`` on malformed XML.
    """
    try:
        root = ET.fromstring(xml_string)
    except ET.ParseError as exc:
        raise ValueError(f"malformed XML snippet: {exc}") from exc
    parts: list[str] = []

    def visit(elem: ET.Element) -> None:
        if include_tags:
            parts.append(elem.tag)
            parts.extend(str(v) for v in elem.attrib.values())
        if elem.text and elem.text.strip():
            parts.append(elem.text.strip())
        for child in elem:
            visit(child)
            if child.tail and child.tail.strip():
                parts.append(child.tail.strip())

    visit(root)
    return " ".join(parts)


@dataclass(frozen=True)
class XMLSnippet:
    """A published XML snippet: id, raw XML, and extraction options.

    The snippet is the brokerage's unit of publication (Section 4): it
    carries associated keys and a discard time there; in the data store it
    is the document body.
    """

    snippet_id: str
    xml: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.snippet_id:
            raise ValueError("snippet_id must be non-empty")
        # Validate eagerly so malformed snippets fail at publish time.
        extract_text(self.xml)

    def text(self, include_tags: bool = True) -> str:
        """Indexable text of the snippet."""
        return extract_text(self.xml, include_tags=include_tags)

    def to_document(self) -> "Document":
        """View this snippet as an indexable :class:`Document`."""
        from repro.text.document import Document

        return Document(self.snippet_id, self.text(), dict(self.attributes))


from repro.text.document import Document  # noqa: E402  (cycle-free re-export)
