"""The analysis pipeline: tokenize -> stop-word filter -> Porter stem.

One :class:`Analyzer` instance is shared per community so every peer maps
raw text to exactly the same term stream (Section 7.3 pre-processing).
A small LRU-ish memo on stems avoids re-running the stemmer on the long
Zipf tail of repeated words, which profiling shows dominates analysis time.
"""

from __future__ import annotations

from collections import Counter

from repro.text.porter import porter_stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import tokenize

__all__ = ["Analyzer"]


class Analyzer:
    """Configurable text-to-terms pipeline.

    Parameters
    ----------
    remove_stopwords:
        Drop SMART-style stop words (paper default: on).
    stem:
        Apply the Porter stemmer (paper default: on).
    """

    __slots__ = ("remove_stopwords", "stem", "_stem_cache")

    _CACHE_LIMIT = 200_000

    def __init__(self, remove_stopwords: bool = True, stem: bool = True) -> None:
        self.remove_stopwords = remove_stopwords
        self.stem = stem
        self._stem_cache: dict[str, str] = {}

    def analyze(self, text: str) -> list[str]:
        """Full pipeline: ordered list of index terms for ``text``."""
        tokens = tokenize(text)
        if self.remove_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        if self.stem:
            tokens = [self._cached_stem(t) for t in tokens]
        return tokens

    def term_frequencies(self, text: str) -> Counter:
        """Term -> in-document frequency map (f_{D,t} of Section 5.2)."""
        return Counter(self.analyze(text))

    def analyze_query(self, text: str) -> list[str]:
        """Analyze a query string; duplicates removed, order preserved.

        PlanetP's queries are conjunctions of keys (Section 5.1), so
        repeated terms add nothing.
        """
        seen: set[str] = set()
        out: list[str] = []
        for term in self.analyze(text):
            if term not in seen:
                seen.add(term)
                out.append(term)
        return out

    def _cached_stem(self, token: str) -> str:
        stemmed = self._stem_cache.get(token)
        if stemmed is None:
            stemmed = porter_stem(token)
            if len(self._stem_cache) < self._CACHE_LIMIT:
                self._stem_cache[token] = stemmed
        return stemmed
