"""Document model.

PlanetP's unit of storage is an XML document that may link external files
(Section 2).  For the library we model a document as an id, a text body
(already extracted/concatenated from the XML and any indexable linked
files), and optional metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Document"]


@dataclass(frozen=True)
class Document:
    """One published document.

    Attributes
    ----------
    doc_id:
        Community-unique identifier (the publisher namespaces it).
    text:
        Indexable text content.
    metadata:
        Free-form attributes (e.g. URL, owner, external links).
    """

    doc_id: str
    text: str
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")

    def __len__(self) -> int:
        return len(self.text)
