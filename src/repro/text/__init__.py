"""Text analysis substrate: tokenization, stop-word removal, Porter
stemming, XML document handling, and the per-peer inverted index.

The paper (Section 7.3) pre-processes all traces with stop-word removal and
stemming before indexing; Section 2 describes the per-peer local inverted
index that Bloom filters summarize.
"""

from repro.text.tokenizer import tokenize
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.porter import porter_stem
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet, extract_text
from repro.text.invindex import InvertedIndex, Posting

__all__ = [
    "tokenize",
    "STOPWORDS",
    "is_stopword",
    "porter_stem",
    "Analyzer",
    "Document",
    "XMLSnippet",
    "extract_text",
    "InvertedIndex",
    "Posting",
]
