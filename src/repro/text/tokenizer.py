"""Tokenizer: lowercased alphanumeric word extraction.

Deliberately simple and deterministic — the same tokenizer must run at
every peer so that Bloom filter bit positions agree community-wide.
"""

from __future__ import annotations

import re

__all__ = ["tokenize"]

# Words are runs of letters/digits; apostrophes are treated as separators so
# "don't" -> ["don", "t"] (the "t" is later dropped by the length filter).
_WORD_RE = re.compile(r"[a-z0-9]+")

#: Tokens shorter than this are discarded (single letters carry no content).
MIN_TOKEN_LEN = 2

#: Tokens longer than this are discarded (binary junk / URLs).
MAX_TOKEN_LEN = 40


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    Pure-digit tokens are kept (document ids, years); length-filtered to
    ``[MIN_TOKEN_LEN, MAX_TOKEN_LEN]``.
    """
    return [
        tok
        for tok in _WORD_RE.findall(text.lower())
        if MIN_TOKEN_LEN <= len(tok) <= MAX_TOKEN_LEN
    ]
