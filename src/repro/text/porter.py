"""Porter stemming algorithm (Porter 1980), implemented from scratch.

The paper's pre-processing "tries to conflate words to their root (e.g.
running becomes run)" (Section 7.3); the Porter algorithm is the canonical
choice for English.  This is a faithful implementation of the original
five-step algorithm, including the m() measure, the *v*, *d, *o conditions,
and the standard published corrections.

The stemmer is deterministic and community-wide identical, which matters
because stems are what get hashed into Bloom filters.
"""

from __future__ import annotations

__all__ = ["porter_stem", "PorterStemmer"]

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer; use :func:`porter_stem` for convenience."""

    # -- character classes --------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            # 'y' is a consonant at the start or after a vowel; a vowel
            # after a consonant ("syzygy").
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The m() measure: number of VC sequences in the stem."""
        m = 0
        i = 0
        n = len(stem)
        # Skip initial consonants.
        while i < n and cls._is_consonant(stem, i):
            i += 1
        while i < n:
            # Consume vowels.
            while i < n and not cls._is_consonant(stem, i):
                i += 1
            if i >= n:
                break
            m += 1
            # Consume consonants.
            while i < n and cls._is_consonant(stem, i):
                i += 1
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """*o condition: stem ends consonant-vowel-consonant, where the
        final consonant is not w, x or y."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- steps --------------------------------------------------------------

    @classmethod
    def _step1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            if cls._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and cls._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and cls._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("bli", "ble"),  # DEPARTURE in original paper: abli -> able
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
        ("logi", "log"),  # published correction
    )

    @classmethod
    def _step2(cls, word: str) -> str:
        for suffix, replacement in cls._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    @classmethod
    def _step3(cls, word: str) -> str:
        for suffix, replacement in cls._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, word: str) -> str:
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if cls._measure(stem) > 1:
                    return stem
                return word
        # (m>1 and (*S or *T)) ION
        if word.endswith("ion"):
            stem = word[:-3]
            if stem.endswith(("s", "t")) and cls._measure(stem) > 1:
                return stem
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = cls._measure(stem)
            if m > 1 or (m == 1 and not cls._ends_cvc(stem)):
                return stem
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if (
            word.endswith("ll")
            and cls._measure(word[:-1]) > 1
        ):
            return word[:-1]
        return word

    # -- entry point ----------------------------------------------------------

    @classmethod
    def stem(cls, word: str) -> str:
        """Stem one lowercase word.

        Words of length <= 2 are returned unchanged, per the original
        algorithm's recommendation.
        """
        if len(word) <= 2:
            return word
        word = cls._step1a(word)
        word = cls._step1b(word)
        word = cls._step1c(word)
        word = cls._step2(word)
        word = cls._step3(word)
        word = cls._step4(word)
        word = cls._step5a(word)
        word = cls._step5b(word)
        return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word with the Porter algorithm."""
    return PorterStemmer.stem(word)
