"""Small statistics helpers used by the experiment harness.

Includes the linear cost-model fit used to regenerate Table 1 (fixed
overhead + marginal per-key cost), empirical CDFs for the convergence-time
figures, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["LinearFit", "fit_linear", "cdf_points", "percentile", "summarize"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y = intercept + slope * x``."""

    intercept: float
    slope: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x

    def format_cost(self, unit: str = "ms", per: str = "key") -> str:
        """Render in the paper's Table 1 style: ``a + (b * no. keys)``."""
        return f"{self.intercept:.4g} + ({self.slope:.4g} * no. {per}s) {unit}"


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``ys`` against ``xs``.

    Raises ``ValueError`` for fewer than two points or degenerate x.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if x.size < 2:
        raise ValueError("need at least two points to fit a line")
    if np.ptp(x) == 0:
        raise ValueError("xs are all identical; slope is undefined")
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (intercept + slope * x)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(intercept), float(slope), r2)


def cdf_points(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples``.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of samples <=
    ``xs[i]``; ``xs`` is sorted ascending.  Used for the Figure 4/5
    cumulative-percentage-of-events plots.
    """
    xs = np.sort(np.asarray(list(samples), dtype=float))
    if xs.size == 0:
        return xs, xs
    ps = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, ps


def percentile(samples: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sample set")
    return float(np.percentile(arr, q))


def summarize(samples: Iterable[float]) -> dict[str, float]:
    """Mean / median / p90 / p99 / min / max of a sample set."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("summary of empty sample set")
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
