"""A compact, numpy-backed bit array.

This is the storage substrate for Bloom filters and the Golomb bit streams.
Bits are packed into a ``uint64`` word array; all bulk operations (union,
intersection, popcount, set-many) are vectorized per the HPC guide's
"vectorize the inner loop" rule, so a 400 Kbit filter costs a handful of
numpy calls rather than 400 K Python iterations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitArray"]

_WORD_BITS = 64

# Hardware popcount (numpy >= 2.0); fall back to bit-unpacking without it.
_popcount = getattr(np, "bitwise_count", None)


class BitArray:
    """Fixed-size array of bits packed into 64-bit words.

    Parameters
    ----------
    num_bits:
        Total number of addressable bits.
    words:
        Optional pre-existing word buffer (shared, not copied) whose length
        must be ``ceil(num_bits / 64)``.
    """

    __slots__ = ("num_bits", "words")

    def __init__(self, num_bits: int, words: np.ndarray | None = None) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = int(num_bits)
        num_words = (self.num_bits + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self.words = np.zeros(num_words, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (num_words,):
                raise ValueError("words buffer has wrong dtype or shape")
            self.words = words

    # -- single-bit access -------------------------------------------------

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        self.words[index >> 6] |= np.uint64(1) << np.uint64(index & 63)

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        self.words[index >> 6] &= ~(np.uint64(1) << np.uint64(index & 63))

    def get(self, index: int) -> bool:
        """Return whether bit ``index`` is set."""
        self._check(index)
        return bool((self.words[index >> 6] >> np.uint64(index & 63)) & np.uint64(1))

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_bits:
            raise IndexError(f"bit index {index} out of range [0, {self.num_bits})")

    # -- bulk access --------------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        """Set all bits at ``indices`` (vectorized; duplicates allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise IndexError("bit index out of range")
        np.bitwise_or.at(
            self.words, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64)
        )

    def get_many(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array of the bits at ``indices`` (vectorized)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise IndexError("bit index out of range")
        return (
            (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        ).astype(bool)

    def set_bit_positions(self) -> np.ndarray:
        """Return the sorted positions of all set bits."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        positions = np.nonzero(bits[: self.num_bits])[0]
        return positions.astype(np.int64)

    # -- whole-array operations ----------------------------------------------

    def count(self) -> int:
        """Population count (number of set bits)."""
        if _popcount is not None:
            return int(_popcount(self.words).sum())
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    def union_inplace(self, other: "BitArray") -> None:
        """Bitwise OR ``other`` into this array."""
        self._check_compatible(other)
        np.bitwise_or(self.words, other.words, out=self.words)

    def intersection_inplace(self, other: "BitArray") -> None:
        """Bitwise AND ``other`` into this array."""
        self._check_compatible(other)
        np.bitwise_and(self.words, other.words, out=self.words)

    def difference_words(self, other: "BitArray") -> np.ndarray:
        """Return ``self & ~other`` as a raw word buffer (bits newly set
        here relative to ``other``)."""
        self._check_compatible(other)
        return self.words & ~other.words

    def xor_words(self, other: "BitArray") -> np.ndarray:
        """Return ``self ^ other`` as a raw word buffer."""
        self._check_compatible(other)
        return self.words ^ other.words

    def _check_compatible(self, other: "BitArray") -> None:
        if self.num_bits != other.num_bits:
            raise ValueError(
                f"bit arrays differ in size: {self.num_bits} vs {other.num_bits}"
            )

    def copy(self) -> "BitArray":
        """Deep copy."""
        return BitArray(self.num_bits, self.words.copy())

    def clear_all(self) -> None:
        """Reset every bit to 0."""
        self.words[:] = 0

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Raw little-endian word buffer."""
        return self.words.tobytes()

    @classmethod
    def from_bytes(cls, num_bits: int, data: bytes) -> "BitArray":
        """Inverse of :meth:`to_bytes`."""
        words = np.frombuffer(data, dtype=np.uint64).copy()
        return cls(num_bits, words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self.num_bits == other.num_bits and bool(
            np.array_equal(self.words, other.words)
        )

    # Mutable with value equality: explicitly unhashable (same rationale as
    # BloomFilter — equal-but-mutable arrays must not land in sets/dicts).
    __hash__ = None  # type: ignore[assignment]

    def __len__(self) -> int:
        return self.num_bits

    def __repr__(self) -> str:
        return f"BitArray(num_bits={self.num_bits}, set={self.count()})"
