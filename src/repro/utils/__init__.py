"""Shared low-level utilities: RNG handling, bit operations, statistics,
and random distributions used across the PlanetP reproduction."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.bitops import BitArray
from repro.utils.stats import (
    LinearFit,
    cdf_points,
    fit_linear,
    percentile,
    summarize,
)
from repro.utils.distributions import (
    weibull_weights,
    zipf_pmf,
    sample_categorical,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "BitArray",
    "LinearFit",
    "cdf_points",
    "fit_linear",
    "percentile",
    "summarize",
    "weibull_weights",
    "zipf_pmf",
    "sample_categorical",
]
