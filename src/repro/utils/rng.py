"""Deterministic random-number-generator plumbing.

Every stochastic component in the reproduction (gossip target selection,
churn processes, corpus generation, document partitioning) takes an explicit
:class:`numpy.random.Generator`.  These helpers centralize construction so
that a single integer seed reproduces an entire experiment, and so that
independent components get independent streams (via ``spawn``) rather than
sharing one generator whose consumption order would couple them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged so
    call sites can be seed-or-generator polymorphic), or ``None`` for an
    OS-entropy-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` so the children's streams do
    not overlap regardless of how much each consumes.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return make_rng(seed).spawn(n)
