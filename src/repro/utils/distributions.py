"""Random distributions used by the corpus generator and peer partitioner.

The paper distributes documents over peers following a Weibull law (matching
observations of real file-sharing communities) and natural-language term
frequencies follow a Zipf law; both are provided here as explicit weight /
pmf constructors so experiments can reason about them deterministically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weibull_weights", "zipf_pmf", "sample_categorical"]


def weibull_weights(
    n: int, shape: float = 0.7, scale: float = 1.0, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Per-peer document-share weights drawn from a Weibull distribution.

    Returns ``n`` positive weights normalized to sum to 1.  A shape
    parameter below 1 yields the heavy skew seen in P2P communities: a few
    peers share a great deal, most share little.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    gen = rng if rng is not None else np.random.default_rng()
    draws = scale * gen.weibull(shape, size=n)
    # Guard against an all-zero pathological draw.
    draws = np.maximum(draws, np.finfo(float).tiny)
    return draws / draws.sum()


def zipf_pmf(vocab_size: int, exponent: float = 1.0) -> np.ndarray:
    """Zipf(-Mandelbrot, q=0) probability mass over ranks ``1..vocab_size``.

    ``pmf[r-1]`` is proportional to ``1 / r**exponent``.
    """
    if vocab_size <= 0:
        raise ValueError("vocab_size must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, vocab_size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_categorical(
    pmf: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` category indices from ``pmf`` (vectorized inverse-CDF).

    Equivalent to ``rng.choice(len(pmf), size, p=pmf)`` but substantially
    faster for large ``size`` because it reuses one cumulative sum.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    p = np.asarray(pmf, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("pmf must be a non-empty 1-D array")
    if np.any(p < 0):
        raise ValueError("pmf entries must be non-negative")
    total = p.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("pmf must have positive finite mass")
    cdf = np.cumsum(p)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)
