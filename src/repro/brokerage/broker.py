"""A single broker node: keyed snippet storage with discard times.

Information is published as an XML snippet with associated keys (terms)
and a discard time; the snippet is dropped once the discard time expires
(paper Section 4).  Storage is in-memory only — the service intentionally
offers no durability.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BrokeredSnippet", "Broker"]


@dataclass(frozen=True)
class BrokeredSnippet:
    """One published advertisement."""

    snippet_id: str
    xml: str
    keys: tuple[str, ...]
    publisher: int
    discard_at: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("a brokered snippet needs at least one key")

    def expired(self, now: float) -> bool:
        """Whether the snippet's discard time has passed."""
        return now >= self.discard_at


class Broker:
    """Key -> snippets store for one member's slice of the key space."""

    def __init__(self, member_id: int) -> None:
        self.member_id = member_id
        self._by_key: dict[str, dict[str, BrokeredSnippet]] = {}

    def store(self, key: str, snippet: BrokeredSnippet) -> None:
        """Hold ``snippet`` under ``key`` until its discard time."""
        self._by_key.setdefault(key, {})[snippet.snippet_id] = snippet

    def lookup(self, key: str, now: float) -> list[BrokeredSnippet]:
        """Unexpired snippets for ``key`` (and lazily drop expired ones)."""
        bucket = self._by_key.get(key)
        if not bucket:
            return []
        live = {sid: s for sid, s in bucket.items() if not s.expired(now)}
        if len(live) != len(bucket):
            if live:
                self._by_key[key] = live
            else:
                del self._by_key[key]
        return sorted(live.values(), key=lambda s: s.snippet_id)

    def purge_expired(self, now: float) -> int:
        """Eagerly drop all expired snippets; returns how many."""
        dropped = 0
        for key in list(self._by_key):
            bucket = self._by_key[key]
            live = {sid: s for sid, s in bucket.items() if not s.expired(now)}
            dropped += len(bucket) - len(live)
            if live:
                self._by_key[key] = live
            else:
                del self._by_key[key]
        return dropped

    def all_entries(self) -> list[tuple[str, BrokeredSnippet]]:
        """Every (key, snippet) pair held (for handoff on leave)."""
        return [
            (key, snippet)
            for key, bucket in self._by_key.items()
            for snippet in bucket.values()
        ]

    def num_snippets(self) -> int:
        """Count of (key, snippet) entries held."""
        return sum(len(b) for b in self._by_key.values())

    def __repr__(self) -> str:
        return f"Broker(member={self.member_id}, entries={self.num_snippets()})"
