"""The information brokerage service (paper Section 4).

An *optional* optimization layered over gossiping: peers publish XML
snippets with associated keys and a discard time; brokers partition the
key space with consistent hashing so new content is findable before the
publisher's next Bloom filter diffuses.  The service deliberately makes no
safety guarantee — a broker leaving abruptly loses its snippets.
"""

from repro.brokerage.broker import Broker, BrokeredSnippet
from repro.brokerage.ring import ConsistentHashRing
from repro.brokerage.service import BrokerageService

__all__ = [
    "ConsistentHashRing",
    "Broker",
    "BrokeredSnippet",
    "BrokerageService",
]
