"""The community-level brokerage service API (paper Section 4).

Combines the consistent-hash ring with per-member brokers: publishing a
snippet routes (key, snippet) pairs to the responsible brokers; lookups
route each key the same way.  Member churn re-partitions the key space;
on a *graceful* leave the departing broker hands its entries to their new
owners, while an *abrupt* leave loses them — the no-safety-guarantee
behaviour the paper calls out explicitly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.brokerage.broker import Broker, BrokeredSnippet
from repro.brokerage.ring import ConsistentHashRing

__all__ = ["BrokerageService"]


class BrokerageService:
    """Publish/lookup service over a ring of member brokers.

    A ``clock`` callable supplies the current time (seconds); pass the
    simulator's clock when running under simulation, ``time.time`` for
    wall-clock use.
    """

    def __init__(
        self, clock: Callable[[], float], max_id: int = ConsistentHashRing.DEFAULT_MAX_ID
    ) -> None:
        self.ring = ConsistentHashRing(max_id)
        self._brokers: dict[int, Broker] = {}
        self.clock = clock

    # -- membership --------------------------------------------------------

    def add_member(self, member_id: int) -> None:
        """A member starts brokering; it takes over its arc's entries."""
        if member_id in self._brokers:
            raise ValueError(f"member {member_id} already brokering")
        self.ring.add_broker(member_id)
        broker = Broker(member_id)
        self._brokers[member_id] = broker
        # Entries in the new broker's arc move from their previous owners.
        for other_id in list(self._brokers):
            if other_id == member_id:
                continue
            other = self._brokers[other_id]
            entries = other.all_entries()
            moved = [(k, s) for k, s in entries if self.ring.broker_for(k) == member_id]
            if not moved:
                continue
            for key, snippet in moved:
                broker.store(key, snippet)
            replacement = Broker(other_id)
            for key, snippet in entries:
                if self.ring.broker_for(key) != member_id:
                    replacement.store(key, snippet)
            self._brokers[other_id] = replacement

    def remove_member(self, member_id: int, graceful: bool = True) -> None:
        """A member stops brokering.

        ``graceful`` hands its entries to their new owners; an abrupt
        departure (``graceful=False``) loses them, per the paper's
        explicit non-guarantee.
        """
        broker = self._brokers.pop(member_id, None)
        if broker is None:
            raise KeyError(member_id)
        self.ring.remove_broker(member_id)
        if graceful and len(self.ring) > 0:
            for key, snippet in broker.all_entries():
                self._brokers[self.ring.broker_for(key)].store(key, snippet)

    def members(self) -> list[int]:
        """Member ids currently brokering."""
        return sorted(self._brokers)

    # -- publish / lookup -----------------------------------------------------------

    def publish(
        self,
        snippet_id: str,
        xml: str,
        keys: list[str],
        publisher: int,
        ttl_s: float,
        attributes: Mapping[str, Any] | None = None,
    ) -> BrokeredSnippet:
        """Publish a snippet under ``keys`` for ``ttl_s`` seconds."""
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        if not self._brokers:
            raise LookupError("no brokers in the community")
        snippet = BrokeredSnippet(
            snippet_id=snippet_id,
            xml=xml,
            keys=tuple(keys),
            publisher=publisher,
            discard_at=self.clock() + ttl_s,
            attributes=attributes or {},
        )
        for key in snippet.keys:
            self._brokers[self.ring.broker_for(key)].store(key, snippet)
        return snippet

    def lookup(self, key: str) -> list[BrokeredSnippet]:
        """Unexpired snippets published under ``key``."""
        if not self._brokers:
            return []
        broker = self._brokers[self.ring.broker_for(key)]
        return broker.lookup(key, self.clock())

    def lookup_all(self, keys: list[str]) -> list[BrokeredSnippet]:
        """Snippets matching *every* key (conjunctive, like queries)."""
        if not keys:
            return []
        result: dict[str, BrokeredSnippet] | None = None
        for key in keys:
            found = {s.snippet_id: s for s in self.lookup(key)}
            if result is None:
                result = found
            else:
                result = {sid: s for sid, s in result.items() if sid in found}
            if not result:
                return []
        assert result is not None
        return sorted(result.values(), key=lambda s: s.snippet_id)

    def total_entries(self) -> int:
        """Total (key, snippet) entries across all brokers."""
        return sum(b.num_snippets() for b in self._brokers.values())

    def broker_of(self, key: str) -> int:
        """Which member brokers ``key`` right now."""
        return self.ring.broker_for(key)
