"""Consistent hashing ring (Karger et al.), as used by the brokerage.

Each active member chooses a unique broker ID in ``[0, max_id)``; members
arrange themselves on a ring ordered by ID.  A key maps to the broker
whose ID is the least successor of ``H(key) mod max_id`` (wrapping).
Adding or removing a broker only re-maps the keys in its arc — the
property that makes churn cheap.
"""

from __future__ import annotations

import bisect

from repro.bloom.hashing import fnv1a_64

__all__ = ["ConsistentHashRing"]


class ConsistentHashRing:
    """Maps string keys to broker ids on a ring.

    Parameters
    ----------
    max_id:
        Size of the ID space (the paper's predetermined ``maxID``).
    """

    DEFAULT_MAX_ID = 2**32

    def __init__(self, max_id: int = DEFAULT_MAX_ID) -> None:
        if max_id < 2:
            raise ValueError("max_id must be at least 2")
        self.max_id = max_id
        self._ids: list[int] = []  # sorted ring positions
        self._members: dict[int, int] = {}  # ring position -> member id

    # -- membership --------------------------------------------------------

    def add_broker(self, member_id: int, ring_id: int | None = None) -> int:
        """Place ``member_id`` on the ring.

        ``ring_id`` defaults to a hash of the member id (deterministic,
        well-spread).  Raises on a ring-position collision — IDs must be
        unique per the paper.
        """
        if ring_id is None:
            ring_id = fnv1a_64(str(member_id).encode(), seed=7) % self.max_id
        if not 0 <= ring_id < self.max_id:
            raise ValueError(f"ring_id {ring_id} outside [0, {self.max_id})")
        if ring_id in self._members:
            raise ValueError(f"ring position {ring_id} already taken")
        bisect.insort(self._ids, ring_id)
        self._members[ring_id] = member_id
        return ring_id

    def remove_broker(self, member_id: int) -> None:
        """Remove ``member_id`` from the ring."""
        positions = [r for r, m in self._members.items() if m == member_id]
        if not positions:
            raise KeyError(member_id)
        for ring_id in positions:
            del self._members[ring_id]
            idx = bisect.bisect_left(self._ids, ring_id)
            del self._ids[idx]

    def brokers(self) -> list[int]:
        """Member ids currently on the ring (ring order)."""
        return [self._members[r] for r in self._ids]

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, member_id: int) -> bool:
        return any(m == member_id for m in self._members.values())

    # -- lookup ---------------------------------------------------------------

    def key_position(self, key: str) -> int:
        """``H(key) mod max_id``."""
        return fnv1a_64(key.encode("utf-8"), seed=11) % self.max_id

    def successor_of(self, position: int) -> int:
        """The member owning ring position ``position`` (least successor,
        wrapping around zero)."""
        if not self._ids:
            raise LookupError("ring is empty")
        idx = bisect.bisect_left(self._ids, position % self.max_id)
        if idx == len(self._ids):
            idx = 0
        return self._members[self._ids[idx]]

    def broker_for(self, key: str) -> int:
        """The member responsible for ``key``."""
        return self.successor_of(self.key_position(key))

    def successors_of(self, position: int, k: int) -> list[int]:
        """Up to ``k`` *distinct* member ids clockwise from ``position``.

        Walks the ring from the least successor of ``position`` (wrapping
        around zero), skipping virtual positions of members already
        collected — the replica-set primitive: with one position per
        member this is "the next k brokers"; with virtual points it is
        the next k distinct owners.  Returns fewer than ``k`` when the
        ring has fewer distinct members.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        if not self._ids or k == 0:
            return []
        start = bisect.bisect_left(self._ids, position % self.max_id)
        found: list[int] = []
        for step in range(len(self._ids)):
            member = self._members[self._ids[(start + step) % len(self._ids)]]
            if member not in found:
                found.append(member)
                if len(found) == k:
                    break
        return found

    def successors_for(self, key: str, k: int) -> list[int]:
        """Up to ``k`` distinct members clockwise from ``H(key)``."""
        return self.successors_of(self.key_position(key), k)

    def arc_of(self, member_id: int) -> tuple[int, int]:
        """The half-open ring arc ``(predecessor_pos, own_pos]`` whose keys
        the member owns.  Useful for handoff on join/leave."""
        positions = sorted(r for r, m in self._members.items() if m == member_id)
        if not positions:
            raise KeyError(member_id)
        own = positions[0]
        idx = self._ids.index(own)
        pred = self._ids[idx - 1] if len(self._ids) > 1 else own
        return pred, own
