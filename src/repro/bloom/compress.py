"""Run-length + Golomb compression of Bloom filters (paper Section 7.1).

The prototype gossips fixed 50 KB filters, so it compresses them with a
run-length scheme over the gaps between set bits, Golomb-coding each gap.
For a filter holding n terms with k hashes the set-bit density is about
``k*n/m``, so gaps are near-geometric and Golomb coding approaches the
entropy bound — the authors report it beating gzip in this context.

Wire format (all integers big-endian):

==========  =====================================================
bytes 0-3   number of set bits (uint32)
bytes 4-7   Golomb parameter m (uint32)
bytes 8-11  filter width in bits (uint32)
bytes 12+   Golomb-coded gap stream (first gap = first position,
            subsequent gaps = distance-1 between consecutive bits)
==========  =====================================================

Hot-path notes: the gap stream is encoded/decoded with the vectorized
codec (:func:`repro.bloom.golomb.encode_gaps` / ``decode_gaps``), and the
encoded bytes are memoized on the filter instance keyed by its mutation
:attr:`~repro.bloom.filter.BloomFilter.version` — a gossip round that
re-sends an unchanged filter never re-encodes it.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import decode_gaps, encode_gaps, optimal_golomb_m
from repro.obs import global_registry

__all__ = ["compress_filter", "decompress_filter", "compressed_size"]

_HEADER = struct.Struct(">III")


def _record_compression(raw_bytes: int, compressed_bytes: int) -> None:
    """Table 1 on a live node: pre/post-compression filter bytes.

    Recorded into the process-global registry so a node's
    ``StatsResponse`` and ``render_text`` dumps expose the compression
    ratio the paper reports (Golomb beating gzip on sparse filters).
    Cache hits are tracked separately and do not re-count bytes, so the
    ratio always reflects distinct encodings.
    """
    registry = global_registry()
    registry.counter(
        "bloom", "compressions_total", "Bloom filters compressed"
    ).inc()
    registry.counter(
        "bloom", "pre_compression_bytes_total", "raw filter bytes before Golomb"
    ).inc(raw_bytes)
    registry.counter(
        "bloom", "post_compression_bytes_total", "filter bytes after Golomb"
    ).inc(compressed_bytes)


def _record_cache_hit() -> None:
    global_registry().counter(
        "bloom",
        "compression_cache_hits_total",
        "compressed-filter encodings served from the version cache",
    ).inc()


def compress_filter(bf: BloomFilter, *, use_cache: bool = True) -> bytes:
    """Compress ``bf`` into the wire format described in the module docs.

    With ``use_cache`` (the default) the encoded bytes are memoized on the
    filter keyed by its mutation version; any mutation invalidates the
    memo.  Pass ``use_cache=False`` to force a fresh encoding (benchmarks
    measuring the codec itself).
    """
    if use_cache:
        cached = bf._compressed_cache
        if cached is not None and cached[0] == bf.version:
            _record_cache_hit()
            return cached[1]
    positions = bf.bits.set_bit_positions()
    count = int(positions.size)
    if count == 0:
        blob = _HEADER.pack(0, 1, bf.num_bits)
    else:
        density = count / bf.num_bits
        m = optimal_golomb_m(min(density, 0.999999))
        gaps = np.empty(count, dtype=np.int64)
        gaps[0] = positions[0]
        gaps[1:] = np.diff(positions) - 1
        blob = _HEADER.pack(count, m, bf.num_bits) + encode_gaps(gaps, m)
    _record_compression(bf.num_bits // 8, len(blob))
    if use_cache:
        bf._compressed_cache = (bf.version, blob)
    return blob


def decompress_filter(
    data: bytes, num_hashes: int = 2, num_inserted: int = 0
) -> BloomFilter:
    """Inverse of :func:`compress_filter`.

    ``num_hashes`` and ``num_inserted`` are metadata not carried on the
    wire (they are fixed community-wide / tracked by the directory).
    """
    if len(data) < _HEADER.size:
        raise ValueError("truncated compressed Bloom filter")
    count, m, num_bits = _HEADER.unpack_from(data, 0)
    bf = BloomFilter(num_bits, num_hashes)
    bf.num_inserted = num_inserted
    if count == 0:
        return bf
    try:
        gaps = decode_gaps(data[_HEADER.size :], count, m)
    except EOFError as exc:
        raise ValueError("corrupt stream: Golomb data exhausted early") from exc
    positions = np.cumsum(gaps + 1) - 1
    if positions[-1] >= num_bits:
        raise ValueError("corrupt stream: bit position beyond filter width")
    bf.set_positions(positions)
    return bf


def compressed_size(bf: BloomFilter, *, use_cache: bool = True) -> int:
    """Size in bytes of the compressed encoding of ``bf``."""
    return len(compress_filter(bf, use_cache=use_cache))
