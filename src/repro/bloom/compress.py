"""Run-length + Golomb compression of Bloom filters (paper Section 7.1).

The prototype gossips fixed 50 KB filters, so it compresses them with a
run-length scheme over the gaps between set bits, Golomb-coding each gap.
For a filter holding n terms with k hashes the set-bit density is about
``k*n/m``, so gaps are near-geometric and Golomb coding approaches the
entropy bound — the authors report it beating gzip in this context.

Wire format (all integers big-endian):

==========  =====================================================
bytes 0-3   number of set bits (uint32)
bytes 4-7   Golomb parameter m (uint32)
bytes 8-11  filter width in bits (uint32)
bytes 12+   Golomb-coded gap stream (first gap = first position,
            subsequent gaps = distance-1 between consecutive bits)
==========  =====================================================
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import GolombDecoder, GolombEncoder, optimal_golomb_m

__all__ = ["compress_filter", "decompress_filter", "compressed_size"]

_HEADER = struct.Struct(">III")


def compress_filter(bf: BloomFilter) -> bytes:
    """Compress ``bf`` into the wire format described in the module docs."""
    positions = bf.bits.set_bit_positions()
    count = int(positions.size)
    if count == 0:
        return _HEADER.pack(0, 1, bf.num_bits)
    density = count / bf.num_bits
    m = optimal_golomb_m(min(density, 0.999999))
    gaps = np.empty(count, dtype=np.int64)
    gaps[0] = positions[0]
    gaps[1:] = np.diff(positions) - 1
    encoder = GolombEncoder(m)
    encoder.encode_many(gaps.tolist())
    return _HEADER.pack(count, m, bf.num_bits) + encoder.getvalue()


def decompress_filter(
    data: bytes, num_hashes: int = 2, num_inserted: int = 0
) -> BloomFilter:
    """Inverse of :func:`compress_filter`.

    ``num_hashes`` and ``num_inserted`` are metadata not carried on the
    wire (they are fixed community-wide / tracked by the directory).
    """
    if len(data) < _HEADER.size:
        raise ValueError("truncated compressed Bloom filter")
    count, m, num_bits = _HEADER.unpack_from(data, 0)
    bf = BloomFilter(num_bits, num_hashes)
    bf.num_inserted = num_inserted
    if count == 0:
        return bf
    decoder = GolombDecoder(m, data[_HEADER.size :])
    try:
        gaps = np.asarray(decoder.decode_many(count), dtype=np.int64)
    except EOFError as exc:
        raise ValueError("corrupt stream: Golomb data exhausted early") from exc
    positions = np.cumsum(gaps + 1) - 1
    if positions[-1] >= num_bits:
        raise ValueError("corrupt stream: bit position beyond filter width")
    bf.bits.set_many(positions)
    return bf


def compressed_size(bf: BloomFilter) -> int:
    """Size in bytes of the compressed encoding of ``bf``."""
    return len(compress_filter(bf))
