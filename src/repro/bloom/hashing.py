"""A deterministic family of string hash functions for Bloom filters.

We derive the k filter indices from two independent 64-bit FNV-1a hashes
using the standard double-hashing construction ``h_i = h1 + i * h2``
(Kirsch & Mitzenmacher), which is indistinguishable from k independent
hashes for Bloom-filter purposes while costing only two string passes.
Everything is pure-Python/numpy and stable across processes (unlike the
built-in ``hash``), so filters gossiped between peers agree on bit
positions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashFamily", "fnv1a_64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, tweaked by ``seed``.

    FNV-1a alone is nearly linear in the final bytes (sequential strings
    hash to arithmetic progressions, which makes ``h1 + i*h2`` double
    hashing collapse); a splitmix64-style avalanche finalizer breaks that
    structure.
    """
    h = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    # Avalanche finalizer (splitmix64's mixing steps).
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return h


class HashFamily:
    """Maps strings to ``num_hashes`` bit positions in ``[0, num_bits)``.

    Instances are immutable and cheap; two families with equal parameters
    produce identical positions, which is what lets independently built
    filters at different peers be compared and merged.
    """

    __slots__ = ("num_bits", "num_hashes", "_offsets")

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self._offsets = np.arange(num_hashes, dtype=np.uint64)

    def positions(self, term: str) -> np.ndarray:
        """Bit positions for one term (shape ``(num_hashes,)``)."""
        data = term.encode("utf-8")
        h1 = fnv1a_64(data, seed=0)
        h2 = fnv1a_64(data, seed=1) | 1  # odd => full-period stepping
        mixed = (np.uint64(h1) + self._offsets * np.uint64(h2)) & np.uint64(_MASK64)
        return (mixed % np.uint64(self.num_bits)).astype(np.int64)

    def positions_many(self, terms: list[str]) -> np.ndarray:
        """Bit positions for many terms (shape ``(len(terms), num_hashes)``).

        The per-term hashing is a Python loop (string hashing is inherently
        per-object), but the double-hash expansion across ``num_hashes`` is
        vectorized.
        """
        n = len(terms)
        h1 = np.empty(n, dtype=np.uint64)
        h2 = np.empty(n, dtype=np.uint64)
        for i, term in enumerate(terms):
            data = term.encode("utf-8")
            h1[i] = fnv1a_64(data, seed=0)
            h2[i] = fnv1a_64(data, seed=1) | 1
        mixed = (h1[:, None] + self._offsets[None, :] * h2[:, None]) & np.uint64(
            _MASK64
        )
        return (mixed % np.uint64(self.num_bits)).astype(np.int64)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.num_bits == other.num_bits and self.num_hashes == other.num_hashes

    def __hash__(self) -> int:
        return hash((self.num_bits, self.num_hashes))

    def __repr__(self) -> str:
        return f"HashFamily(num_bits={self.num_bits}, num_hashes={self.num_hashes})"
