"""Batched query matching over many peers' Bloom filters.

The paper's search modes test a query against *every* member's replicated
filter (Section 5): exhaustive search needs "which peers may hold all
terms", ranked search needs the full peer × term hit matrix for eq. 3.
Doing that with one Python call per peer re-hashes the query N times and
pays N rounds of interpreter overhead — the dominant cost at the
2000-peer scale of Figure 5.

:class:`FilterMatrix` removes both: the filters' ``uint64`` word buffers
are stacked into one 2-D matrix (one row per peer), the query's terms are
hashed exactly once, and membership for all peers × all terms is answered
with a single vectorized gather.  The matrix is maintained incrementally —
:meth:`sync` reconciles against the owning directory and re-copies a row
only when that peer's filter object or mutation
:attr:`~repro.bloom.filter.BloomFilter.version` changed, so steady-state
queries touch no filter bytes at all.

Filters whose geometry differs from the matrix majority (different width
or hash count — not expected in a real community, where the filter
configuration is community-wide) are kept aside and matched individually,
preserving exact drop-in semantics.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import HashFamily

__all__ = ["FilterMatrix"]


class FilterMatrix:
    """Stacked Bloom-filter rows supporting one-shot multi-peer matching."""

    def __init__(self) -> None:
        self._hashes: HashFamily | None = None
        self._words: np.ndarray | None = None  # (capacity, words_per_filter)
        self._row_of: dict[int, int] = {}
        self._peer_of: list[int] = []
        #: strong ref + version per row, to detect replaced/mutated filters.
        self._state: list[tuple[BloomFilter, int]] = []
        #: peers whose filters don't share the matrix geometry.
        self._irregular: dict[int, BloomFilter] = {}

    def __len__(self) -> int:
        return len(self._peer_of) + len(self._irregular)

    @property
    def peer_ids(self) -> list[int]:
        """Peers currently held (matrix rows plus irregular fallbacks)."""
        return [*self._row_of, *self._irregular]

    # -- maintenance -------------------------------------------------------

    def update(self, peer_id: int, bf: BloomFilter) -> None:
        """Install/refresh one peer's filter (no-op if object and version
        are unchanged since the last update)."""
        if self._hashes is None:
            self._hashes = bf.hashes
        if bf.hashes != self._hashes:
            self._drop_row(peer_id)
            self._irregular[peer_id] = bf
            return
        self._irregular.pop(peer_id, None)
        row = self._row_of.get(peer_id)
        if row is None:
            row = len(self._peer_of)
            self._ensure_capacity(row + 1)
            self._row_of[peer_id] = row
            self._peer_of.append(peer_id)
            self._state.append((bf, -1))
        held, version = self._state[row]
        if held is bf and version == bf.version:
            return
        assert self._words is not None
        self._words[row, :] = bf.bits.words
        self._state[row] = (bf, bf.version)

    def remove(self, peer_id: int) -> None:
        """Forget a peer (directory drop)."""
        self._irregular.pop(peer_id, None)
        self._drop_row(peer_id)

    def sync(self, filters: Iterable[tuple[int, BloomFilter]]) -> None:
        """Reconcile against the directory's current ``(peer_id, filter)``
        pairs: update changed rows, drop peers no longer present."""
        seen = set()
        for peer_id, bf in filters:
            seen.add(peer_id)
            self.update(peer_id, bf)
        for peer_id in [p for p in self._row_of if p not in seen]:
            self._drop_row(peer_id)
        for peer_id in [p for p in self._irregular if p not in seen]:
            del self._irregular[peer_id]

    def _drop_row(self, peer_id: int) -> None:
        row = self._row_of.pop(peer_id, None)
        if row is None:
            return
        last = len(self._peer_of) - 1
        assert self._words is not None
        if row != last:
            moved = self._peer_of[last]
            self._words[row, :] = self._words[last, :]
            self._state[row] = self._state[last]
            self._peer_of[row] = moved
            self._row_of[moved] = row
        self._peer_of.pop()
        self._state.pop()

    def _ensure_capacity(self, rows: int) -> None:
        assert self._hashes is not None
        words_per_filter = (self._hashes.num_bits + 63) // 64
        if self._words is None:
            cap = max(8, rows)
            self._words = np.zeros((cap, words_per_filter), dtype=np.uint64)
        elif rows > self._words.shape[0]:
            cap = max(rows, self._words.shape[0] * 2)
            grown = np.zeros((cap, words_per_filter), dtype=np.uint64)
            grown[: self._words.shape[0], :] = self._words
            self._words = grown

    # -- matching ----------------------------------------------------------

    def _gather_hits(self, positions: np.ndarray) -> tuple[list[int], np.ndarray]:
        """Bit values at ``positions`` for every row: ``(peers, (P, len))``."""
        count = len(self._peer_of)
        if count == 0 or positions.size == 0:
            return list(self._peer_of), np.ones((count, positions.size), dtype=bool)
        assert self._words is not None
        idx = positions.ravel()
        cols = (idx >> 6).astype(np.int64)
        masks = np.uint64(1) << (idx & 63).astype(np.uint64)
        sub = self._words[:count, cols]
        return list(self._peer_of), (sub & masks[None, :]) != 0

    def hit_matrix(self, terms: Sequence[str]) -> tuple[list[int], np.ndarray]:
        """Per-peer, per-term membership: ``(peer_ids, bool (P, T))``.

        The query is hashed once; irregular filters are appended as extra
        rows computed individually.
        """
        term_list = list(terms)
        if self._hashes is None or not term_list:
            peers = self.peer_ids
            return peers, np.ones((len(peers), len(term_list)), dtype=bool)
        positions = self._hashes.positions_many(term_list)  # (T, k)
        peers, bit_hits = self._gather_hits(positions)
        hits = bit_hits.reshape(len(peers), *positions.shape).all(axis=2)
        for peer_id, bf in self._irregular.items():
            peers.append(peer_id)
            hits = np.vstack([hits, bf.contains_each(term_list)[None, :]])
        return peers, hits

    def match_all_terms(self, terms: Sequence[str]) -> list[int]:
        """Peers whose filters may contain *every* term (unsorted)."""
        term_list = list(terms)
        if self._hashes is None or not term_list:
            return self.peer_ids
        positions = self._hashes.positions_many(term_list).ravel()
        peers, bit_hits = self._gather_hits(positions)
        ok = bit_hits.all(axis=1)
        matched = [pid for pid, hit in zip(peers, ok) if hit]
        matched.extend(
            pid for pid, bf in self._irregular.items() if bf.contains_all(term_list)
        )
        return matched

    # -- mapping convenience ------------------------------------------------

    def sync_mapping(self, filters: Mapping[int, BloomFilter]) -> None:
        """:meth:`sync` over a ``{peer_id: filter}`` mapping."""
        self.sync(filters.items())

    def __repr__(self) -> str:
        return (
            f"FilterMatrix(peers={len(self)}, "
            f"irregular={len(self._irregular)})"
        )
