"""Batched query matching over many peers' Bloom filters.

The paper's search modes test a query against *every* member's replicated
filter (Section 5): exhaustive search needs "which peers may hold all
terms", ranked search needs the full peer × term hit matrix for eq. 3.
Doing that with one Python call per peer re-hashes the query N times and
pays N rounds of interpreter overhead — the dominant cost at the
2000-peer scale of Figure 5.

:class:`FilterMatrix` removes both: the filters' ``uint64`` word buffers
are stacked into one 2-D matrix (one row per peer), the query's terms are
hashed exactly once, and membership for all peers × all terms is answered
with a single vectorized gather.  The matrix is maintained incrementally —
:meth:`sync` reconciles against the owning directory and re-copies a row
only when that peer's filter object or mutation
:attr:`~repro.bloom.filter.BloomFilter.version` changed, so steady-state
queries touch no filter bytes at all.

Filters whose geometry differs from the matrix majority (different width
or hash count — not expected in a real community, where the filter
configuration is community-wide) are kept aside and matched individually,
preserving exact drop-in semantics.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import HashFamily

__all__ = ["FilterMatrix", "ShardedFilterMatrix"]


class FilterMatrix:
    """Stacked Bloom-filter rows supporting one-shot multi-peer matching."""

    def __init__(self) -> None:
        self._hashes: HashFamily | None = None
        self._words: np.ndarray | None = None  # (capacity, words_per_filter)
        self._row_of: dict[int, int] = {}
        self._peer_of: list[int] = []
        #: strong ref + version per row, to detect replaced/mutated filters.
        self._state: list[tuple[BloomFilter, int]] = []
        #: peers whose filters don't share the matrix geometry.
        self._irregular: dict[int, BloomFilter] = {}

    def __len__(self) -> int:
        return len(self._peer_of) + len(self._irregular)

    @property
    def peer_ids(self) -> list[int]:
        """Peers currently held (matrix rows plus irregular fallbacks)."""
        return [*self._row_of, *self._irregular]

    # -- maintenance -------------------------------------------------------

    def update(self, peer_id: int, bf: BloomFilter) -> None:
        """Install/refresh one peer's filter (no-op if object and version
        are unchanged since the last update)."""
        if self._hashes is None:
            self._hashes = bf.hashes
        if bf.hashes != self._hashes:
            self._drop_row(peer_id)
            self._irregular[peer_id] = bf
            return
        self._irregular.pop(peer_id, None)
        row = self._row_of.get(peer_id)
        if row is None:
            row = len(self._peer_of)
            self._ensure_capacity(row + 1)
            self._row_of[peer_id] = row
            self._peer_of.append(peer_id)
            self._state.append((bf, -1))
        held, version = self._state[row]
        if held is bf and version == bf.version:
            return
        assert self._words is not None
        self._words[row, :] = bf.bits.words
        self._state[row] = (bf, bf.version)

    def remove(self, peer_id: int) -> None:
        """Forget a peer (directory drop)."""
        self._irregular.pop(peer_id, None)
        self._drop_row(peer_id)

    def sync(self, filters: Iterable[tuple[int, BloomFilter]]) -> None:
        """Reconcile against the directory's current ``(peer_id, filter)``
        pairs: update changed rows, drop peers no longer present."""
        seen = set()
        for peer_id, bf in filters:
            seen.add(peer_id)
            self.update(peer_id, bf)
        for peer_id in [p for p in self._row_of if p not in seen]:
            self._drop_row(peer_id)
        for peer_id in [p for p in self._irregular if p not in seen]:
            del self._irregular[peer_id]

    def _drop_row(self, peer_id: int) -> None:
        row = self._row_of.pop(peer_id, None)
        if row is None:
            return
        last = len(self._peer_of) - 1
        assert self._words is not None
        if row != last:
            moved = self._peer_of[last]
            self._words[row, :] = self._words[last, :]
            self._state[row] = self._state[last]
            self._peer_of[row] = moved
            self._row_of[moved] = row
        self._peer_of.pop()
        self._state.pop()

    def _ensure_capacity(self, rows: int) -> None:
        assert self._hashes is not None
        words_per_filter = (self._hashes.num_bits + 63) // 64
        if self._words is None:
            cap = max(8, rows)
            self._words = np.zeros((cap, words_per_filter), dtype=np.uint64)
        elif rows > self._words.shape[0]:
            cap = max(rows, self._words.shape[0] * 2)
            grown = np.zeros((cap, words_per_filter), dtype=np.uint64)
            grown[: self._words.shape[0], :] = self._words
            self._words = grown

    # -- matching ----------------------------------------------------------

    def _gather_hits(self, positions: np.ndarray) -> tuple[list[int], np.ndarray]:
        """Bit values at ``positions`` for every row: ``(peers, (P, len))``."""
        count = len(self._peer_of)
        if count == 0 or positions.size == 0:
            return list(self._peer_of), np.ones((count, positions.size), dtype=bool)
        assert self._words is not None
        idx = positions.ravel()
        cols = (idx >> 6).astype(np.int64)
        masks = np.uint64(1) << (idx & 63).astype(np.uint64)
        sub = self._words[:count, cols]
        return list(self._peer_of), (sub & masks[None, :]) != 0

    def hit_matrix(self, terms: Sequence[str]) -> tuple[list[int], np.ndarray]:
        """Per-peer, per-term membership: ``(peer_ids, bool (P, T))``.

        The query is hashed once; irregular filters are appended as extra
        rows computed individually.
        """
        term_list = list(terms)
        if self._hashes is None or not term_list:
            peers = self.peer_ids
            return peers, np.ones((len(peers), len(term_list)), dtype=bool)
        positions = self._hashes.positions_many(term_list)  # (T, k)
        peers, bit_hits = self._gather_hits(positions)
        hits = bit_hits.reshape(len(peers), *positions.shape).all(axis=2)
        for peer_id, bf in self._irregular.items():
            peers.append(peer_id)
            hits = np.vstack([hits, bf.contains_each(term_list)[None, :]])
        return peers, hits

    def match_all_terms(self, terms: Sequence[str]) -> list[int]:
        """Peers whose filters may contain *every* term (unsorted)."""
        term_list = list(terms)
        if self._hashes is None or not term_list:
            return self.peer_ids
        positions = self._hashes.positions_many(term_list).ravel()
        peers, bit_hits = self._gather_hits(positions)
        ok = bit_hits.all(axis=1)
        matched = [pid for pid, hit in zip(peers, ok) if hit]
        matched.extend(
            pid for pid, bf in self._irregular.items() if bf.contains_all(term_list)
        )
        return matched

    # -- mapping convenience ------------------------------------------------

    def sync_mapping(self, filters: Mapping[int, BloomFilter]) -> None:
        """:meth:`sync` over a ``{peer_id: filter}`` mapping."""
        self.sync(filters.items())

    def __repr__(self) -> str:
        return (
            f"FilterMatrix(peers={len(self)}, "
            f"irregular={len(self._irregular)})"
        )


class ShardedFilterMatrix:
    """Per-shard :class:`FilterMatrix` rows plus one summary row per shard.

    The partial-view search path works in two resolutions: coarse
    per-shard summary filters (the OR of a shard's member filters)
    answer "which shards may hold these terms", and the full rows the
    node actually keeps (its home shard plus a bounded sample) answer
    "which *peers*".  This container holds both, keyed consistently:
    full rows live in a per-shard :class:`FilterMatrix`, summaries in a
    single matrix whose "peer ids" are shard ids.
    """

    def __init__(self) -> None:
        self._shards: dict[int, FilterMatrix] = {}
        self._summaries = FilterMatrix()
        self._shard_of: dict[int, int] = {}  # peer -> shard, for removal

    def __len__(self) -> int:
        """Full filter rows held (summaries not counted)."""
        return len(self._shard_of)

    @property
    def peer_ids(self) -> list[int]:
        """Peers with full rows, across all shards."""
        return list(self._shard_of)

    @property
    def summary_shards(self) -> list[int]:
        """Shards currently represented by a summary row."""
        return self._summaries.peer_ids

    # -- maintenance -------------------------------------------------------

    def update(self, shard: int, peer_id: int, bf: BloomFilter) -> None:
        """Install/refresh one peer's full filter under its shard."""
        held = self._shard_of.get(peer_id)
        if held is not None and held != shard:
            self._shards[held].remove(peer_id)
        matrix = self._shards.get(shard)
        if matrix is None:
            matrix = self._shards[shard] = FilterMatrix()
        matrix.update(peer_id, bf)
        self._shard_of[peer_id] = shard

    def remove(self, peer_id: int) -> None:
        """Forget a peer's full row (no-op if absent)."""
        shard = self._shard_of.pop(peer_id, None)
        if shard is not None:
            self._shards[shard].remove(peer_id)

    def sync(self, rows: Iterable[tuple[int, int, BloomFilter]]) -> None:
        """Reconcile against ``(shard, peer_id, filter)`` triples: update
        changed rows, drop peers no longer present."""
        seen = set()
        for shard, peer_id, bf in rows:
            seen.add(peer_id)
            self.update(shard, peer_id, bf)
        for peer_id in [p for p in self._shard_of if p not in seen]:
            self.remove(peer_id)

    def set_summary(self, shard: int, bf: BloomFilter) -> None:
        """Install/refresh a shard's coarse summary filter."""
        self._summaries.update(shard, bf)

    def drop_summary(self, shard: int) -> None:
        """Remove ``shard``'s summary row (a shard leaving the ring)."""
        self._summaries.remove(shard)

    # -- matching ----------------------------------------------------------

    def candidate_shards(
        self, terms: Sequence[str], all_terms: bool = False
    ) -> list[int]:
        """Shards whose summary may hold the query.

        ``all_terms=False`` (ranked search) keeps a shard on *any* term
        hit — a peer holding one query term still earns relevance score.
        ``all_terms=True`` (exhaustive search) requires every term.
        """
        shard_ids, hits = self._summaries.hit_matrix(terms)
        keep = hits.all(axis=1) if all_terms else hits.any(axis=1)
        return [shard for shard, ok in zip(shard_ids, keep) if ok]

    def hit_matrix(
        self, terms: Sequence[str], shards: Iterable[int] | None = None
    ) -> tuple[list[int], np.ndarray]:
        """Per-peer, per-term membership over full rows, optionally
        restricted to ``shards``: ``(peer_ids, bool (P, T))``."""
        wanted = None if shards is None else set(shards)
        peers: list[int] = []
        blocks: list[np.ndarray] = []
        for shard in sorted(self._shards):
            if wanted is not None and shard not in wanted:
                continue
            shard_peers, hits = self._shards[shard].hit_matrix(terms)
            peers.extend(shard_peers)
            blocks.append(hits)
        if not blocks:
            return [], np.zeros((0, len(terms)), dtype=bool)
        return peers, np.vstack(blocks)

    def match_all_terms(
        self, terms: Sequence[str], shards: Iterable[int] | None = None
    ) -> list[int]:
        """Peers (with full rows) whose filters may contain every term."""
        wanted = None if shards is None else set(shards)
        matched: list[int] = []
        for shard in sorted(self._shards):
            if wanted is not None and shard not in wanted:
                continue
            matched.extend(self._shards[shard].match_all_terms(terms))
        return matched

    def __repr__(self) -> str:
        return (
            f"ShardedFilterMatrix(peers={len(self)}, "
            f"shards={len(self._shards)}, summaries={len(self._summaries)})"
        )
