"""The Bloom filter proper (paper Section 2).

A filter summarizes the set of terms in one peer's inverted index.  False
positives are possible, false negatives are not — the directory therefore
over-approximates which peers may hold a query term, never missing one.

The prototype used fixed 50 KB filters (≈50 000 terms at < 5% FP with two
hashes); :meth:`BloomFilter.paper_prototype` builds that configuration.
Peers may also merge several filters into one to save memory (Section 2
advantage 3); :meth:`union` implements that trade-off.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.constants import BloomConfig
from repro.utils.bitops import BitArray
from repro.bloom.hashing import HashFamily

__all__ = ["BloomFilter"]


class BloomFilter:
    """A k-hash Bloom filter over strings.

    Parameters
    ----------
    num_bits:
        Filter width in bits.
    num_hashes:
        Number of hash functions (bit positions per term).
    """

    __slots__ = ("hashes", "bits", "num_inserted", "version", "_compressed_cache")

    def __init__(self, num_bits: int, num_hashes: int = 2) -> None:
        self.hashes = HashFamily(num_bits, num_hashes)
        self.bits = BitArray(num_bits)
        #: count of insert calls (not distinct terms); used for FP estimates.
        self.num_inserted = 0
        #: monotonic mutation counter.  Every operation that may change the
        #: bit contents bumps it; caches (compressed bytes, directory
        #: matrices) key on ``(id(filter), version)`` to skip stale work.
        self.version = 0
        #: ``(version, blob)`` memo used by :mod:`repro.bloom.compress`.
        self._compressed_cache: tuple[int, bytes] | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def paper_prototype(cls) -> "BloomFilter":
        """The prototype's fixed 50 KB, 2-hash filter (Section 7.1)."""
        cfg = BloomConfig()
        return cls(cfg.num_bits, cfg.num_hashes)

    @classmethod
    def with_capacity(
        cls, capacity: int, fp_rate: float = 0.05, num_hashes: int | None = None
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` terms at target ``fp_rate``.

        If ``num_hashes`` is omitted the optimal count ``m/n * ln 2`` is
        used; otherwise the width is solved for the requested hash count.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        if num_hashes is None:
            num_bits = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
            k = max(1, round(num_bits / capacity * math.log(2)))
            # Rounding k away from the optimum can nudge the rate just past
            # the target; widen the filter until the guarantee holds.
            while cls.theoretical_fp_rate(num_bits, k, capacity) > fp_rate:
                num_bits = math.ceil(num_bits * 1.05)
        else:
            k = num_hashes
            # Solve fp = (1 - e^{-kn/m})^k for m.
            inner = fp_rate ** (1.0 / k)
            num_bits = math.ceil(-k * capacity / math.log(1.0 - inner))
        return cls(max(8, num_bits), k)

    @classmethod
    def from_words(
        cls, num_bits: int, num_hashes: int, words: np.ndarray, num_inserted: int = 0
    ) -> "BloomFilter":
        """Rebuild a filter around an existing word buffer (zero-copy)."""
        bf = cls.__new__(cls)
        bf.hashes = HashFamily(num_bits, num_hashes)
        bf.bits = BitArray(num_bits, words)
        bf.num_inserted = num_inserted
        bf.version = 0
        bf._compressed_cache = None
        return bf

    # -- core operations -------------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Filter width in bits."""
        return self.hashes.num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash functions."""
        return self.hashes.num_hashes

    def touch(self) -> None:
        """Record a mutation: bump :attr:`version`, drop cached encodings.

        Called by every mutator here; callers that write :attr:`bits`
        directly must call it themselves to keep caches honest.
        """
        self.version += 1
        self._compressed_cache = None

    def add(self, term: str) -> None:
        """Insert one term."""
        self.bits.set_many(self.hashes.positions(term))
        self.num_inserted += 1
        self.touch()

    def add_many(self, terms: Iterable[str]) -> None:
        """Insert many terms (batched hashing + one vectorized bit-set)."""
        term_list = list(terms)
        if not term_list:
            return
        positions = self.hashes.positions_many(term_list)
        self.bits.set_many(positions.ravel())
        self.num_inserted += len(term_list)
        self.touch()

    def add_missing(self, terms: list[str]) -> list[str]:
        """Insert only the terms not already present; returns them.

        One hashing pass serves both the membership test and the insert,
        so publish/replay paths that need to know *whether* the filter
        grew (to bump its gossiped version) don't hash everything twice.
        """
        if not terms:
            return []
        positions = self.hashes.positions_many(terms)
        hits = self.bits.get_many(positions.ravel()).reshape(positions.shape)
        missing = np.flatnonzero(~hits.all(axis=1))
        if missing.size:
            self.bits.set_many(positions[missing].ravel())
            self.num_inserted += int(missing.size)
            self.touch()
        return [terms[i] for i in missing]

    def set_positions(self, positions: np.ndarray) -> None:
        """Set raw bit positions directly (diff application path)."""
        self.bits.set_many(positions)
        self.touch()

    def __contains__(self, term: str) -> bool:
        return bool(self.bits.get_many(self.hashes.positions(term)).all())

    def contains_all(self, terms: Iterable[str]) -> bool:
        """Whether every term may be present (conjunctive query check)."""
        term_list = list(terms)
        if not term_list:
            return True
        positions = self.hashes.positions_many(term_list)
        return bool(self.bits.get_many(positions.ravel()).all())

    def contains_each(self, terms: list[str]) -> np.ndarray:
        """Boolean per-term membership vector for ``terms``."""
        if not terms:
            return np.zeros(0, dtype=bool)
        positions = self.hashes.positions_many(terms)
        hits = self.bits.get_many(positions.ravel()).reshape(positions.shape)
        return hits.all(axis=1)

    # -- set algebra ------------------------------------------------------------

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Return a new filter representing the union of both term sets.

        This is the memory/accuracy trade-off of Section 2: a peer may merge
        the filters of several peers, at the cost of having to contact that
        whole set on any hit.
        """
        self._check_compatible(other)
        merged = BloomFilter(self.num_bits, self.num_hashes)
        merged.bits = self.bits.copy()
        merged.bits.union_inplace(other.bits)
        merged.num_inserted = self.num_inserted + other.num_inserted
        return merged

    def union_inplace(self, other: "BloomFilter") -> None:
        """Merge ``other`` into this filter."""
        self._check_compatible(other)
        self.bits.union_inplace(other.bits)
        self.num_inserted += other.num_inserted
        self.touch()

    def is_superset_of(self, other: "BloomFilter") -> bool:
        """Whether every bit set in ``other`` is set here."""
        self._check_compatible(other)
        return not np.any(other.bits.difference_words(self.bits))

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self.hashes != other.hashes:
            raise ValueError("Bloom filters use incompatible hash families")

    # -- serialization -----------------------------------------------------------

    def to_compressed(self) -> bytes:
        """Golomb-compressed wire encoding (Section 7.1's gossip format)."""
        from repro.bloom.compress import compress_filter

        return compress_filter(self)

    @classmethod
    def from_compressed(
        cls, data: bytes, num_hashes: int = 2, num_inserted: int = 0
    ) -> "BloomFilter":
        """Inverse of :meth:`to_compressed` (hash count is community-wide
        metadata, not carried on the wire)."""
        from repro.bloom.compress import decompress_filter

        return decompress_filter(data, num_hashes=num_hashes, num_inserted=num_inserted)

    # -- accounting ----------------------------------------------------------------

    def bit_count(self) -> int:
        """Number of set bits."""
        return self.bits.count()

    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self.bit_count() / self.num_bits

    def false_positive_rate(self) -> float:
        """Estimated FP rate from the current fill ratio: ``fill**k``."""
        return self.fill_ratio() ** self.num_hashes

    @staticmethod
    def theoretical_fp_rate(num_bits: int, num_hashes: int, num_terms: int) -> float:
        """Classic FP-rate formula ``(1 - e^{-kn/m})^k``."""
        if num_bits <= 0 or num_hashes < 1 or num_terms < 0:
            raise ValueError("invalid Bloom filter parameters")
        return (1.0 - math.exp(-num_hashes * num_terms / num_bits)) ** num_hashes

    def approx_distinct_terms(self) -> float:
        """Estimate of distinct inserted terms from the fill ratio
        (the standard ``-m/k * ln(1 - fill)`` estimator)."""
        fill = self.fill_ratio()
        if fill >= 1.0:
            return float("inf")
        return -self.num_bits / self.num_hashes * math.log(1.0 - fill)

    def copy(self) -> "BloomFilter":
        """Deep copy."""
        dup = BloomFilter(self.num_bits, self.num_hashes)
        dup.bits = self.bits.copy()
        dup.num_inserted = self.num_inserted
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.hashes == other.hashes and self.bits == other.bits

    # Mutable with value equality: explicitly unhashable, so equal-but-
    # mutable filters can never land in sets or dict keys.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"fill={self.fill_ratio():.4f})"
        )
