"""Bloom filters and their wire encoding.

The paper summarizes each peer's inverted index with a Bloom filter
(Section 2) and compresses filters for gossiping with a run-length /
Golomb-code scheme (Section 7.1).  This subpackage provides:

* :class:`BloomFilter` — a k-hash filter over a numpy bit array, with
  union/merge (the "combine filters of several peers" trade-off), batch
  insert/query, a monotonic mutation version, and false-positive math.
* :mod:`repro.bloom.golomb` — a from-scratch Golomb/Rice bitstream codec:
  streaming reference classes plus the vectorized
  :func:`~repro.bloom.golomb.encode_gaps` / ``decode_gaps`` hot path.
* :mod:`repro.bloom.compress` — gap run-length compression of a filter
  using Golomb codes, as in the prototype, memoized per filter version.
* :mod:`repro.bloom.diff` — filter diffs, used to gossip only the newly
  set bits when an index grows.
* :mod:`repro.bloom.matcher` — :class:`FilterMatrix`, stacked peer filters
  answering whole-directory query matching with one vectorized gather.
"""

from repro.bloom.hashing import HashFamily
from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import (
    GolombDecoder,
    GolombEncoder,
    decode_gaps,
    encode_gaps,
    optimal_golomb_m,
)
from repro.bloom.compress import compress_filter, decompress_filter, compressed_size
from repro.bloom.diff import BloomDiff, apply_diff, diff_filters
from repro.bloom.matcher import FilterMatrix, ShardedFilterMatrix

__all__ = [
    "HashFamily",
    "BloomFilter",
    "GolombEncoder",
    "GolombDecoder",
    "optimal_golomb_m",
    "encode_gaps",
    "decode_gaps",
    "compress_filter",
    "decompress_filter",
    "compressed_size",
    "BloomDiff",
    "apply_diff",
    "diff_filters",
    "FilterMatrix",
    "ShardedFilterMatrix",
]
