"""Bloom filter diffs.

PlanetP "sends diffs of the Bloom filters to save bandwidth" (Section 7.2):
when a peer's index grows, only the newly-set bits are gossiped, and
receivers OR them into their stored copy.  Because published terms are
never individually retracted from a filter in the prototype (a shrinking
index requires regenerating the filter, which is gossiped as a full
replacement), a diff is simply the set of positions set in the new filter
but not the old one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.bloom.golomb import decode_gaps, encode_gaps, optimal_golomb_m

__all__ = ["BloomDiff", "diff_filters", "apply_diff"]


def _encode_positions(positions: np.ndarray, num_bits: int) -> tuple[int, bytes]:
    """``(m, Golomb-coded gap stream)`` for sorted ``positions``."""
    density = positions.size / num_bits
    m = optimal_golomb_m(min(density, 0.999999))
    gaps = np.empty(positions.size, dtype=np.int64)
    gaps[0] = positions[0]
    gaps[1:] = np.diff(positions) - 1
    return m, encode_gaps(gaps, m)


@dataclass(frozen=True)
class BloomDiff:
    """Positions newly set between two versions of a peer's filter."""

    num_bits: int
    positions: np.ndarray  # sorted int64 bit positions

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=np.int64)
        if pos.ndim != 1:
            raise ValueError("positions must be 1-D")
        if pos.size and (pos[0] < 0 or pos[-1] >= self.num_bits):
            raise ValueError("diff position out of filter range")
        object.__setattr__(self, "positions", pos)

    def __len__(self) -> int:
        return int(self.positions.size)

    def wire_size(self) -> int:
        """Golomb-coded size of this diff in bytes (what gossip would send)."""
        if self.positions.size == 0:
            return 12
        _m, stream = _encode_positions(self.positions, self.num_bits)
        return 12 + len(stream)

    def to_bytes(self) -> bytes:
        """Serialize: uint32 count, uint32 m, uint32 num_bits, gap stream."""
        import struct

        if self.positions.size == 0:
            return struct.pack(">III", 0, 1, self.num_bits)
        m, stream = _encode_positions(self.positions, self.num_bits)
        return struct.pack(">III", self.positions.size, m, self.num_bits) + stream

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomDiff":
        """Inverse of :meth:`to_bytes`."""
        import struct

        count, m, num_bits = struct.unpack_from(">III", data, 0)
        if count == 0:
            return cls(num_bits, np.zeros(0, dtype=np.int64))
        gaps = decode_gaps(data[12:], count, m)
        return cls(num_bits, np.cumsum(gaps + 1) - 1)


def diff_filters(old: BloomFilter, new: BloomFilter) -> BloomDiff:
    """Bits set in ``new`` but not ``old``.

    Raises if the filters are incompatible or if ``new`` dropped bits that
    ``old`` had (that requires a full filter replacement, not a diff).
    """
    if old.hashes != new.hashes:
        raise ValueError("filters use incompatible hash families")
    if not new.is_superset_of(old):
        raise ValueError("new filter dropped bits; send a full replacement instead")
    added_words = new.bits.difference_words(old.bits)
    bits = np.unpackbits(added_words.view(np.uint8), bitorder="little")
    positions = np.nonzero(bits[: new.num_bits])[0].astype(np.int64)
    return BloomDiff(new.num_bits, positions)


def apply_diff(base: BloomFilter, diff: BloomDiff) -> BloomFilter:
    """Return ``base`` with the diff's positions OR-ed in (new object)."""
    if base.num_bits != diff.num_bits:
        raise ValueError("diff width does not match filter width")
    result = base.copy()
    result.set_positions(diff.positions)
    return result
