"""Golomb run-length coding (Golomb 1966), as used by the prototype to
compress Bloom filters (paper Section 7.1).

A Golomb code with parameter ``m`` encodes a non-negative integer ``v`` as a
unary quotient ``v // m`` (that many 1-bits then a 0) followed by a
truncated-binary remainder ``v % m``.  For geometrically distributed gaps —
which the gaps between set bits of a sparse Bloom filter are — choosing
``m ≈ 0.69 * mean_gap`` is near-entropy-optimal, which is why the authors
found it outperformed gzip on filters.
"""

from __future__ import annotations

import math

__all__ = ["GolombEncoder", "GolombDecoder", "optimal_golomb_m"]


def optimal_golomb_m(p: float) -> int:
    """Near-optimal Golomb parameter for gap probability ``p``.

    ``p`` is the probability that any given bit is set (so mean gap is
    ``1/p``); the classic rule is ``m = ceil(log(2 - p) / -log(1 - p))``,
    which reduces to ``~0.69 / p`` for small ``p``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    m = math.ceil(math.log(2.0 - p) / -math.log(1.0 - p))
    return max(1, m)


class _BitWriter:
    """Append-only bit buffer (MSB-first within each byte)."""

    __slots__ = ("_bytes", "_current", "_nbits")

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, count: int) -> None:
        for _ in range(count):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        if self._nbits:
            return bytes(self._bytes) + bytes([self._current << (8 - self._nbits)])
        return bytes(self._bytes)

    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits


class _BitReader:
    """Sequential bit reader matching :class:`_BitWriter`'s layout."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bit(self) -> int:
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            raise EOFError("bit stream exhausted")
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count


class GolombEncoder:
    """Streaming Golomb encoder for non-negative integers."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("Golomb parameter m must be >= 1")
        self.m = int(m)
        self._writer = _BitWriter()
        # Truncated binary: remainders < cutoff use b-1 bits, others b bits.
        self._b = max(1, math.ceil(math.log2(self.m))) if self.m > 1 else 0
        self._cutoff = (1 << self._b) - self.m if self.m > 1 else 0

    def encode(self, value: int) -> None:
        """Append one value to the stream."""
        if value < 0:
            raise ValueError("Golomb codes encode non-negative integers only")
        q, r = divmod(value, self.m)
        self._writer.write_unary(q)
        if self.m == 1:
            return
        if r < self._cutoff:
            self._writer.write_bits(r, self._b - 1)
        else:
            self._writer.write_bits(r + self._cutoff, self._b)

    def encode_many(self, values: list[int]) -> None:
        """Append every value in ``values``."""
        for v in values:
            self.encode(v)

    def getvalue(self) -> bytes:
        """The encoded byte string (final partial byte zero-padded)."""
        return self._writer.getvalue()

    def bit_length(self) -> int:
        """Exact number of bits written so far."""
        return self._writer.bit_length()


class GolombDecoder:
    """Streaming decoder matching :class:`GolombEncoder`."""

    def __init__(self, m: int, data: bytes) -> None:
        if m < 1:
            raise ValueError("Golomb parameter m must be >= 1")
        self.m = int(m)
        self._reader = _BitReader(data)
        self._b = max(1, math.ceil(math.log2(self.m))) if self.m > 1 else 0
        self._cutoff = (1 << self._b) - self.m if self.m > 1 else 0

    def decode(self) -> int:
        """Read the next value from the stream."""
        q = self._reader.read_unary()
        if self.m == 1:
            return q
        r = self._reader.read_bits(self._b - 1)
        if r >= self._cutoff:
            r = ((r << 1) | self._reader.read_bit()) - self._cutoff
        return q * self.m + r

    def decode_many(self, count: int) -> list[int]:
        """Read ``count`` values."""
        return [self.decode() for _ in range(count)]
