"""Golomb run-length coding (Golomb 1966), as used by the prototype to
compress Bloom filters (paper Section 7.1).

A Golomb code with parameter ``m`` encodes a non-negative integer ``v`` as a
unary quotient ``v // m`` (that many 1-bits then a 0) followed by a
truncated-binary remainder ``v % m``.  For geometrically distributed gaps —
which the gaps between set bits of a sparse Bloom filter are — choosing
``m ≈ 0.69 * mean_gap`` is near-entropy-optimal, which is why the authors
found it outperformed gzip on filters.

Two implementations share the same bit-exact wire layout (MSB-first within
each byte, final partial byte zero-padded):

* :class:`GolombEncoder` / :class:`GolombDecoder` — the original streaming,
  bit-at-a-time codec.  Kept as the readable reference implementation and
  as the oracle for the compatibility tests.
* :func:`encode_gaps` / :func:`decode_gaps` — the vectorized hot path used
  by :mod:`repro.bloom.compress` and :mod:`repro.bloom.diff`.  Encoding
  lays out every codeword's bit range with cumulative sums and one
  ``np.packbits``; decoding builds a per-position jump table vectorized,
  chases the codeword chain with a minimal Python loop, then extracts all
  quotients/remainders with numpy gathers.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "GolombEncoder",
    "GolombDecoder",
    "optimal_golomb_m",
    "encode_gaps",
    "decode_gaps",
]


def optimal_golomb_m(p: float) -> int:
    """Near-optimal Golomb parameter for gap probability ``p``.

    ``p`` is the probability that any given bit is set (so mean gap is
    ``1/p``); the classic rule is ``m = ceil(log(2 - p) / -log(1 - p))``,
    which reduces to ``~0.69 / p`` for small ``p``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    m = math.ceil(math.log(2.0 - p) / -math.log(1.0 - p))
    return max(1, m)


class _BitWriter:
    """Append-only bit buffer (MSB-first within each byte)."""

    __slots__ = ("_bytes", "_current", "_nbits")

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, count: int) -> None:
        for _ in range(count):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        if self._nbits:
            return bytes(self._bytes) + bytes([self._current << (8 - self._nbits)])
        return bytes(self._bytes)

    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits


class _BitReader:
    """Sequential bit reader matching :class:`_BitWriter`'s layout."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bit(self) -> int:
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            raise EOFError("bit stream exhausted")
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count


class GolombEncoder:
    """Streaming Golomb encoder for non-negative integers."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("Golomb parameter m must be >= 1")
        self.m = int(m)
        self._writer = _BitWriter()
        # Truncated binary: remainders < cutoff use b-1 bits, others b bits.
        self._b = max(1, math.ceil(math.log2(self.m))) if self.m > 1 else 0
        self._cutoff = (1 << self._b) - self.m if self.m > 1 else 0

    def encode(self, value: int) -> None:
        """Append one value to the stream."""
        if value < 0:
            raise ValueError("Golomb codes encode non-negative integers only")
        q, r = divmod(value, self.m)
        self._writer.write_unary(q)
        if self.m == 1:
            return
        if r < self._cutoff:
            self._writer.write_bits(r, self._b - 1)
        else:
            self._writer.write_bits(r + self._cutoff, self._b)

    def encode_many(self, values: list[int]) -> None:
        """Append every value in ``values``."""
        for v in values:
            self.encode(v)

    def getvalue(self) -> bytes:
        """The encoded byte string (final partial byte zero-padded)."""
        return self._writer.getvalue()

    def bit_length(self) -> int:
        """Exact number of bits written so far."""
        return self._writer.bit_length()


class GolombDecoder:
    """Streaming decoder matching :class:`GolombEncoder`."""

    def __init__(self, m: int, data: bytes) -> None:
        if m < 1:
            raise ValueError("Golomb parameter m must be >= 1")
        self.m = int(m)
        self._reader = _BitReader(data)
        self._b = max(1, math.ceil(math.log2(self.m))) if self.m > 1 else 0
        self._cutoff = (1 << self._b) - self.m if self.m > 1 else 0

    def decode(self) -> int:
        """Read the next value from the stream."""
        q = self._reader.read_unary()
        if self.m == 1:
            return q
        r = self._reader.read_bits(self._b - 1)
        if r >= self._cutoff:
            r = ((r << 1) | self._reader.read_bit()) - self._cutoff
        return q * self.m + r

    def decode_many(self, count: int) -> list[int]:
        """Read ``count`` values."""
        return [self.decode() for _ in range(count)]


def _truncated_binary_params(m: int) -> tuple[int, int]:
    """``(b, cutoff)`` for parameter ``m``: remainders below ``cutoff`` use
    ``b - 1`` bits, the rest use ``b`` bits (matching the streaming codec)."""
    b = max(1, math.ceil(math.log2(m))) if m > 1 else 0
    cutoff = (1 << b) - m if m > 1 else 0
    return b, cutoff


def encode_gaps(values: np.ndarray, m: int) -> bytes:
    """Vectorized Golomb encoding of ``values`` — same bytes as feeding
    them through :class:`GolombEncoder` one by one."""
    if m < 1:
        raise ValueError("Golomb parameter m must be >= 1")
    v = np.ascontiguousarray(values, dtype=np.int64)
    if v.ndim != 1:
        raise ValueError("values must be 1-D")
    if v.size == 0:
        return b""
    if v.size and int(v.min()) < 0:
        raise ValueError("Golomb codes encode non-negative integers only")
    q = v // m
    b, cutoff = _truncated_binary_params(m)
    if m > 1:
        r = v - q * m
        ext = r >= cutoff  # remainders at/above the cutoff take the bth bit
        rwidth = np.where(ext, b, b - 1).astype(np.int64)
        rvalue = np.where(ext, r + cutoff, r)
    else:
        rwidth = np.zeros(v.size, dtype=np.int64)
        rvalue = np.zeros(v.size, dtype=np.int64)
    widths = q + 1 + rwidth
    ends = np.cumsum(widths)
    starts = ends - widths
    total = int(ends[-1])
    # Unary runs of ones via a difference array: +1 at each codeword start,
    # -1 at its terminator zero, prefix-summed into the bit buffer.
    delta = np.bincount(starts, minlength=total + 1) - np.bincount(
        starts + q, minlength=total + 1
    )
    bits = np.cumsum(delta[:total]).astype(np.uint8)
    if m > 1:
        rem_starts = starts + q + 1
        for width in (b - 1, b):
            if width <= 0:
                continue
            mask = rwidth == width
            if not mask.any():
                continue
            rs = rem_starts[mask]
            rv = rvalue[mask]
            offs = np.arange(width, dtype=np.int64)
            idx = rs[:, None] + offs[None, :]
            vals = (rv[:, None] >> (width - 1 - offs)[None, :]) & 1
            bits[idx.ravel()] = vals.ravel().astype(np.uint8)
    return np.packbits(bits).tobytes()


def decode_gaps(data: bytes, count: int, m: int) -> np.ndarray:
    """Vectorized inverse of :func:`encode_gaps`.

    Reads ``count`` values from ``data`` and returns them as an ``int64``
    array.  Raises :class:`EOFError` if the bit stream is exhausted before
    ``count`` values are read — the same condition under which
    :class:`GolombDecoder` raises.
    """
    if m < 1:
        raise ValueError("Golomb parameter m must be >= 1")
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8)).astype(np.int64)
    n = bits.size
    zeros = np.flatnonzero(bits == 0)
    if m == 1:
        # Pure unary: value i is the run of ones before the (i+1)-th zero.
        if zeros.size < count:
            raise EOFError("bit stream exhausted")
        term = zeros[:count]
        out = np.empty(count, dtype=np.int64)
        out[0] = term[0]
        out[1:] = np.diff(term) - 1
        return out
    b, cutoff = _truncated_binary_params(m)
    w = b - 1
    nz = zeros.size
    if nz == 0:
        raise EOFError("bit stream exhausted")
    # Every codeword's unary quotient is terminated by some zero, so work in
    # zero-index space: for each zero, decode the remainder field that would
    # follow it and where the next codeword would then start — all
    # vectorized over the zeros, which are far fewer than the stream bits.
    pad = np.concatenate([bits, np.zeros(w + 2, dtype=np.int64)])
    rem_pos = zeros + 1
    wz = np.zeros(nz, dtype=np.int64)
    for j in range(w):
        wz += pad[rem_pos + j] << (w - 1 - j)
    ext = wz >= cutoff
    rem = np.where(ext, ((wz << 1) | pad[rem_pos + w]) - cutoff, wz)
    next_start = rem_pos + w + ext
    # Reads past the stream end: padded window bits are zeros, so flag and
    # only fail if such a zero actually lands on the decoded chain.
    unreadable = next_start > n
    # Zero-index of the terminator of the codeword starting at next_start.
    nxt = np.searchsorted(zeros, next_start).tolist()
    chain: list[int] = []
    append = chain.append
    k = 0  # the first codeword's terminator is the first zero
    for _ in range(count):
        if k >= nz:
            raise EOFError("bit stream exhausted")
        append(k)
        k = nxt[k]
    ks = np.asarray(chain, dtype=np.int64)
    if unreadable[ks].any():
        raise EOFError("bit stream exhausted")
    term = zeros[ks]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = next_start[ks[:-1]]
    return (term - starts) * m + rem[ks]
