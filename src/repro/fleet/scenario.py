"""Seeded fleet scenarios: corpora, queries, waves, crash schedule.

Everything a fleet run does is derived here from one integer seed, so a
500-node run that fails in CI reproduces bit-identically from
``--seed`` alone.  The generator never touches wall clocks, hostnames,
or directory listings — just ``random.Random(seed)``.

Synthetic text is built from a small Zipf-flavored topic vocabulary
(``term0007``-style tokens: alphanumeric, stopword-free, and fixed
points of the Porter stemmer, so every token survives the analyzer
unchanged) plus one node-unique term per document.  Topic terms shared
across many nodes make ranked queries span peers — which is what makes
fleet recall vs. the full-directory oracle a meaningful number — while
the unique terms give the crash schedule a per-node sentinel document
to prove recovery with.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass

from repro.text.document import Document

__all__ = ["FleetSpec", "Scenario", "Wave", "build_scenario"]


@dataclass(frozen=True)
class FleetSpec:
    """Tunable shape of one fleet scenario (all derived from ``seed``)."""

    num_nodes: int = 25
    seed: int = 0
    #: base gossip interval T_g for every node (paper: 30 s; fleets run
    #: compressed time so convergence is measured in seconds, not hours).
    gossip_interval_s: float = 0.25
    #: community-wide Bloom sizing.  The 50 KB paper default costs
    #: ~25 MB of replica memory per node at 500 members; fleets default
    #: to 64 Kbit filters, ample for a few dozen synthetic terms.
    bloom_bits: int = 65536
    bloom_hashes: int = 2
    docs_per_node: int = 3
    terms_per_doc: int = 10
    vocab_size: int = 120
    num_queries: int = 6
    top_k: int = 10
    num_waves: int = 2
    docs_per_wave: int = 3
    num_crashes: int = 2
    #: nodes launched (and waited ready) per batch after the seed node.
    launch_batch: int = 16
    #: WAL records between snapshots on durable (crash-schedule) nodes.
    snapshot_every: int = 64
    #: additive slack in the Fig.-2 convergence bound (absorbs process
    #: startup, scrape latency, and gauge refresh lag).
    convergence_slack_s: float = 15.0
    #: per-node deadline for the PLANETP_READY line after spawn.
    ready_timeout_s: float = 60.0
    #: concurrent in-flight stats scrapes during convergence polling.
    scrape_concurrency: int = 32
    #: run every node (and the observer) in ``--partial-view`` mode.
    partial_view: bool = False
    #: shard count under partial view; 0 = auto (~sqrt(num_nodes), min 2).
    num_shards: int = 0
    #: out-of-shard full-filter sample size under partial view.
    view_sample: int = 32
    #: content-plane copies per document (``--replicas``); 0 disables the
    #: retrieval waves and the retrieval-under-churn gate.
    replicas: int = 0
    #: run every node with ``--analytics`` and gate each node's top-k
    #: frequent-term estimate against the exact oracle (0.9 precision
    #: within the Fig.-2 bound); False skips the analytics phase.
    analytics: bool = False
    #: k for the analytics top-k accuracy gate.
    analytics_top_k: int = 10

    @property
    def resolved_num_shards(self) -> int:
        """The effective shard count (auto-sized when ``num_shards=0``)."""
        if self.num_shards:
            return self.num_shards
        return max(2, round(math.sqrt(self.num_nodes)))

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a fleet needs at least 2 nodes")
        if not 0 <= self.num_crashes < self.num_nodes:
            raise ValueError("num_crashes must be in [0, num_nodes)")
        if self.docs_per_node < 1 or self.terms_per_doc < 1:
            raise ValueError("every node needs at least one non-empty document")
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if self.gossip_interval_s <= 0:
            raise ValueError("gossip_interval_s must be positive")
        if self.launch_batch < 1:
            raise ValueError("launch_batch must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0 (0 = auto)")
        if self.view_sample < 0:
            raise ValueError("view_sample must be >= 0")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.replicas >= self.num_nodes:
            raise ValueError("replicas must leave at least one non-holder node")
        if self.analytics_top_k < 1:
            raise ValueError("analytics_top_k must be >= 1")


@dataclass(frozen=True)
class Wave:
    """One publish wave: new documents injected at chosen members."""

    index: int
    #: the wave's marker term — present in every wave document and
    #: nowhere else, so one ranked query for it must return the whole
    #: wave once (and only once) gossip has propagated the filters.
    query: str
    publishes: tuple[tuple[int, Document], ...]

    @property
    def doc_ids(self) -> tuple[str, ...]:
        """Ids of every document this wave publishes."""
        return tuple(doc.doc_id for _pid, doc in self.publishes)


@dataclass(frozen=True)
class Scenario:
    """A fully materialized, reproducible fleet script."""

    spec: FleetSpec
    #: per-node startup corpus, indexed by peer id.
    corpus: tuple[tuple[Document, ...], ...]
    #: ranked queries scored against the oracle for recall.
    queries: tuple[str, ...]
    waves: tuple[Wave, ...]
    #: peers the crash schedule SIGKILLs and warm-restarts.
    crash_pids: tuple[int, ...]

    @property
    def durable_pids(self) -> tuple[int, ...]:
        """Peers launched with ``--data-dir`` (exactly the crash set —
        durability is what the crash schedule is there to exercise)."""
        return self.crash_pids

    def sentinel_doc(self, pid: int) -> Document:
        """The document whose post-restart fetch proves ``pid`` recovered."""
        return self.corpus[pid][0]


def _topic_picker(rng: random.Random, vocab: list[str]):
    """Zipf-flavored draw: low-index (popular) terms dominate, the tail
    stays rare — the skew that gives TF×IPF ranking something to rank."""

    def pick() -> str:
        return vocab[min(int(rng.random() ** 2 * len(vocab)), len(vocab) - 1)]

    return pick


def build_scenario(spec: FleetSpec) -> Scenario:
    """Materialize the scenario ``spec.seed`` deterministically describes."""
    rng = random.Random(spec.seed)
    vocab = [f"term{i:04d}" for i in range(spec.vocab_size)]
    pick = _topic_picker(rng, vocab)

    corpus: list[tuple[Document, ...]] = []
    topic_counts: Counter[str] = Counter()
    for pid in range(spec.num_nodes):
        docs = []
        for d in range(spec.docs_per_node):
            words = [pick() for _ in range(spec.terms_per_doc)]
            topic_counts.update(words)
            # One node-unique term: the recovery sentinel, and a reason
            # for every node's filter to differ from every other's.
            words.append(f"uniq{pid:04d}x{d}")
            rng.shuffle(words)
            docs.append(Document(f"n{pid:04d}-d{d}", " ".join(words)))
        corpus.append(tuple(docs))

    # Queries over the most widely published topics (single- and
    # two-term), so answering well requires contacting several peers.
    common = [term for term, _n in topic_counts.most_common(20)]
    queries: list[str] = []
    while len(queries) < spec.num_queries:
        if len(common) >= 2 and rng.random() < 0.5:
            q = " ".join(rng.sample(common, 2))
        else:
            q = rng.choice(common)
        if q not in queries:
            queries.append(q)

    waves = []
    for w in range(spec.num_waves):
        marker = f"wmark{spec.seed % 10_000:04d}w{w}"
        publishers = rng.sample(
            range(spec.num_nodes), min(spec.docs_per_wave, spec.num_nodes)
        )
        publishes = tuple(
            (
                pid,
                Document(
                    f"wave{w}-{j}",
                    " ".join([marker, *(pick() for _ in range(4))]),
                ),
            )
            for j, pid in enumerate(publishers)
        )
        waves.append(Wave(w, marker, publishes))

    crash_pids = tuple(sorted(rng.sample(range(spec.num_nodes), spec.num_crashes)))

    return Scenario(
        spec=spec,
        corpus=tuple(corpus),
        queries=tuple(queries),
        waves=tuple(waves),
        crash_pids=crash_pids,
    )
