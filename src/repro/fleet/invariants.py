"""Fleet-level invariants: the numbers a run is judged by.

The acceptance bar for a fleet run (tiered tests, the bench gate, and
``scripts/fleet.py --check``) is expressed once, here:

* **convergence** — directories reach full membership within a bound
  derived from the paper's Fig. 2: propagation completes in O(log n)
  gossip rounds, so the bound is ``slack + T_g * (8 + 3·log2(n))``
  seconds.  The constants are deliberately generous (Fig. 2 shows
  ~log2(n) + a small constant rounds for arbitrary updates) because a
  single-host fleet shares one CPU across all n nodes.
* **recall** — ranked-search results from the live fleet, scored
  against the in-process full-directory oracle's top-k.
* **freshness** — zero stale serves: after a publish wave has
  propagated, the query plane must return the new documents (the
  version-keyed result cache may never answer with a pre-wave result).
* **retrieval** (when ``replicas > 0``) — every wave document fetchable
  byte-identical through the content plane, crashed origins' documents
  still retrievable from surviving replicas, and zero orphaned chunk
  bytes once handoff settles.
* **hygiene** — every subprocess reaped, every port closed.

:class:`FleetReport` carries every measured number plus
:meth:`FleetReport.violations`, so every consumer applies the same
checks instead of growing drift-prone local copies.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Mapping

__all__ = [
    "FleetReport",
    "convergence_bound_s",
    "gossip_bytes_per_round",
    "recall_at_k",
]


def convergence_bound_s(
    num_nodes: int, interval_s: float, slack_s: float = 15.0
) -> float:
    """Fig.-2-derived deadline for full directory convergence (seconds)."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    rounds = 8.0 + 3.0 * math.log2(max(2, num_nodes))
    return slack_s + interval_s * rounds


def recall_at_k(expected: list[str] | tuple[str, ...], got: list[str]) -> float:
    """Fraction of the oracle's top-k the fleet returned (1.0 if the
    oracle returned nothing — there was nothing to miss)."""
    if not expected:
        return 1.0
    return len(set(expected) & set(got)) / len(expected)


def gossip_bytes_per_round(samples: Mapping[str, float]) -> float:
    """Mean encoded gossip bytes per round from one node's stats scrape."""
    total = samples.get("planetp_node_gossip_real_bytes_total", 0.0)
    rounds = samples.get("planetp_node_gossip_rounds_total", 0.0)
    return total / rounds if rounds else 0.0


@dataclass
class FleetReport:
    """Every number one fleet run produced."""

    num_nodes: int
    seed: int
    #: first spawn to last PLANETP_READY.
    launch_s: float
    #: launch completion to every directory at full membership.
    convergence_s: float
    convergence_bound_s: float
    #: mean / worst per-query recall of the converged fleet vs. the oracle.
    recall: float
    recall_min: float
    #: post-wave queries answered from a pre-wave cache entry (must be 0).
    stale_serves: int
    #: per-wave publish-to-searchable time.
    wave_propagation_s: list[float] = field(default_factory=list)
    crash_pids: list[int] = field(default_factory=list)
    #: did the query plane keep answering while members were down?
    crash_search_ok: bool = True
    #: restart begun to every crashed node's sentinel doc fetchable again.
    recovery_s: float = 0.0
    #: mean recall (base + wave queries) after the crash/restart cycle.
    recall_after_recovery: float = 1.0
    gossip_bytes_per_node: float = 0.0
    gossip_bytes_per_round: float = 0.0
    gossip_rounds_per_node: float = 0.0
    #: content-plane copies per document (0 = content gates skipped).
    content_replicas: int = 0
    #: launch to every node at the replication fixed point.
    replication_s: float = 0.0
    #: wave documents fetched byte-identical through the content plane.
    content_fetches_ok: int = 0
    content_fetches_expected: int = 0
    #: were all crashed origins' sentinel docs retrievable from
    #: surviving replicas while the origins were down?
    churn_fetches_ok: bool = True
    #: worst per-node orphaned chunk bytes after churn settled (must be 0).
    orphan_chunk_bytes_max: float = 0.0
    #: whether the fleet ran with --analytics (sketch gossip + mining).
    analytics: bool = False
    #: worst per-node top-k frequent-term precision vs. the exact oracle.
    analytics_precision_min: float = 1.0
    #: seconds until every node's top-k estimate cleared the 0.9 bar.
    analytics_convergence_s: float = 0.0
    #: mean analytics-plane (sketch exchange) bytes per gossip round.
    analytics_bytes_per_round: float = 0.0
    #: whether the fleet ran in --partial-view (sharded directory) mode.
    partial_view: bool = False
    #: mean bytes pinned per node by full replica filters + shard summaries.
    directory_filter_bytes_per_node: float = 0.0
    #: mean partial-view maintenance/fan-out bytes per node (0 when flat).
    partialview_bytes_per_node: float = 0.0
    #: nodes that ignored the graceful stop and needed SIGKILL.
    forced_kills: int = 0
    #: processes still running / ports still accepting after stop().
    leaked_processes: int = 0
    leaked_ports: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON form (what ``scripts/fleet.py --json`` writes)."""
        return asdict(self)

    def violations(self, *, min_recall: float = 0.98) -> list[str]:
        """Every acceptance-criterion breach, as human-readable strings.

        ``min_recall`` is "within 2 points of the oracle" by default;
        small fleets may pass a looser bar (fewer peers means one
        ranking tie breaking differently costs more recall).
        """
        out = []
        if self.convergence_s > self.convergence_bound_s:
            out.append(
                f"convergence took {self.convergence_s:.1f}s, over the "
                f"Fig.-2 bound of {self.convergence_bound_s:.1f}s"
            )
        if self.recall < min_recall:
            out.append(
                f"fleet recall {self.recall:.3f} below {min_recall:.3f} "
                f"(worst query {self.recall_min:.3f})"
            )
        if self.stale_serves > 0:
            out.append(f"{self.stale_serves} stale serve(s) after publish waves")
        if not self.crash_search_ok:
            out.append("query plane failed while crashed members were down")
        if self.crash_pids and self.recall_after_recovery < min_recall:
            out.append(
                f"post-recovery recall {self.recall_after_recovery:.3f} "
                f"below {min_recall:.3f}"
            )
        if self.content_replicas > 0:
            if self.content_fetches_ok < self.content_fetches_expected:
                out.append(
                    f"content retrieval returned only "
                    f"{self.content_fetches_ok}/{self.content_fetches_expected} "
                    f"wave documents byte-identical"
                )
            if not self.churn_fetches_ok:
                out.append(
                    "crashed origins' documents not retrievable from "
                    "surviving replicas"
                )
            if self.orphan_chunk_bytes_max > 0:
                out.append(
                    f"{self.orphan_chunk_bytes_max:.0f} orphaned chunk "
                    f"bytes left stranded after churn"
                )
        if self.analytics and self.analytics_precision_min < 0.9:
            out.append(
                f"analytics top-k precision {self.analytics_precision_min:.3f} "
                f"below 0.9 within the Fig.-2 bound"
            )
        if self.leaked_processes:
            out.append(f"{self.leaked_processes} node process(es) leaked")
        if self.leaked_ports:
            out.append(f"{self.leaked_ports} node port(s) still accepting")
        return out
