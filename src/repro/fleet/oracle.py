"""The full-directory oracle a fleet's search results are scored against.

An :class:`~repro.core.community.InProcessCommunity` built from the same
scenario is ground truth for ranked search: it shares the analyzer, the
Bloom sizing, the TF×IPF ranking, the adaptive stopping rule, and the
merge logic with the networked path, but its "directory replication" is
perfect by construction.  A converged fleet should therefore return the
same top-k — any shortfall is gossip (replication lag, a member the
observer doesn't know, a filter diff that never arrived), which is
exactly what fleet recall is meant to measure.

The oracle community has ``num_nodes + 1`` peers: peer ``num_nodes`` is
the empty observer, mirroring the in-process observer node the
orchestrator joins to the live fleet, so peer ranking sees the same
membership on both sides.
"""

from __future__ import annotations

from collections import Counter

from repro.constants import BloomConfig
from repro.core.community import InProcessCommunity
from repro.fleet.scenario import Scenario, Wave

__all__ = ["FleetOracle"]


class FleetOracle:
    """In-process ground truth built from a fleet scenario."""

    def __init__(self, scenario: Scenario) -> None:
        spec = scenario.spec
        self.community = InProcessCommunity(
            spec.num_nodes + 1,
            bloom_config=BloomConfig(
                num_bits=spec.bloom_bits, num_hashes=spec.bloom_hashes
            ),
        )
        for pid, docs in enumerate(scenario.corpus):
            for doc in docs:
                self.community.publish(pid, doc)

    def apply_wave(self, wave: Wave) -> None:
        """Mirror one publish wave into the oracle."""
        for pid, doc in wave.publishes:
            self.community.publish(pid, doc)

    def ranked_ids(self, query: str, k: int) -> list[str]:
        """The oracle's ranked top-k document ids for ``query``."""
        result = self.community.ranked_search(query, k=k)
        return [doc.doc_id for doc in result.results]

    def term_counts(self) -> Counter[str]:
        """Exact community-wide term frequencies (what the gossiped
        analytics sketch estimates), summed over every peer's index."""
        totals: Counter[str] = Counter()
        for peer in self.community.peers:
            index = peer.store.index
            for term in index.terms():
                totals[term] += index.collection_frequency(term)
        return totals

    def top_terms(self, k: int) -> list[str]:
        """The exact top-``k`` community terms, count then term order —
        the same total order the analytics sketch reports in."""
        ordered = sorted(self.term_counts().items(), key=lambda kv: (-kv[1], kv[0]))
        return [term for term, _count in ordered[:k]]
